// Serve-plane throughput figures: what the daemon sustains under
// concurrent tenants, and where the latency tail sits.
//
//   1. closed_loop  — N workers, each firing its next request the moment
//                     the previous answer lands: saturated requests/s at
//                     fixed concurrency, mixed truthtable/yield/hello
//                     traffic over a warm cache.
//   2. open_loop    — arrivals paced at a target rate on a global
//                     schedule (coordinated-omission-free): queueing
//                     delay lands in the recorded tail, not in a quietly
//                     slower arrival rate.
//   3. telemetry overhead — the same hello-only storm with tracing
//                     disarmed vs armed; the scalar telemetry_overhead_pct
//                     is the serve-plane cost of leaving spans/flows on.
//
// Invariants (exit 1 when violated): no exchange may hang past the
// client-side cap, and the shed rate of an unsaturated run must stay 0.
// Runtime: a few seconds; the daemon lives in-process on a temp socket.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace swsim;

namespace {

namespace fs = std::filesystem;

// Keeps BENCH_serve_throughput.json bounded: an even stride over the
// sorted latencies preserves the quantile shape the gate compares.
std::vector<double> thin_sorted(std::vector<double> samples,
                                std::size_t cap = 512) {
  std::sort(samples.begin(), samples.end());
  if (samples.size() <= cap) return samples;
  std::vector<double> out;
  out.reserve(cap);
  const double stride = static_cast<double>(samples.size()) /
                        static_cast<double>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    out.push_back(samples[static_cast<std::size_t>(
        static_cast<double>(i) * stride)]);
  }
  return out;
}

// One warm-up pass per gate so the measured window runs over a hot
// result cache — the serve plane, not the solver, is under test.
bool warm_cache(const std::string& socket_path) {
  serve::Client client;
  if (!client.connect_unix(socket_path).is_ok()) return false;
  for (const char* gate : {"maj", "xor"}) {
    serve::Request req;
    req.type = serve::RequestType::kTruthTable;
    req.client = "warmup";
    req.gate.kind = gate;
    serve::Response resp;
    if (!client.call(req, &resp).is_ok() || !resp.status.is_ok()) {
      return false;
    }
  }
  {
    serve::Request req;
    req.type = serve::RequestType::kYield;
    req.client = "warmup";
    req.yield.kind = "maj";
    req.yield.trials = 20;
    serve::Response resp;
    if (!client.call(req, &resp).is_ok() || !resp.status.is_ok()) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("serve_throughput", &argc, argv);
  const bool quick = harness.quick();

  const fs::path dir = fs::temp_directory_path() / "swsim_bench_throughput";
  fs::create_directories(dir);

  serve::ServerConfig cfg;
  cfg.socket_path = (dir / "bench.sock").string();
  fs::remove(cfg.socket_path);
  cfg.dispatchers = 2;
  cfg.engine.jobs = 2;
  cfg.queue_capacity = 256;
  cfg.idle_timeout_s = 30.0;
  cfg.frame_timeout_s = 10.0;

  serve::Server server(cfg);
  if (const auto st = server.start(); !st.is_ok()) {
    std::fprintf(stderr, "bench_serve_throughput: start: %s\n",
                 st.str().c_str());
    return 1;
  }
  if (!warm_cache(cfg.socket_path)) {
    std::fprintf(stderr, "bench_serve_throughput: warmup failed\n");
    return 1;
  }

  serve::LoadgenConfig base;
  base.socket_path = cfg.socket_path;
  base.seed = 42;
  base.concurrency = 4;
  base.yield_trials = 20;
  base.weight_truthtable = 0.5;
  base.weight_yield = 0.1;
  base.weight_hello = 0.4;
  base.call_timeout_s = 10.0;

  std::uint64_t hung = 0;
  std::uint64_t transport_errors = 0;

  // 1. Saturated closed loop.
  serve::LoadgenConfig closed = base;
  closed.duration_s = quick ? 1.0 : 3.0;
  serve::LoadgenReport closed_report;
  if (const auto st = serve::run_loadgen(closed, &closed_report);
      !st.is_ok()) {
    std::fprintf(stderr, "bench_serve_throughput: closed loop: %s\n",
                 st.str().c_str());
    return 1;
  }
  harness.record_samples("closed_loop_latency", "s",
                         thin_sorted(closed_report.latencies_s));
  hung += closed_report.hung;
  transport_errors += closed_report.transport_errors;

  // 2. Open loop at a rate the daemon holds comfortably, so the recorded
  // tail is service jitter rather than saturation queueing.
  serve::LoadgenConfig open = base;
  open.duration_s = quick ? 1.0 : 3.0;
  open.target_rps =
      std::max(10.0, closed_report.rps > 0.0 ? closed_report.rps * 0.5 : 10.0);
  serve::LoadgenReport open_report;
  if (const auto st = serve::run_loadgen(open, &open_report); !st.is_ok()) {
    std::fprintf(stderr, "bench_serve_throughput: open loop: %s\n",
                 st.str().c_str());
    return 1;
  }
  harness.record_samples("open_loop_latency", "s",
                         thin_sorted(open_report.latencies_s));
  hung += open_report.hung;
  transport_errors += open_report.transport_errors;

  // 3. Telemetry overhead: hello-only storms with tracing disarmed vs
  // armed (trace_id stamped, so the full span + flow path runs).
  serve::LoadgenConfig hello = base;
  hello.weight_truthtable = 0.0;
  hello.weight_yield = 0.0;
  hello.weight_hello = 1.0;
  hello.concurrency = 2;
  hello.duration_s = quick ? 0.5 : 1.5;
  serve::LoadgenReport plain_report;
  if (const auto st = serve::run_loadgen(hello, &plain_report); !st.is_ok()) {
    std::fprintf(stderr, "bench_serve_throughput: hello plain: %s\n",
                 st.str().c_str());
    return 1;
  }
  obs::TraceSession::global().start();
  hello.trace_id = "benchtrace";
  serve::LoadgenReport traced_report;
  const auto traced_status = serve::run_loadgen(hello, &traced_report);
  obs::TraceSession::global().stop();
  obs::TraceSession::global().clear();
  if (!traced_status.is_ok()) {
    std::fprintf(stderr, "bench_serve_throughput: hello traced: %s\n",
                 traced_status.str().c_str());
    return 1;
  }
  hung += plain_report.hung + traced_report.hung;
  transport_errors +=
      plain_report.transport_errors + traced_report.transport_errors;

  server.shutdown();
  fs::remove_all(dir);

  harness.add_scalar("closed_loop_rps", closed_report.rps);
  harness.add_scalar("closed_loop_p99_s", closed_report.p99_s);
  harness.add_scalar("closed_loop_p999_s", closed_report.p999_s);
  harness.add_scalar("closed_loop_max_s", closed_report.max_s);
  harness.add_scalar("closed_loop_shed_rate", closed_report.shed_rate());
  harness.add_scalar("open_loop_rps", open_report.rps);
  harness.add_scalar("open_loop_target_rps", open.target_rps);
  harness.add_scalar("open_loop_p99_s", open_report.p99_s);
  harness.add_scalar("open_loop_p999_s", open_report.p999_s);
  harness.add_scalar("open_loop_max_s", open_report.max_s);
  harness.add_scalar("hello_plain_rps", plain_report.rps);
  harness.add_scalar("hello_traced_rps", traced_report.rps);
  const double overhead_pct =
      plain_report.rps > 0.0
          ? (plain_report.rps - traced_report.rps) / plain_report.rps * 100.0
          : 0.0;
  harness.add_scalar("telemetry_overhead_pct", overhead_pct);
  harness.add_scalar("hung", static_cast<double>(hung));
  harness.add_scalar("transport_errors",
                     static_cast<double>(transport_errors));

  bool ok = harness.finish();
  // An unsaturated run (queue capacity 256, no deadlines) must not shed,
  // and nothing may ever hang past the client cap.
  if (hung != 0 || closed_report.shed_rate() > 0.0 ||
      open_report.shed_rate() > 0.0) {
    std::fprintf(stderr,
                 "bench_serve_throughput: invariant failures (hung %llu, "
                 "closed shed %.4f, open shed %.4f)\n",
                 static_cast<unsigned long long>(hung),
                 closed_report.shed_rate(), open_report.shed_rate());
    ok = false;
  }
  return ok ? 0 : 1;
}
