// Table II reproduction: fan-in of 2, fan-out of 2 XOR gate normalized
// output magnetization, with threshold detection at 0.5.
//
// Paper values: {0,0} -> 0.99 / 1; {0,1},{1,0} -> ~0; {1,1} -> 1 / 1.
// Above 0.5 reads logic 0, below reads logic 1; flipping the condition
// yields the XNOR — both are regenerated here.
//
// Output: console table + bench_table2_xor.csv.
#include <chrono>
#include <iostream>

#include "bench/harness.h"
#include "core/logic.h"
#include "core/micromag_gate.h"
#include "core/triangle_gate.h"
#include "io/csv.h"
#include "io/table.h"
#include "math/constants.h"

using namespace swsim;
using swsim::io::Table;

namespace {

struct PaperRow {
  double o1;
  double o2;
};
// Indexed by (I2<<1 | I1).
constexpr PaperRow kPaper[4] = {{0.99, 1.0}, {0.0, 0.0}, {0.0, 0.0}, {1.0, 1.0}};

}  // namespace

int main(int argc, char** argv) {
  swsim::bench::Harness harness("table2_xor", &argc, argv);
  std::cout << "=== Table II: FO2 XOR normalized output magnetization ===\n\n";

  core::TriangleXorGate gate = core::TriangleXorGate::paper_device();
  core::TriangleXorGate xnor = core::TriangleXorGate::paper_device(true);

  Table table({"I2", "I1", "O1", "O2", "paper O1", "paper O2", "XOR",
               "detected", "XNOR detected", "ok"});
  io::CsvWriter csv("bench_table2_xor.csv");
  csv.write_row({"i2", "i1", "o1", "o2", "paper_o1", "paper_o2", "xor",
                 "detected_o1", "detected_o2", "xnor_o1"});

  bool all_ok = true;
  for (const auto& p : core::all_input_patterns(2)) {
    const auto out = gate.evaluate(p);
    const auto nout = xnor.evaluate(p);
    const bool expected = core::xor2(p[0], p[1]);
    const int idx = (p[1] << 1) | static_cast<int>(p[0]);
    const bool ok = out.o1.logic == expected && out.o2.logic == expected &&
                    nout.o1.logic == !expected;
    all_ok = all_ok && ok;
    table.add_row({p[1] ? "1" : "0", p[0] ? "1" : "0",
                   Table::num(out.normalized_o1, 3),
                   Table::num(out.normalized_o2, 3),
                   Table::num(kPaper[idx].o1, 2), Table::num(kPaper[idx].o2, 2),
                   expected ? "1" : "0",
                   std::string(out.o1.logic ? "1" : "0") +
                       (out.o2.logic ? "1" : "0"),
                   nout.o1.logic ? "1" : "0", ok ? "yes" : "NO"});
    csv.write_row({p[1] ? "1" : "0", p[0] ? "1" : "0",
                   Table::num(out.normalized_o1, 5),
                   Table::num(out.normalized_o2, 5),
                   Table::num(kPaper[idx].o1, 3), Table::num(kPaper[idx].o2, 3),
                   expected ? "1" : "0", out.o1.logic ? "1" : "0",
                   out.o2.logic ? "1" : "0", nout.o1.logic ? "1" : "0"});
  }
  std::cout << table.str() << '\n';
  std::cout << "threshold = 0.5 (paper Sec. IV-C); XNOR = flipped condition\n"
            << "verdict: " << (all_ok ? "all rows correct (XOR and XNOR)"
                                      : "FAILURES present")
            << '\n';

  // Timed kernel: the 4-row analytic table on both gates (XOR + XNOR).
  constexpr int kTablesPerSample = 500;
  harness.time_case(
      "analytic_truth_table",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kTablesPerSample; ++rep) {
          for (const auto& p : core::all_input_patterns(2)) {
            acc += gate.evaluate(p).normalized_o1 +
                   xnor.evaluate(p).normalized_o1;
          }
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/8.0 * kTablesPerSample);
  harness.add_scalar("analytic_rows_ok", all_ok ? 4.0 : 0.0);

  // Micromagnetic cross-check (the paper's actual methodology): the same
  // table from LLG simulation of the reduced-scale device. Skipped in
  // --quick mode (it dominates the runtime); the gate then reports the
  // case as "missing", which never counts as a regression.
  bool mm_ok = true;
  if (harness.quick()) {
    std::cout << "\nmicromagnetic cross-check skipped (--quick)\n";
  } else {
    std::cout << "\nmicromagnetic cross-check (reduced-scale LLG, ~10 s):\n\n";
    core::MicromagGateConfig mm_cfg;
    mm_cfg.params = geom::TriangleGateParams::reduced_xor(swsim::math::nm(50),
                                                          swsim::math::nm(20));
    const auto mm_t0 = std::chrono::steady_clock::now();
    core::MicromagTriangleGate mm(mm_cfg);
    Table mm_table({"I2", "I1", "O1", "O2", "detected", "ok"});
    for (const auto& p : core::all_input_patterns(2)) {
      const auto out = mm.evaluate(p);
      const bool expected = core::xor2(p[0], p[1]);
      const bool ok = out.o1.logic == expected && out.o2.logic == expected;
      mm_ok = mm_ok && ok;
      mm_table.add_row({p[1] ? "1" : "0", p[0] ? "1" : "0",
                        Table::num(out.normalized_o1, 3),
                        Table::num(out.normalized_o2, 3),
                        std::string(out.o1.logic ? "1" : "0") +
                            (out.o2.logic ? "1" : "0"),
                        ok ? "yes" : "NO"});
    }
    const double mm_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - mm_t0)
                            .count();
    harness.record_samples("micromag_truth_table", "s", {mm_s},
                           mm_s > 0.0 ? 4.0 / mm_s : 0.0);
    std::cout << mm_table.str()
              << "micromagnetic verdict: " << (mm_ok ? "PASS" : "FAIL")
              << '\n';
  }
  if (!harness.finish()) return 1;
  return (all_ok && mm_ok) ? 0 : 1;
}
