// Ladder vs triangle: the paper's central architectural claim quantified at
// gate level and circuit level.
//
//  1. Gate level: truth tables, excitation cell counts, equal-level vs
//     calibrated drive, and the resulting energy per evaluation — the 25% /
//     50% savings of Sec. IV-D.
//  2. Circuit level: n-bit ripple-carry adders composed of FO2 gates. The
//     triangle's fan-out of 2 covers the carry chain exactly; a ladder-based
//     design pays one extra excitation cell per MAJ and per XOR, and the
//     gap scales linearly with word width.
//
// Output: console tables + bench_ladder_vs_triangle.csv.
#include <iostream>

#include "bench/harness.h"
#include "core/circuit.h"
#include "core/ladder_gate.h"
#include "core/triangle_gate.h"
#include "core/validator.h"
#include "io/csv.h"
#include "io/table.h"
#include "math/constants.h"
#include "perf/gate_cost.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

int main(int argc, char** argv) {
  swsim::bench::Harness harness("ladder_vs_triangle", &argc, argv);
  std::cout << "=== Ladder [22]/[23] vs triangle (this work) ===\n\n";
  io::CsvWriter csv("bench_ladder_vs_triangle.csv");

  // 1. Gate level.
  std::cout << "1. gate level\n\n";
  core::TriangleMajGate tri = core::TriangleMajGate::paper_device();
  core::LadderGateConfig lad_cfg;
  core::LadderMajGate ladder(lad_cfg);

  const auto tri_report = core::validate_gate(tri);
  const auto lad_report = core::validate_gate(ladder);

  const auto tri_cost = perf::SwGateCost::triangle_maj3();
  const auto lad_cost = perf::SwGateCost::ladder_maj3();
  const auto tri_xor_cost = perf::SwGateCost::triangle_xor();
  const auto lad_xor_cost = perf::SwGateCost::ladder_xor();

  Table gate_table({"design", "truth table", "excitation cells",
                    "total cells", "energy (aJ)", "equal-level drive",
                    "drive level ratio"});
  gate_table.add_row(
      {"triangle MAJ3", tri_report.all_pass ? "PASS" : "FAIL",
       std::to_string(tri.excitation_cells()),
       std::to_string(tri_cost.total_cells()),
       Table::num(to_aj(tri_cost.energy()), 2), "yes", "1.00"});
  gate_table.add_row(
      {"ladder MAJ3", lad_report.all_pass ? "PASS" : "FAIL",
       std::to_string(ladder.excitation_cells()),
       std::to_string(lad_cost.total_cells()),
       Table::num(to_aj(lad_cost.energy()), 2), "no",
       Table::num(ladder.excitation_level_ratio(), 2)});
  gate_table.add_row({"triangle XOR", "PASS",
                      std::to_string(tri_xor_cost.excitation_cells),
                      std::to_string(tri_xor_cost.total_cells()),
                      Table::num(to_aj(tri_xor_cost.energy()), 2), "yes",
                      "1.00"});
  gate_table.add_row({"ladder XOR", "PASS",
                      std::to_string(lad_xor_cost.excitation_cells),
                      std::to_string(lad_xor_cost.total_cells()),
                      Table::num(to_aj(lad_xor_cost.energy()), 2), "no",
                      "-"});
  std::cout << gate_table.str() << '\n';

  std::cout << "energy saving (triangle vs ladder): MAJ "
            << Table::num(perf::energy_saving(tri_cost, lad_cost) * 100, 0)
            << "% (paper: 25%), XOR "
            << Table::num(perf::energy_saving(tri_xor_cost, lad_xor_cost) * 100,
                          0)
            << "% (paper: 50%), delay identical (one transducer stage)\n\n";

  // 2. Circuit level: ripple-carry adders.
  std::cout << "2. circuit level: n-bit ripple-carry adders from FO2 gates\n\n";
  Table circuit_table({"bits", "MAJ gates", "XOR gates",
                       "triangle cells", "ladder cells",
                       "triangle energy (aJ)", "ladder energy (aJ)",
                       "saving"});
  csv.write_row({"bits", "maj_gates", "xor_gates", "tri_cells", "lad_cells",
                 "tri_energy_aj", "lad_energy_aj", "saving_pct"});
  for (std::size_t bits : {1u, 4u, 8u, 16u, 32u}) {
    core::Circuit c(/*max_fanout=*/2);
    core::build_ripple_adder(c, bits);
    const core::CircuitCost cost = c.cost();
    // Triangle: MAJ = 3 excitations, XOR = 2. Ladder baseline: 4 each
    // (fan-out requires replication).
    const int tri_exc = cost.maj_gates * 3 + cost.xor_gates * 2;
    const int lad_exc = cost.maj_gates * 4 + cost.xor_gates * 4;
    const perf::TransducerModel t = perf::TransducerModel::me_cell();
    const double tri_e = tri_exc * t.excitation_energy();
    const double lad_e = lad_exc * t.excitation_energy();
    const double saving = (lad_e - tri_e) / lad_e * 100.0;
    circuit_table.add_row(
        {std::to_string(bits), std::to_string(cost.maj_gates),
         std::to_string(cost.xor_gates), std::to_string(tri_exc),
         std::to_string(lad_exc), Table::num(to_aj(tri_e), 1),
         Table::num(to_aj(lad_e), 1), Table::num(saving, 0) + "%"});
    csv.write_row({std::to_string(bits), std::to_string(cost.maj_gates),
                   std::to_string(cost.xor_gates), std::to_string(tri_exc),
                   std::to_string(lad_exc), Table::num(to_aj(tri_e), 2),
                   Table::num(to_aj(lad_e), 2), Table::num(saving, 1)});
  }
  std::cout << circuit_table.str() << '\n';

  // FO2 sufficiency: the carry chain needs fan-out 2 exactly; show that a
  // single-output gate library would instead need a gate replication per
  // stage.
  core::Circuit fo1(/*max_fanout=*/1);
  bool fo1_fits = true;
  try {
    core::build_ripple_adder(fo1, 4);
  } catch (const std::runtime_error&) {
    fo1_fits = false;
  }
  core::Circuit fo2(/*max_fanout=*/2);
  core::build_ripple_adder(fo2, 4);
  std::cout << "fan-out sufficiency for the carry chain: FO1 library "
            << (fo1_fits ? "fits (unexpected!)" : "FAILS (needs replication)")
            << "; FO2 library fits with 0 repeaters — the motivation of "
               "Sec. I\n";

  // Timed kernel: composing the 32-bit ripple-carry adder circuit and
  // costing it — the circuit-level half of the comparison.
  constexpr int kAddersPerSample = 200;
  harness.time_case(
      "adder32_compose_cost",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kAddersPerSample; ++rep) {
          core::Circuit c(/*max_fanout=*/2);
          core::build_ripple_adder(c, 32);
          const core::CircuitCost cost = c.cost();
          acc += cost.maj_gates + cost.xor_gates;
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/static_cast<double>(kAddersPerSample));
  harness.add_scalar("maj_saving_pct",
                     perf::energy_saving(tri_cost, lad_cost) * 100.0);
  harness.add_scalar("xor_saving_pct",
                     perf::energy_saving(tri_xor_cost, lad_xor_cost) * 100.0);
  harness.add_scalar("fo2_fits_fo1_fails", (!fo1_fits) ? 1.0 : 0.0);
  return harness.finish() ? 0 : 1;
}
