// Ablation: variability and thermal robustness (paper Sec. IV-D).
//
// The paper defers variability/thermal analysis to future work, citing
// refs. [36]/[43] that similar gates keep functioning under edge roughness,
// trapezoidal cross-sections and thermal noise. We run those experiments on
// the reduced-scale micromagnetic XOR gate:
//
//   1. Thermal noise: full truth table at T = 0 / 150 / 300 K.
//   2. Edge roughness: amplitude sweep until the gate breaks.
//   3. Trapezoidal cross-section: effective-width model impact on the
//      dispersion operating point.
//
// Runtime: a couple dozen LLG runs; a few minutes.
#include <chrono>
#include <iostream>
#include <optional>

#include "bench/harness.h"
#include "core/logic.h"
#include "core/micromag_gate.h"
#include "core/validator.h"
#include "core/variability.h"
#include "geom/roughness.h"
#include "io/csv.h"
#include "io/table.h"
#include "math/constants.h"
#include "wavenet/dispersion.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

namespace {

core::MicromagGateConfig base_config() {
  core::MicromagGateConfig cfg;
  cfg.params = geom::TriangleGateParams::reduced_xor(nm(50), nm(20));
  return cfg;
}

struct XorResult {
  bool pass = true;
  double worst_margin = 1e300;
  double asymmetry = 0.0;
};

XorResult run_xor(const core::MicromagGateConfig& cfg) {
  core::MicromagTriangleGate gate(cfg);
  const auto report = core::validate_gate(gate);
  XorResult r;
  r.pass = report.all_pass;
  r.worst_margin = report.min_margin;
  r.asymmetry = report.max_output_asymmetry;
  return r;
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  swsim::bench::Harness harness("ablation_robustness", &argc, argv);
  std::cout << "=== Ablation: thermal noise and fabrication variability ===\n\n";
  io::CsvWriter csv("bench_ablation_robustness.csv");
  csv.write_row({"experiment", "value", "pass", "worst_margin", "asymmetry"});

  // 1. Thermal noise.
  std::cout << "1. thermal noise (micromagnetic XOR truth table)\n\n";
  Table thermal({"T (K)", "truth table", "worst margin", "|O1-O2| max"});
  double thermal_ceiling = -1.0;
  const auto thermal_t0 = std::chrono::steady_clock::now();
  for (double temperature : {0.0, 2.0, 5.0, 50.0, 300.0}) {
    auto cfg = base_config();
    cfg.temperature = temperature;
    const XorResult r = run_xor(cfg);
    if (r.pass) thermal_ceiling = temperature;
    thermal.add_row({Table::num(temperature, 0), r.pass ? "PASS" : "FAIL",
                     Table::num(r.worst_margin, 3),
                     Table::num(r.asymmetry, 3)});
    csv.write_row({"thermal", Table::num(temperature, 0), r.pass ? "1" : "0",
                   Table::num(r.worst_margin, 4), Table::num(r.asymmetry, 4)});
  }
  harness.record_samples("thermal_sweep", "s", {seconds_since(thermal_t0)});
  std::cout << thermal.str()
            << "reduced-scale thermal ceiling: ~" << thermal_ceiling
            << " K for this drive level.\n"
            << "Scale note: the detector integrates ~15 cells of 4x4x1 nm "
               "(superparamagnetic-scale volumes), so the thermal magnon\n"
            << "amplitude near the operating frequency rivals the linear "
               "spin-wave signal; the SNR grows with drive amplitude,\n"
            << "detector volume and lock-in window, all of which are far "
               "larger in the paper's full-size device. The paper itself\n"
            << "defers thermal analysis to refs. [36][43] (different "
               "devices/materials) and future work.\n\n";

  // 2. Edge roughness sweep.
  std::cout << "2. edge roughness (amplitude sweep, correlation 10 nm)\n\n";
  Table rough({"roughness amplitude (nm)", "truth table", "worst margin"});
  double break_at = -1.0;
  const auto rough_t0 = std::chrono::steady_clock::now();
  for (double amp_nm : {0.0, 2.0, 4.0, 6.0}) {
    auto cfg = base_config();
    if (amp_nm > 0.0) {
      geom::RoughnessParams rp;
      rp.amplitude = nm(amp_nm);
      rp.correlation_length = nm(10);
      rp.seed = 2026;
      cfg.roughness = rp;
    }
    const XorResult r = run_xor(cfg);
    if (!r.pass && break_at < 0.0) break_at = amp_nm;
    rough.add_row({Table::num(amp_nm, 0), r.pass ? "PASS" : "FAIL",
                   Table::num(r.worst_margin, 3)});
    csv.write_row({"roughness", Table::num(amp_nm, 1), r.pass ? "1" : "0",
                   Table::num(r.worst_margin, 4), Table::num(r.asymmetry, 4)});
  }
  harness.record_samples("roughness_sweep", "s", {seconds_since(rough_t0)});
  std::cout << rough.str();
  if (break_at >= 0.0) {
    std::cout << "gate functional up to < " << Table::num(break_at, 0)
              << " nm edge displacement (waveguide width 20 nm)\n\n";
  } else {
    std::cout << "gate functional across the whole sweep\n\n";
  }

  // 3. Trapezoidal cross-section: the effective width shrinks; the design
  // rule width <= lambda (and < lambda/2 for single-mode operation) only
  // tightens, so functionality is preserved — quantify the shift.
  std::cout << "3. trapezoidal cross-section (effective-width model)\n\n";
  Table trap({"sidewall angle (deg)", "effective width (nm)",
              "single-mode (w < lambda/2)"});
  const double w_top = nm(20);
  const double thickness = nm(1);
  for (double deg : {0.0, 30.0, 45.0, 60.0}) {
    const double w_eff =
        geom::trapezoid_effective_width(w_top, thickness, deg * kPi / 180.0);
    trap.add_row({Table::num(deg, 0), Table::num(to_nm(w_eff), 2),
                  w_eff < nm(50) / 2.0 ? "yes" : "no"});
    csv.write_row({"trapezoid", Table::num(deg, 0),
                   w_eff < nm(25) ? "1" : "0", Table::num(to_nm(w_eff), 3),
                   "0"});
  }
  std::cout << trap.str()
            << "(1 nm film: even steep sidewalls change the width by ~1 nm "
               "— negligible, as refs. [36][43] found)\n\n";

  // 4. Monte-Carlo yield under phase/amplitude spread (wave-network
  // backend, paper-scale device, 500 virtual devices per point).
  std::cout << "4. Monte-Carlo yield (500 devices per point)\n\n";
  core::TriangleMajGate maj = core::TriangleMajGate::paper_device();
  core::TriangleXorGate xg = core::TriangleXorGate::paper_device();
  Table yield({"length tolerance (nm, 1-sigma)", "amplitude spread",
               "MAJ yield", "XOR yield"});
  const auto yield_t0 = std::chrono::steady_clock::now();
  for (const auto& [len_nm, amp] :
       std::vector<std::pair<double, double>>{
           {0.0, 0.0}, {1.0, 0.02}, {2.0, 0.05}, {4.0, 0.10}, {8.0, 0.20}}) {
    core::VariabilityModel m;
    m.sigma_phase =
        core::VariabilityModel::phase_sigma_for_length(nm(len_nm), nm(55));
    m.sigma_amplitude = amp;
    m.seed = 2027;
    const auto ry_maj = core::estimate_yield(maj, m, 500);
    const auto ry_xor = core::estimate_yield(xg, m, 500);
    yield.add_row({Table::num(len_nm, 1), Table::num(amp * 100, 0) + "%",
                   Table::num(ry_maj.yield * 100, 1) + "%",
                   Table::num(ry_xor.yield * 100, 1) + "%"});
    csv.write_row({"yield", Table::num(len_nm, 1),
                   Table::num(ry_maj.yield, 4), Table::num(ry_xor.yield, 4),
                   Table::num(amp, 3)});
  }
  harness.record_samples("yield_sweep", "s", {seconds_since(yield_t0)},
                         /*items_per_second=*/0.0);
  std::cout << yield.str()
            << "(MAJ is the fragile one under amplitude spread: its "
               "minority-I3 rows sit near an amplitude cancellation — see "
               "test_core_variability.cpp)\n";
  harness.add_scalar("thermal_ceiling_k", thermal_ceiling);
  harness.add_scalar("roughness_break_nm", break_at >= 0.0 ? break_at : -1.0);
  return harness.finish() ? 0 : 1;
}
