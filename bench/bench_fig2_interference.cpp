// Fig. 2 reproduction: constructive and destructive interference of two
// equal-amplitude spin waves — the computing primitive of the whole paper.
//
// Two waves are launched into a merge junction with phase difference
// delta-phi; the resulting amplitude follows |1 + e^{i dphi}| =
// 2|cos(dphi/2)|. The sweep prints the full curve and marks the two cases
// of Fig. 2b (dphi = 0: constructive, dphi = pi: destructive).
//
// Output: console table + bench_fig2_interference.csv.
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "io/csv.h"
#include "io/table.h"
#include "mag/material.h"
#include "math/constants.h"
#include "wavenet/dispersion.h"
#include "wavenet/network.h"

using namespace swsim;
using namespace swsim::math;

int main(int argc, char** argv) {
  swsim::bench::Harness harness("fig2_interference", &argc, argv);
  std::cout << "=== Fig. 2: two-wave interference ===\n\n";

  const mag::Material mat = mag::Material::fecob();
  const wavenet::Dispersion disp(mat, nm(1));
  const double lambda = nm(55);

  wavenet::WaveNetwork net;
  const auto a = net.add_source("A");
  const auto b = net.add_source("B");
  const auto j = net.add_junction("J");
  const auto d = net.add_detector("D");
  net.connect(a, j, 6 * lambda);
  net.connect(b, j, 6 * lambda);
  net.connect(j, d, lambda);

  // Lossless model so the ideal 2|cos(dphi/2)| is exact.
  wavenet::PropagationModel model;
  model.k = wavenet::Dispersion::k_of_lambda(lambda);
  model.attenuation_length = 0.0;
  model.split = wavenet::SplitPolicy::kLossless;

  io::Table table({"dphi (deg)", "amplitude", "ideal 2|cos(dphi/2)|", "case"});
  io::CsvWriter csv("bench_fig2_interference.csv");
  csv.write_row({"dphi_deg", "amplitude", "ideal"});
  for (int deg = 0; deg <= 360; deg += 15) {
    const double dphi = deg * kPi / 180.0;
    net.excite(a, 1.0, 0.0);
    net.excite(b, 1.0, dphi);
    const auto result = net.solve(model);
    const double amp = std::abs(result.detector_phasor.at(d));
    const double ideal = 2.0 * std::fabs(std::cos(dphi / 2.0));
    std::string label;
    if (deg == 0 || deg == 360) label = "constructive (Fig. 2b top)";
    if (deg == 180) label = "destructive (Fig. 2b bottom)";
    table.add_row({std::to_string(deg), io::Table::num(amp, 4),
                   io::Table::num(ideal, 4), label});
    csv.write_row({std::to_string(deg), io::Table::num(amp, 6),
                   io::Table::num(ideal, 6)});
  }
  std::cout << table.str() << '\n';

  // With physical attenuation both cases scale by the same decay factor,
  // so the logic contrast is unchanged — quantify it.
  wavenet::PropagationModel damped = wavenet::PropagationModel::from_dispersion(
      disp, lambda, wavenet::SplitPolicy::kLossless);
  net.excite(a, 1.0, 0.0);
  net.excite(b, 1.0, 0.0);
  const double c_damped =
      std::abs(net.solve(damped).detector_phasor.at(d));
  net.excite(b, 1.0, kPi);
  const double d_damped =
      std::abs(net.solve(damped).detector_phasor.at(d));
  std::cout << "with FeCoB damping over the same paths: constructive = "
            << io::Table::num(c_damped, 4)
            << ", destructive = " << io::Table::num(d_damped, 6)
            << " (contrast preserved)\n";

  // Timed kernel: the 25-point phase sweep through the network solver —
  // the computing primitive every gate evaluation reduces to.
  constexpr int kSweepsPerSample = 200;
  harness.time_case(
      "interference_sweep",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kSweepsPerSample; ++rep) {
          for (int deg = 0; deg <= 360; deg += 15) {
            net.excite(a, 1.0, 0.0);
            net.excite(b, 1.0, deg * kPi / 180.0);
            acc += std::abs(net.solve(model).detector_phasor.at(d));
          }
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/25.0 * kSweepsPerSample);
  harness.add_scalar("constructive_damped", c_damped);
  harness.add_scalar("destructive_damped", d_damped);
  return harness.finish() ? 0 : 1;
}
