// Fig. 1 reproduction: spin-wave parameters (wavelength, wavenumber, phase,
// amplitude) — rendered as sampled wave profiles for the paper's two cases
// (phi = 0, k = 1 unit and phi = pi, k = 3 units) — plus the quantitative
// companion the paper's Sec. IV-A relies on: the FVSW dispersion relation
// f(k) of the 1 nm FeCoB film, group velocity and attenuation length at the
// operating point.
//
// Output: console table + bench_fig1_dispersion.csv (k, f, v_g, L_att).
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "io/csv.h"
#include "io/table.h"
#include "mag/material.h"
#include "math/constants.h"
#include "wavenet/dispersion.h"

using namespace swsim;
using namespace swsim::math;

namespace {

void print_wave_profile(double phase, int k_units) {
  // One spatial period of the reference wave (k = 1 unit) sampled over a
  // fixed window, as in Fig. 1: higher k -> shorter wavelength.
  constexpr int kCols = 64;
  constexpr int kRows = 9;
  char canvas[kRows][kCols + 1];
  for (auto& row : canvas) {
    for (int c = 0; c < kCols; ++c) row[c] = ' ';
    row[kCols] = '\0';
  }
  for (int c = 0; c < kCols; ++c) {
    const double x = static_cast<double>(c) / (kCols - 1);
    const double v = std::cos(kTwoPi * k_units * x + phase);
    const int r = static_cast<int>(std::lround((1.0 - v) / 2.0 * (kRows - 1)));
    canvas[r][c] = '*';
  }
  std::cout << "wave: phi = " << (phase == 0.0 ? "0" : "pi")
            << ", k = " << k_units << " (arbitrary units)\n";
  for (const auto& row : canvas) std::cout << "  |" << row << "|\n";
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  swsim::bench::Harness harness("fig1_dispersion", &argc, argv);
  std::cout << "=== Fig. 1: spin wave parameters ===\n\n";
  print_wave_profile(0.0, 1);   // Fig. 1a: phi = 0, k = 1
  print_wave_profile(kPi, 3);   // Fig. 1b: phi = pi, k = 3

  const mag::Material mat = mag::Material::fecob();
  const wavenet::Dispersion disp(mat, nm(1));

  std::cout << "FVSW dispersion, " << mat.name
            << " film, t = 1 nm (Kalinikos-Slavin, lowest mode):\n\n";
  io::Table table({"lambda (nm)", "k (rad/um)", "f (GHz)", "v_g (m/s)",
                   "L_att (um)"});
  io::CsvWriter csv("bench_fig1_dispersion.csv");
  csv.write_row({"lambda_nm", "k_rad_per_um", "f_ghz", "vg_m_per_s",
                 "latt_um"});
  for (double lambda_nm :
       {500.0, 250.0, 125.0, 100.0, 80.0, 55.0, 40.0, 30.0, 20.0}) {
    const double k = wavenet::Dispersion::k_of_lambda(nm(lambda_nm));
    const double f = disp.frequency(k);
    const double vg = disp.group_velocity(k);
    const double latt = disp.attenuation_length(k);
    table.add_row({io::Table::num(lambda_nm, 0), io::Table::num(k * 1e-6, 1),
                   io::Table::num(to_ghz(f), 2), io::Table::num(vg, 0),
                   io::Table::num(latt * 1e6, 2)});
    csv.write_row({io::Table::num(lambda_nm, 1), io::Table::num(k * 1e-6, 3),
                   io::Table::num(to_ghz(f), 4), io::Table::num(vg, 2),
                   io::Table::num(latt * 1e6, 4)});
  }
  std::cout << table.str() << '\n';

  // Timed kernel: the dispersion sweep itself, repeated enough times per
  // sample that the steady clock resolves it (a single 9-point sweep is
  // sub-microsecond).
  constexpr int kSweepsPerSample = 20000;
  harness.time_case(
      "dispersion_sweep",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kSweepsPerSample; ++rep) {
          for (double lambda_nm :
               {500.0, 250.0, 125.0, 100.0, 80.0, 55.0, 40.0, 30.0, 20.0}) {
            const double k = wavenet::Dispersion::k_of_lambda(nm(lambda_nm));
            acc += disp.frequency(k) + disp.group_velocity(k) +
                   disp.attenuation_length(k);
          }
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/9.0 * kSweepsPerSample);

  const double k55 = wavenet::Dispersion::k_of_lambda(nm(55));
  harness.add_scalar("f_at_55nm_ghz", to_ghz(disp.frequency(k55)));
  harness.add_scalar("k_at_55nm_rad_per_um", k55 * 1e-6);
  harness.add_scalar("fmr_floor_ghz", to_ghz(disp.frequency(0.0)));
  std::cout << "operating point (paper Sec. IV-A):\n"
            << "  lambda = 55 nm -> k = " << io::Table::num(k55 * 1e-6, 1)
            << " rad/um, f = " << io::Table::num(to_ghz(disp.frequency(k55)), 2)
            << " GHz\n"
            << "  (the paper quotes f = 10 GHz at k = 50 rad/um; note "
               "k(55 nm) = 114 rad/um — see EXPERIMENTS.md)\n"
            << "  f(k = 50 rad/um) = "
            << io::Table::num(to_ghz(disp.frequency(50e6)), 2) << " GHz\n"
            << "  FMR floor f(0) = "
            << io::Table::num(to_ghz(disp.frequency(0.0)), 2) << " GHz\n";
  return harness.finish() ? 0 : 1;
}
