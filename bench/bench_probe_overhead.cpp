// Overhead accounting for the in-situ physics telemetry: what one LLG
// solve pays for (a) live lock-in demodulation + convergence tracking +
// physics metrics while armed, and (b) live probe-stream subscribers on
// top, versus a fully disarmed solve. The same run proves the bounded
// fan-out contract: an abandoned slow subscriber loses its oldest frames
// (dropped counter) and can never hang the solver or the stream.
//
// Self-gating: armed overhead must stay <= 5% and hung_streams == 0.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>

#include "bench/harness.h"
#include "core/micromag_gate.h"
#include "math/constants.h"
#include "obs/metrics.h"
#include "obs/physics.h"

using namespace swsim;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::MicromagGateConfig bench_config(bool live_probes, bool quick) {
  core::MicromagGateConfig cfg;
  cfg.params =
      geom::TriangleGateParams::reduced_maj3(math::nm(50), math::nm(20));
  cfg.cell_size = math::nm(5);
  // Fixed short duration (not the auto transit-based one): long enough for
  // several completed demodulation windows, short enough to repeat. The
  // telemetry cost per step is what's measured; logic margins are not.
  cfg.duration = quick ? 0.8e-9 : 1.5e-9;
  cfg.live_probes = live_probes;
  return cfg;
}

// Best-of-n wall time of one LLG evaluation with a pre-injected
// calibration, so only the solve itself is timed.
double time_solve(const core::MicromagGateConfig& cfg,
                  const core::MicromagCalibration& calib, int n) {
  double best = 1e300;
  for (int i = 0; i < n; ++i) {
    core::MicromagTriangleGate gate(cfg);
    gate.set_calibration(calib);
    const double t0 = now_s();
    (void)gate.evaluate_full({true, false, true});
    best = std::min(best, now_s() - t0);
  }
  return best;
}

double pct_over(double value, double base) {
  return base > 0.0 ? (value - base) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness("probe_overhead", &argc, argv);
  const bool quick = harness.quick();
  const int reps = quick ? 2 : 3;

  // One calibration feeds every timed solve; live_probes is passive, so
  // the reference run is identical for both configurations.
  core::MicromagCalibration calib;
  {
    core::MicromagTriangleGate gate(bench_config(false, quick));
    calib = gate.calibrate();
  }

  // (a) Disarmed baseline: no live demodulators, metrics off.
  obs::MetricsRegistry::disarm();
  double base_s = time_solve(bench_config(false, quick), calib, reps);

  // (b) Armed: per-probe online lock-in, convergence tracking, gauges,
  // counters, energy series — everything but a stream consumer.
  obs::MetricsRegistry::arm();
  double armed_s = time_solve(bench_config(true, quick), calib, reps);
  double armed_overhead_pct = pct_over(armed_s, base_s);
  // Timing noise on a seconds-scale solve can fake a miss; remeasure both
  // sides once before letting the gate fail.
  if (armed_overhead_pct > 5.0) {
    obs::MetricsRegistry::disarm();
    base_s = std::min(base_s, time_solve(bench_config(false, quick), calib,
                                         reps));
    obs::MetricsRegistry::arm();
    armed_s = std::min(armed_s, time_solve(bench_config(true, quick), calib,
                                           reps));
    armed_overhead_pct = pct_over(armed_s, base_s);
  }

  // (c) Streaming on top: one live consumer draining frames, plus an
  // abandoned subscriber (capacity 2, never drained) that must shed its
  // oldest frames instead of ever blocking the publisher.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> consumed{0};
  auto sub = obs::ProbeHub::global().subscribe();
  auto slow = obs::ProbeHub::global().subscribe(2);
  std::thread consumer([&] {
    obs::ProbeHub::Frame frame;
    while (!stop.load(std::memory_order_relaxed)) {
      if (sub->next(&frame, 0.05)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  const double streamed_s = time_solve(bench_config(true, quick), calib, reps);
  stop.store(true, std::memory_order_relaxed);
  const double j0 = now_s();
  consumer.join();  // bounded: next() waits at most 50 ms per round
  const double join_s = now_s() - j0;
  const std::uint64_t frames_streamed = consumed.load();
  const std::uint64_t frames_dropped = slow->dropped();
  const int hung_streams = join_s > 5.0 ? 1 : 0;
  sub.reset();
  slow.reset();
  obs::MetricsRegistry::disarm();

  harness.record_samples("disarmed_solve", "s", {base_s});
  harness.record_samples("armed_solve", "s", {armed_s});
  harness.record_samples("streamed_solve", "s", {streamed_s});
  harness.add_scalar("armed_overhead_pct", armed_overhead_pct);
  harness.add_scalar("streaming_overhead_pct", pct_over(streamed_s, armed_s));
  harness.add_scalar("frames_streamed", static_cast<double>(frames_streamed));
  harness.add_scalar("frames_dropped_slow",
                     static_cast<double>(frames_dropped));
  harness.add_scalar("hung_streams", static_cast<double>(hung_streams));

  std::printf(
      "probe overhead: disarmed %.3f s, armed %.3f s (%+.2f%%), "
      "streamed %.3f s; %llu frames consumed, %llu dropped by the "
      "abandoned subscriber\n",
      base_s, armed_s, armed_overhead_pct, streamed_s,
      static_cast<unsigned long long>(frames_streamed),
      static_cast<unsigned long long>(frames_dropped));

  bool ok = harness.finish();
  if (armed_overhead_pct > 5.0) {
    std::fprintf(stderr,
                 "bench_probe_overhead: armed overhead %.2f%% exceeds the "
                 "5%% budget\n",
                 armed_overhead_pct);
    ok = false;
  }
  if (hung_streams != 0) {
    std::fprintf(stderr,
                 "bench_probe_overhead: stream consumer took %.1f s to stop "
                 "(hung)\n",
                 join_s);
    ok = false;
  }
  if (frames_streamed == 0) {
    std::fprintf(stderr,
                 "bench_probe_overhead: no frames reached the consumer — "
                 "the publish path is dead\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
