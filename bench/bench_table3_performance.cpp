// Table III reproduction: energy/delay comparison of the proposed triangle
// FO2 gates against the ladder-shape SW baseline [22]/[23] and 16 nm / 7 nm
// CMOS [40]/[41], under the paper's cost assumptions (ME cells at 34.4 nW /
// 0.42 ns, 100 ps pulses, propagation delay and loss neglected).
//
// Also derives every headline number the paper quotes: 25%/50% energy
// saving versus the ladder, the 43x-0.8x CMOS energy range and the delay
// overheads, and re-runs the comparison under a "mature transducer"
// what-if (the paper's own caveat that the assumptions may need
// re-evaluation).
//
// Output: console tables + bench_table3_performance.csv.
#include <iostream>

#include "bench/harness.h"
#include "io/csv.h"
#include "io/table.h"
#include "mag/material.h"
#include "math/constants.h"
#include "perf/comparison.h"
#include "perf/latency.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

namespace {

void print_comparison(const perf::Comparison& cmp, io::CsvWriter* csv) {
  Table table({"design", "technology", "function", "cells", "delay (ns)",
               "energy (aJ)"});
  for (const auto& row : cmp.rows()) {
    table.add_row({row.design, row.technology, row.function,
                   std::to_string(row.cells), Table::num(to_ns(row.delay), 2),
                   Table::num(to_aj(row.energy), 1)});
    if (csv) {
      csv->write_row({row.design, row.technology, row.function,
                      std::to_string(row.cells),
                      Table::num(to_ns(row.delay), 4),
                      Table::num(to_aj(row.energy), 3)});
    }
  }
  std::cout << table.str();
}

void print_headlines(const perf::HeadlineNumbers& h) {
  std::cout << "\nheadline numbers (paper quotes in parentheses):\n"
            << "  MAJ energy saving vs ladder [22]: "
            << Table::num(h.maj_saving_vs_ladder * 100, 1) << "% (25%)\n"
            << "  XOR energy saving vs ladder [23]: "
            << Table::num(h.xor_saving_vs_ladder * 100, 1) << "% (50%)\n"
            << "  XOR energy ratio vs 16nm CMOS: "
            << Table::num(h.xor_energy_ratio_16nm, 1) << "x (43x)\n"
            << "  XOR energy ratio vs 7nm CMOS:  "
            << Table::num(h.xor_energy_ratio_7nm, 2) << "x (0.8x)\n"
            << "  MAJ energy ratio vs 16nm CMOS: "
            << Table::num(h.maj_energy_ratio_16nm, 1)
            << "x (paper text says 11x but its own Table III data gives "
               "466/10.3 = 45x)\n"
            << "  MAJ energy ratio vs 7nm CMOS:  "
            << Table::num(h.maj_energy_ratio_7nm, 2) << "x (1.6x)\n"
            << "  MAJ delay overhead vs 16nm/7nm: "
            << Table::num(h.maj_delay_overhead_16nm, 0) << "x / "
            << Table::num(h.maj_delay_overhead_7nm, 0) << "x (13x / 20x)\n"
            << "  XOR delay overhead vs 16nm/7nm: "
            << Table::num(h.xor_delay_overhead_16nm, 0) << "x / "
            << Table::num(h.xor_delay_overhead_7nm, 0) << "x (13x / 40x)\n";
}

}  // namespace

int main(int argc, char** argv) {
  swsim::bench::Harness harness("table3_performance", &argc, argv);
  std::cout << "=== Table III: performance comparison ===\n\n";

  const perf::Comparison cmp;
  io::CsvWriter csv("bench_table3_performance.csv");
  csv.write_row({"design", "technology", "function", "cells", "delay_ns",
                 "energy_aj"});
  print_comparison(cmp, &csv);
  print_headlines(cmp.headlines());

  // The ladder's extra structural costs beyond raw energy.
  std::cout << "\nstructural comparison (Sec. IV-D):\n"
            << "  triangle: equal-level excitation on all inputs = "
            << (cmp.triangle_maj().equal_level_excitation ? "yes" : "no")
            << ", no replicated input\n"
            << "  ladder:   equal-level excitation = "
            << (cmp.ladder_maj().equal_level_excitation ? "yes" : "no")
            << ", one input replicated (the 4th excitation cell)\n";

  // Assumption (iii) check: the paper neglects spin-wave propagation
  // delay; our dispersion says the wave transit dominates the latency.
  {
    const wavenet::Dispersion disp(mag::Material::fecob(), nm(1));
    const geom::TriangleGateLayout maj_layout(
        geom::TriangleGateParams::paper_maj3());
    const geom::TriangleGateLayout xor_layout(
        geom::TriangleGateParams::paper_xor());
    const auto lm = perf::gate_latency(maj_layout, disp,
                                       perf::TransducerModel::me_cell().delay);
    const auto lx = perf::gate_latency(xor_layout, disp,
                                       perf::TransducerModel::me_cell().delay);
    std::cout << "\nassumption (iii) check (propagation delay 'neglected'):\n"
              << "  MAJ: transducer " << Table::num(to_ns(lm.transducer_delay), 2)
              << " ns + propagation "
              << Table::num(to_ns(lm.propagation_delay), 2)
              << " ns -> true delay "
              << Table::num(to_ns(lm.total()), 2) << " ns ("
              << Table::num(lm.underestimate_factor(), 1)
              << "x the booked value)\n"
              << "  XOR: transducer " << Table::num(to_ns(lx.transducer_delay), 2)
              << " ns + propagation "
              << Table::num(to_ns(lx.propagation_delay), 2)
              << " ns -> true delay "
              << Table::num(to_ns(lx.total()), 2) << " ns\n";
  }

  // What-if: transducers mature to 10x lower power and 2x faster. The
  // relative SW-vs-SW savings are invariant; the CMOS crossover moves.
  perf::TransducerModel mature = perf::TransducerModel::me_cell();
  mature.power /= 10.0;
  mature.delay /= 2.0;
  const perf::Comparison future(mature);
  std::cout << "\nwhat-if: mature ME cells (P/10, delay/2):\n\n";
  print_comparison(future, nullptr);
  const auto fh = future.headlines();
  std::cout << "  XOR energy ratio vs 7nm CMOS becomes "
            << Table::num(fh.xor_energy_ratio_7nm, 2)
            << "x (SW wins everywhere), delay overhead "
            << Table::num(fh.xor_delay_overhead_7nm, 0) << "x\n";

  // Timed kernel: building the full comparison + headline derivation.
  constexpr int kBuildsPerSample = 2000;
  harness.time_case(
      "comparison_build",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kBuildsPerSample; ++rep) {
          const perf::Comparison c;
          const auto hh = c.headlines();
          acc += hh.maj_saving_vs_ladder + hh.xor_energy_ratio_7nm;
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/static_cast<double>(kBuildsPerSample));
  const auto h = cmp.headlines();
  harness.add_scalar("maj_saving_vs_ladder_pct", h.maj_saving_vs_ladder * 100);
  harness.add_scalar("xor_saving_vs_ladder_pct", h.xor_saving_vs_ladder * 100);
  harness.add_scalar("xor_energy_ratio_7nm", h.xor_energy_ratio_7nm);
  return harness.finish() ? 0 : 1;
}
