// Ablation: the paper's dimensioning rules (Sec. III-A).
//
//  1. d = n*lambda vs (n+1/2)*lambda — the n-lambda rule makes like-phase
//     inputs interfere constructively; the half-integer offset flips the
//     behaviour (and on d4 it implements the inverted output).
//  2. Output tap distance d4 sweep: logic vs n_out in steps of lambda/4 —
//     only the integer (and half-integer, inverted) taps detect reliably.
//  3. Arm-length mismatch tolerance: how much asymmetry between the two
//     input arms the MAJ gate tolerates before the truth table breaks —
//     the fabrication-margin number the paper's variability discussion
//     (Sec. IV-D) asks for.
//
// Output: console tables + bench_ablation_dimensions.csv.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench/harness.h"
#include "core/logic.h"
#include "core/triangle_gate.h"
#include "core/validator.h"
#include "io/csv.h"
#include "io/table.h"
#include "math/constants.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

namespace {

bool maj_passes(const geom::TriangleGateParams& params) {
  core::TriangleGateConfig cfg;
  cfg.params = params;
  core::TriangleMajGate gate(cfg);
  return core::validate_gate(gate).all_pass;
}

}  // namespace

int main(int argc, char** argv) {
  swsim::bench::Harness harness("ablation_dimensions", &argc, argv);
  std::cout << "=== Ablation: dimensioning design rules ===\n\n";
  io::CsvWriter csv("bench_ablation_dimensions.csv");

  // 1. n-lambda vs (n+1/2)-lambda on each dimension class.
  std::cout << "rule 1: n*lambda vs (n+1/2)*lambda (MAJ3 truth table)\n\n";
  Table rule1({"dimension", "nominal", "+lambda/2", "behaviour"});
  csv.write_row({"sweep", "dimension", "value", "pass"});
  {
    const auto base = geom::TriangleGateParams::paper_maj3();

    auto arm = base;
    arm.n_arm += 0.5;
    rule1.add_row({"d1 (arms)", maj_passes(base) ? "PASS" : "FAIL",
                   maj_passes(arm) ? "PASS" : "FAIL",
                   "arm waves arrive inverted: gate logic flips/breaks"});

    auto axis = base;
    // +lambda/2 per half-axis: the arm waves shift by a full lambda (no
    // change mod lambda) but I3 — which only traverses one half — shifts
    // by lambda/2 relative to them.
    axis.n_axis_half += 0.5;
    rule1.add_row({"d2 (axis)", maj_passes(base) ? "PASS" : "FAIL",
                   maj_passes(axis) ? "PASS" : "FAIL",
                   "I3 arrives inverted vs I1/I2 at the second stage"});

    auto tap = base;
    tap.n_out += 0.5;
    core::TriangleGateConfig inv_cfg;
    inv_cfg.params = tap;
    core::TriangleMajGate inverted(inv_cfg);
    bool inverted_is_minority = true;
    for (const auto& p : core::all_input_patterns(3)) {
      inverted_is_minority = inverted_is_minority &&
                             (inverted.evaluate(p).o1.logic ==
                              !core::maj3(p[0], p[1], p[2]));
    }
    rule1.add_row({"d4 (output)", maj_passes(base) ? "PASS" : "FAIL",
                   inverted_is_minority ? "INVERTS (minority gate)" : "FAIL",
                   "the paper's (n+1/2)-lambda inverted-output rule"});
  }
  std::cout << rule1.str() << '\n';

  // 2. Output distance sweep in quarter-wavelength steps.
  std::cout << "rule 2: output tap distance sweep (MAJ3)\n\n";
  Table rule2({"n_out", "reads MAJ", "reads NOT(MAJ)", "comment"});
  for (double n_out : {1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}) {
    auto params = geom::TriangleGateParams::paper_maj3();
    params.n_out = 0;          // bake the sweep value into the layout via
    params.n_feed += n_out;    // the tap distance (must stay half-integer)
    const bool rep_ok = std::fabs(n_out * 2 - std::round(n_out * 2)) < 1e-9;
    std::string maj = "-";
    std::string inv = "-";
    std::string comment;
    if (!rep_ok) {
      comment = "not representable: violates the half-integer design rule";
    } else {
      core::TriangleGateConfig cfg;
      cfg.params = params;
      core::TriangleMajGate gate(cfg);
      bool is_maj = true, is_min = true;
      for (const auto& p : core::all_input_patterns(3)) {
        const bool got = gate.evaluate(p).o1.logic;
        const bool want = core::maj3(p[0], p[1], p[2]);
        is_maj = is_maj && got == want;
        is_min = is_min && got == !want;
      }
      maj = is_maj ? "yes" : "no";
      inv = is_min ? "yes" : "no";
      if (!is_maj && !is_min) comment = "quadrature tap: unreliable phase";
    }
    rule2.add_row({Table::num(n_out, 2), maj, inv, comment});
    csv.write_row({"n_out", Table::num(n_out, 2), maj, inv});
  }
  std::cout << rule2.str() << '\n';

  // 3. Arm mismatch tolerance (variability margin).
  std::cout << "rule 3: arm-length mismatch tolerance (MAJ3)\n\n";
  Table rule3({"d1 mismatch (lambda)", "worst margin (rad)", "pass"});
  double failure_at = -1.0;
  for (double mismatch = 0.0; mismatch <= 0.5001; mismatch += 0.05) {
    // Lengthen one arm by `mismatch` wavelengths via the network model:
    // equivalent to an input phase error of 2*pi*mismatch on I1.
    core::TriangleGateConfig cfg;
    cfg.params = geom::TriangleGateParams::paper_maj3();
    core::TriangleMajGate gate(cfg);
    const wavenet::PhaseDetector det;
    bool pass = true;
    double worst = kPi;
    for (const auto& p : core::all_input_patterns(3)) {
      std::vector<double> phases{core::logic_phase(p[0]) + kTwoPi * mismatch,
                                 core::logic_phase(p[1]),
                                 core::logic_phase(p[2])};
      const auto [p1, p2] = gate.solve_phasors(phases);
      const auto d1 = det.detect(p1);
      const auto d2 = det.detect(p2);
      const bool want = core::maj3(p[0], p[1], p[2]);
      pass = pass && d1.logic == want && d2.logic == want;
      worst = std::min({worst, d1.margin, d2.margin});
    }
    if (!pass && failure_at < 0.0) failure_at = mismatch;
    rule3.add_row({Table::num(mismatch, 2), Table::num(worst, 3),
                   pass ? "yes" : "NO"});
    csv.write_row({"arm_mismatch", Table::num(mismatch, 3),
                   Table::num(worst, 4), pass ? "1" : "0"});
  }
  std::cout << rule3.str() << '\n';
  if (failure_at > 0.0) {
    std::cout << "MAJ3 tolerates arm mismatch up to ~"
              << Table::num(failure_at - 0.05, 2)
              << " lambda (" << Table::num((failure_at - 0.05) * 55, 0)
              << " nm at the paper's 55 nm wavelength)\n";
  } else {
    std::cout << "MAJ3 passed the entire sweep\n";
  }

  // Timed kernel: a full gate construction + truth-table validation — the
  // operation every design-rule probe above repeats.
  constexpr int kValidationsPerSample = 500;
  harness.time_case(
      "gate_validate",
      [&] {
        double acc = 0.0;
        for (int rep = 0; rep < kValidationsPerSample; ++rep) {
          acc += maj_passes(geom::TriangleGateParams::paper_maj3()) ? 1.0 : 0.0;
        }
        swsim::bench::do_not_optimize(acc);
      },
      /*items_per_iter=*/static_cast<double>(kValidationsPerSample));
  harness.add_scalar("arm_mismatch_tolerance_lambda",
                     failure_at > 0.0 ? failure_at - 0.05 : 0.5);
  return harness.finish() ? 0 : 1;
}
