#include "mag/simulation.h"

#include <gtest/gtest.h>

#include <memory>

#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/exchange_field.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "wavenet/dispersion.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

System small_system() {
  return System(Grid(4, 4, 1, 5e-9, 5e-9, 1e-9), Material::fecob());
}

TEST(Simulation, StartsAtTimeZeroWithUniformM) {
  Simulation sim(small_system());
  EXPECT_DOUBLE_EQ(sim.time(), 0.0);
  EXPECT_EQ(sim.magnetization()[0], (Vec3{0, 0, 1}));
}

TEST(Simulation, SetMagnetizationValidatesGrid) {
  Simulation sim(small_system());
  VectorField wrong(Grid(2, 2, 1, 1e-9, 1e-9, 1e-9));
  EXPECT_THROW(sim.set_magnetization(wrong), std::invalid_argument);
}

TEST(Simulation, SetMagnetizationNormalizes) {
  Simulation sim(small_system());
  VectorField m(sim.system().grid(), Vec3{0, 0, 3});
  sim.set_magnetization(m);
  EXPECT_NEAR(norm(sim.magnetization()[0]), 1.0, 1e-15);
}

TEST(Simulation, AddTermRejectsNull) {
  Simulation sim(small_system());
  EXPECT_THROW(sim.add_term(nullptr), std::invalid_argument);
}

TEST(Simulation, RunAdvancesTime) {
  Simulation sim(small_system());
  sim.add_standard_terms();
  sim.set_stepper(StepperKind::kRk4, ps(0.1));
  sim.run(ps(10));
  EXPECT_NEAR(sim.time(), ps(10), ps(0.2));
  EXPECT_GT(sim.stepper_stats().steps_taken, 0u);
}

TEST(Simulation, RunRejectsNegativeDuration) {
  Simulation sim(small_system());
  EXPECT_THROW(sim.run(-1.0), std::invalid_argument);
}

TEST(Simulation, ProbeRecordsSamples) {
  Simulation sim(small_system());
  sim.add_standard_terms();
  sim.set_stepper(StepperKind::kRk4, ps(0.1));
  Mask region(sim.system().grid(), true);
  auto& probe = sim.add_probe("all", region, ps(1));
  sim.run(ps(10));
  EXPECT_GE(probe.sample_count(), 10u);
  EXPECT_EQ(probe.times().size(), probe.mz().size());
  // Ground state along z: m_z stays ~1.
  for (double mz : probe.mz()) EXPECT_NEAR(mz, 1.0, 1e-6);
}

TEST(Simulation, ProbeLookupByName) {
  Simulation sim(small_system());
  Mask region(sim.system().grid(), true);
  sim.add_probe("foo", region, ps(1));
  EXPECT_NO_THROW(sim.probe("foo"));
  EXPECT_THROW(sim.probe("bar"), std::invalid_argument);
}

TEST(Simulation, ProbeRejectsEmptyRegion) {
  Simulation sim(small_system());
  Mask region(sim.system().grid());
  EXPECT_THROW(sim.add_probe("empty", region, ps(1)), std::invalid_argument);
}

TEST(Simulation, GroundStateIsStationary) {
  Simulation sim(small_system());
  sim.add_standard_terms();
  sim.set_stepper(StepperKind::kRk4, ps(0.1));
  sim.run(ps(50));
  // With PMA > demag, m = z is the ground state and must not move.
  for (std::size_t i = 0; i < sim.magnetization().size(); ++i) {
    EXPECT_NEAR(sim.magnetization()[i].z, 1.0, 1e-6);
  }
}

TEST(Simulation, MaxTorqueZeroInGroundState) {
  Simulation sim(small_system());
  sim.add_standard_terms();
  EXPECT_NEAR(sim.max_torque(), 0.0, 1.0);
}

TEST(Simulation, RelaxReducesTorque) {
  Simulation sim(small_system());
  sim.add_standard_terms();
  // Tilt the state.
  VectorField m(sim.system().grid(), normalized(Vec3{0.4, 0.1, 1.0}));
  sim.set_magnetization(m);
  const double before = sim.max_torque();
  const double after = sim.relax(ns(0.4), /*torque_tol=*/before / 100.0);
  EXPECT_LT(after, before / 10.0);
}

TEST(Simulation, TotalEnergyDecreasesUnderDamping) {
  Simulation sim(small_system());
  sim.add_standard_terms();
  VectorField m(sim.system().grid(), normalized(Vec3{0.5, 0, 1.0}));
  sim.set_magnetization(m);
  const double e0 = sim.total_energy();
  sim.set_stepper(StepperKind::kRk4, ps(0.05));
  sim.run(ns(0.5));
  const double e1 = sim.total_energy();
  EXPECT_LT(e1, e0);
}

TEST(Simulation, EnergyConservedWithoutDamping) {
  Material mat = Material::fecob();
  mat.alpha = 0.0;
  System sys(Grid(4, 4, 1, 5e-9, 5e-9, 1e-9), mat);
  Simulation sim(std::move(sys));
  sim.add_standard_terms();
  VectorField m(sim.system().grid(), normalized(Vec3{0.3, 0, 1.0}));
  sim.set_magnetization(m);
  const double e0 = sim.total_energy();
  sim.set_stepper(StepperKind::kRk4, ps(0.02));
  sim.run(ps(200));
  const double e1 = sim.total_energy();
  EXPECT_NEAR(e1, e0, std::fabs(e0) * 1e-4 + 1e-25);
}

TEST(Simulation, AntennaExcitesPrecession) {
  Simulation sim(small_system());
  sim.add_standard_terms();
  Mask region(sim.system().grid(), true);
  const wavenet::Dispersion disp(Material::fecob(), 1e-9);
  const double f = disp.frequency(0.0) * 1.001;  // near-resonant drive
  sim.add_term(std::make_unique<AntennaField>(region, 2e3, Vec3{1, 0, 0}, f,
                                              0.0));
  auto& probe = sim.add_probe("all", region, 1.0 / (32.0 * f));
  sim.set_stepper(StepperKind::kRk4, ps(0.2));
  sim.run(ns(0.8));
  // The drive must have produced a visible transverse oscillation.
  double max_mx = 0.0;
  for (double v : probe.mx()) max_mx = std::max(max_mx, std::fabs(v));
  EXPECT_GT(max_mx, 1e-4);
}

}  // namespace
}  // namespace swsim::mag
