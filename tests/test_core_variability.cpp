#include "core/variability.h"

#include <gtest/gtest.h>

#include "math/constants.h"

namespace swsim::core {
namespace {

using swsim::math::kPi;
using swsim::math::nm;

TEST(Variability, PhaseSigmaForLength) {
  // sigma_L = lambda / 4 -> sigma_phase = pi / 2.
  EXPECT_NEAR(VariabilityModel::phase_sigma_for_length(nm(55) / 4, nm(55)),
              kPi / 2.0, 1e-12);
  EXPECT_THROW(VariabilityModel::phase_sigma_for_length(nm(1), 0.0),
               std::invalid_argument);
}

TEST(Variability, ArgumentChecks) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  VariabilityModel m;
  EXPECT_THROW(estimate_yield(gate, m, 0), std::invalid_argument);
  m.sigma_phase = -1.0;
  EXPECT_THROW(estimate_yield(gate, m, 10), std::invalid_argument);
}

TEST(Variability, ZeroSigmaGivesPerfectYield) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  VariabilityModel m;  // all sigmas zero
  const YieldReport r = estimate_yield(gate, m, 50);
  EXPECT_EQ(r.passing, 50u);
  EXPECT_DOUBLE_EQ(r.yield, 1.0);
  EXPECT_EQ(r.worst_row_failures, 0u);
}

TEST(Variability, SmallDisturbancesTolerated) {
  // ~lambda/50 length spread and 5% amplitude spread: yield stays high.
  TriangleMajGate gate = TriangleMajGate::paper_device();
  VariabilityModel m;
  m.sigma_phase = VariabilityModel::phase_sigma_for_length(nm(1), nm(55));
  m.sigma_amplitude = 0.05;
  m.seed = 7;
  const YieldReport r = estimate_yield(gate, m, 200);
  EXPECT_GT(r.yield, 0.95);
}

TEST(Variability, LargePhaseErrorsKillYield) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  VariabilityModel m;
  m.sigma_phase = kPi / 2.0;  // quarter-wavelength-scale chaos
  m.seed = 7;
  const YieldReport r = estimate_yield(gate, m, 200);
  EXPECT_LT(r.yield, 0.5);
  EXPECT_GT(r.worst_row_failures, 0u);
}

TEST(Variability, YieldMonotoneInPhaseSigma) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  double prev = 1.1;
  for (double sigma : {0.05, 0.3, 0.8, 1.5}) {
    VariabilityModel m;
    m.sigma_phase = sigma;
    m.seed = 3;
    const double y = estimate_yield(gate, m, 300).yield;
    EXPECT_LE(y, prev + 0.05) << "sigma " << sigma;  // allow MC noise
    prev = y;
  }
}

TEST(Variability, AmplitudeSpreadHurtsMajMoreThanXor) {
  // Counter-intuitive but physical: the MAJ's minority-I3 rows operate
  // near an amplitude cancellation (2 a_arm ~ a_tap, the small Table I
  // values), so input amplitude spread can flip the residual's sign and
  // the detected phase. The XOR's two classes sit at normalized ~1 and ~0
  // — far from its 0.5 threshold — so the same spread barely touches it.
  TriangleXorGate xg = TriangleXorGate::paper_device();
  TriangleMajGate mg = TriangleMajGate::paper_device();
  VariabilityModel m;
  m.sigma_amplitude = 0.30;
  m.seed = 11;
  const double xor_yield = estimate_yield(xg, m, 300).yield;
  const double maj_yield = estimate_yield(mg, m, 300).yield;
  EXPECT_GT(xor_yield, 0.9);
  EXPECT_LT(maj_yield, xor_yield);

  // At realistic (5%) spread both gates yield well.
  m.sigma_amplitude = 0.05;
  EXPECT_GT(estimate_yield(mg, m, 300).yield, 0.95);
  EXPECT_GT(estimate_yield(xg, m, 300).yield, 0.95);
}

TEST(Variability, DeterministicInSeed) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  VariabilityModel m;
  m.sigma_phase = 0.4;
  m.seed = 123;
  const YieldReport a = estimate_yield(gate, m, 100);
  const YieldReport b = estimate_yield(gate, m, 100);
  EXPECT_EQ(a.passing, b.passing);
  EXPECT_DOUBLE_EQ(a.mean_worst_margin, b.mean_worst_margin);
}

}  // namespace
}  // namespace swsim::core
