#include "mag/system.h"

#include <gtest/gtest.h>

#include "math/constants.h"

namespace swsim::mag {
namespace {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::ScalarField;
using swsim::math::Vec3;

Grid tiny_grid() { return Grid(4, 4, 1, 5e-9, 5e-9, 1e-9); }

TEST(System, FullBoxSystem) {
  const System sys(tiny_grid(), Material::fecob());
  EXPECT_EQ(sys.magnetic_cell_count(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(sys.mask()[i]);
    EXPECT_DOUBLE_EQ(sys.ms_at(i), Material::fecob().ms);
    EXPECT_DOUBLE_EQ(sys.alpha_at(i), Material::fecob().alpha);
  }
}

TEST(System, MaskedSystem) {
  Mask m(tiny_grid());
  m.set_at(0, 0, true);
  m.set_at(1, 0, true);
  const System sys(tiny_grid(), Material::fecob(), m);
  EXPECT_EQ(sys.magnetic_cell_count(), 2u);
  EXPECT_DOUBLE_EQ(sys.ms_scale()[tiny_grid().index(2, 2, 0)], 0.0);
}

TEST(System, RejectsEmptyMask) {
  const Mask empty(tiny_grid());
  EXPECT_THROW(System(tiny_grid(), Material::fecob(), empty),
               std::invalid_argument);
}

TEST(System, RejectsMaskGridMismatch) {
  const Mask m(Grid(2, 2, 1, 1e-9, 1e-9, 1e-9), true);
  EXPECT_THROW(System(tiny_grid(), Material::fecob(), m),
               std::invalid_argument);
}

TEST(System, RejectsInvalidMaterial) {
  Material bad = Material::fecob();
  bad.ms = -1.0;
  EXPECT_THROW(System(tiny_grid(), bad), std::invalid_argument);
}

TEST(System, UniformMagnetizationRespectsMask) {
  Mask m(tiny_grid());
  m.set_at(1, 1, true);
  const System sys(tiny_grid(), Material::fecob(), m);
  const auto mag = sys.uniform_magnetization({0, 0, 2});  // normalized
  EXPECT_EQ(mag.at(1, 1), (Vec3{0, 0, 1}));
  EXPECT_EQ(mag.at(0, 0), (Vec3{}));
}

TEST(System, MsScaleValidation) {
  const System base(tiny_grid(), Material::fecob());
  System sys = base;
  ScalarField scale(tiny_grid(), 0.9);
  EXPECT_NO_THROW(sys.set_ms_scale(scale));
  EXPECT_DOUBLE_EQ(sys.ms_at(0), 0.9 * Material::fecob().ms);

  ScalarField negative(tiny_grid(), -0.1);
  EXPECT_THROW(sys.set_ms_scale(negative), std::invalid_argument);

  ScalarField wrong_grid(Grid(2, 2, 1, 1e-9, 1e-9, 1e-9), 1.0);
  EXPECT_THROW(sys.set_ms_scale(wrong_grid), std::invalid_argument);
}

TEST(System, MsScaleMustBeZeroOutsideMask) {
  Mask m(tiny_grid());
  m.set_at(0, 0, true);
  System sys(tiny_grid(), Material::fecob(), m);
  ScalarField scale(tiny_grid(), 1.0);  // nonzero everywhere: illegal
  EXPECT_THROW(sys.set_ms_scale(scale), std::invalid_argument);
}

TEST(System, AlphaFieldValidation) {
  System sys(tiny_grid(), Material::fecob());
  ScalarField a(tiny_grid(), 0.2);
  EXPECT_NO_THROW(sys.set_alpha_field(a));
  EXPECT_DOUBLE_EQ(sys.alpha_at(0), 0.2);

  ScalarField below(tiny_grid(), 0.001);  // below material alpha (0.004)
  EXPECT_THROW(sys.set_alpha_field(below), std::invalid_argument);

  ScalarField above(tiny_grid(), 1.5);
  EXPECT_THROW(sys.set_alpha_field(above), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::mag
