#include "math/vec3.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/rng.h"

namespace swsim::math {
namespace {

TEST(Vec3, DefaultIsZero) {
  Vec3 v;
  EXPECT_EQ(v.x, 0.0);
  EXPECT_EQ(v.y, 0.0);
  EXPECT_EQ(v.z, 0.0);
}

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(a / 2.0, (Vec3{0.5, 1, 1.5}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += Vec3{1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= Vec3{1, 1, 1};
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{3, 6, 9}));
  v /= 3.0;
  EXPECT_EQ(v, (Vec3{1, 2, 3}));
}

TEST(Vec3, DotProduct) {
  EXPECT_DOUBLE_EQ(dot(Vec3{1, 2, 3}, Vec3{4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(dot(Vec3{1, 0, 0}, Vec3{0, 1, 0}), 0.0);
}

TEST(Vec3, CrossProductRightHanded) {
  EXPECT_EQ(cross(Vec3{1, 0, 0}, Vec3{0, 1, 0}), (Vec3{0, 0, 1}));
  EXPECT_EQ(cross(Vec3{0, 1, 0}, Vec3{0, 0, 1}), (Vec3{1, 0, 0}));
  EXPECT_EQ(cross(Vec3{0, 0, 1}, Vec3{1, 0, 0}), (Vec3{0, 1, 0}));
}

TEST(Vec3, CrossIsAntisymmetric) {
  const Vec3 a{1.5, -2.0, 0.25};
  const Vec3 b{-0.5, 3.0, 1.0};
  EXPECT_EQ(cross(a, b), -cross(b, a));
}

TEST(Vec3, CrossOrthogonalToOperands) {
  const Vec3 a{1.5, -2.0, 0.25};
  const Vec3 b{-0.5, 3.0, 1.0};
  const Vec3 c = cross(a, b);
  EXPECT_NEAR(dot(c, a), 0.0, 1e-12);
  EXPECT_NEAR(dot(c, b), 0.0, 1e-12);
}

TEST(Vec3, NormAndNorm2) {
  const Vec3 v{3, 4, 12};
  EXPECT_DOUBLE_EQ(norm2(v), 169.0);
  EXPECT_DOUBLE_EQ(norm(v), 13.0);
}

TEST(Vec3, NormalizedUnitLength) {
  const Vec3 v{1, 2, -2};
  EXPECT_NEAR(norm(normalized(v)), 1.0, 1e-15);
}

TEST(Vec3, NormalizedZeroStaysZero) {
  EXPECT_EQ(normalized(Vec3{}), (Vec3{}));
}

TEST(Vec3, Distance) {
  EXPECT_DOUBLE_EQ(distance(Vec3{1, 1, 1}, Vec3{4, 5, 1}), 5.0);
}

TEST(Vec3, Lerp) {
  const Vec3 a{0, 0, 0};
  const Vec3 b{2, 4, 6};
  EXPECT_EQ(lerp(a, b, 0.0), a);
  EXPECT_EQ(lerp(a, b, 1.0), b);
  EXPECT_EQ(lerp(a, b, 0.5), (Vec3{1, 2, 3}));
}

// Property: Lagrange identity |a x b|^2 = |a|^2 |b|^2 - (a.b)^2 over random
// vectors.
TEST(Vec3Property, LagrangeIdentity) {
  Pcg32 rng(123);
  for (int i = 0; i < 100; ++i) {
    const Vec3 a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const Vec3 b{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    const double lhs = norm2(cross(a, b));
    const double rhs = norm2(a) * norm2(b) - dot(a, b) * dot(a, b);
    EXPECT_NEAR(lhs, rhs, 1e-9 * std::max(1.0, rhs));
  }
}

// Property: scalar triple product is invariant under cyclic permutation.
TEST(Vec3Property, TripleProductCyclic) {
  Pcg32 rng(321);
  for (int i = 0; i < 100; ++i) {
    const Vec3 a{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 b{rng.normal(), rng.normal(), rng.normal()};
    const Vec3 c{rng.normal(), rng.normal(), rng.normal()};
    const double abc = dot(a, cross(b, c));
    const double bca = dot(b, cross(c, a));
    const double cab = dot(c, cross(a, b));
    EXPECT_NEAR(abc, bca, 1e-9 * std::max(1.0, std::fabs(abc)));
    EXPECT_NEAR(abc, cab, 1e-9 * std::max(1.0, std::fabs(abc)));
  }
}

}  // namespace
}  // namespace swsim::math
