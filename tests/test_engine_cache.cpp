// ResultCache: hit/miss accounting, LRU eviction order, idempotent
// inserts, and the disk spill round trip.
#include "engine/result_cache.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace swsim::engine {
namespace {

TEST(ResultCache, MissThenHit) {
  ResultCache cache(8);
  EXPECT_FALSE(cache.lookup(1).has_value());
  cache.insert(1, {1.0, 2.0});
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<double>{1.0, 2.0}));

  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(ResultCache, LruEvictsOldest) {
  ResultCache cache(2);
  cache.insert(1, {1.0});
  cache.insert(2, {2.0});
  cache.insert(3, {3.0});  // evicts key 1 (oldest)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(2).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, LookupRefreshesRecency) {
  ResultCache cache(2);
  cache.insert(1, {1.0});
  cache.insert(2, {2.0});
  cache.lookup(1);         // 1 becomes most recent
  cache.insert(3, {3.0});  // so 2 is evicted, not 1
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_FALSE(cache.lookup(2).has_value());
}

TEST(ResultCache, InsertExistingKeyKeepsStoredPayload) {
  // Content-addressing: one key, one payload. A duplicate insert (two jobs
  // raced to compute the same entry) must not change what later lookups
  // see, whatever the completion order was.
  ResultCache cache(4);
  cache.insert(1, {1.0});
  cache.insert(1, {999.0});
  EXPECT_EQ(*cache.lookup(1), (std::vector<double>{1.0}));
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ResultCache, ZeroCapacityIsClampedToOne) {
  ResultCache cache(0);
  cache.insert(1, {1.0});
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.capacity(), 1u);
}

TEST(ResultCache, SpillRoundTrip) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "swsim_spill_test";
  std::filesystem::remove_all(dir);

  ResultCache cache(1, dir.string());
  cache.insert(1, {1.5, 2.5});
  cache.insert(2, {3.5});  // evicts key 1 -> spilled to disk
  EXPECT_TRUE(std::filesystem::exists(dir / ResultCache::spill_filename(1)));
  EXPECT_EQ(cache.stats().spill_writes, 1u);

  // The spilled entry is a hit, served from disk and promoted back.
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(cache.stats().spill_loads, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // A second cache over the same directory sees the spilled results: the
  // keys are content hashes, so the directory outlives the process.
  cache.insert(3, {9.0});  // ensure key 2 or 1 spilled as well
  ResultCache fresh(4, dir.string());
  EXPECT_TRUE(fresh.lookup(1).has_value());

  std::filesystem::remove_all(dir);
}

TEST(ResultCache, RecoverSpillDirQuarantinesCorruptKeepsHealthyDropsTmp) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "swsim_recover_test";
  std::filesystem::remove_all(dir);

  // A healthy spilled entry (from a "previous run")...
  {
    ResultCache writer(1, dir.string());
    writer.insert(1, {1.5, 2.5});
    writer.insert(2, {3.5});  // evicts key 1 -> spilled intact
  }
  // ...plus the litter a crash leaves behind: a torn .swc and a tmp file
  // that never reached its atomic rename.
  {
    std::ofstream torn(dir / ResultCache::spill_filename(99),
                       std::ios::binary);
    torn << "not a spill file";
  }
  {
    std::ofstream tmp(dir / "abcd.swc.tmp.4242", std::ios::binary);
    tmp << "partial";
  }

  ResultCache cache(4, dir.string());
  const ResultCache::RecoveryReport report = cache.recover_spill_dir();
  EXPECT_EQ(report.scanned, 2u);  // the two .swc files; tmp is not scanned
  EXPECT_EQ(report.healthy, 1u);
  EXPECT_EQ(report.quarantined, 1u);
  EXPECT_EQ(report.removed_tmp, 1u);

  // The corrupt entry is preserved for inspection, not destroyed.
  EXPECT_TRUE(std::filesystem::exists(dir / "quarantine" /
                                      ResultCache::spill_filename(99)));
  EXPECT_FALSE(
      std::filesystem::exists(dir / ResultCache::spill_filename(99)));
  EXPECT_FALSE(std::filesystem::exists(dir / "abcd.swc.tmp.4242"));

  // The healthy entry still loads, and the quarantined key is a miss —
  // never an error surfaced to the engine.
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<double>{1.5, 2.5}));
  EXPECT_FALSE(cache.lookup(99).has_value());

  // Idempotent: a second scan finds a clean directory.
  const auto again = cache.recover_spill_dir();
  EXPECT_EQ(again.quarantined, 0u);
  EXPECT_EQ(again.removed_tmp, 0u);

  std::filesystem::remove_all(dir);
}

TEST(ResultCache, RecoverSpillDirWithoutSpillDirIsANoOp) {
  ResultCache cache(4);  // memory-only
  const auto report = cache.recover_spill_dir();
  EXPECT_EQ(report.scanned, 0u);
  EXPECT_EQ(report.quarantined, 0u);
}

TEST(ResultCache, ClearDropsMemoryKeepsStats) {
  ResultCache cache(4);
  cache.insert(1, {1.0});
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().insertions, 1u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().misses, 0u);
}

}  // namespace
}  // namespace swsim::engine
