// Physics health instrumentation: ConvergenceTracker decision logic and
// its rewind checkpoint, the ProbeHub bounded fan-out contract, and the
// PhysicsRegistry -> swsim.profile/1 "physics" block round trip.
#include "obs/physics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace swsim::obs {
namespace {

ConvergencePolicy strict_policy() {
  ConvergencePolicy p;
  p.rel_tolerance = 0.02;
  p.abs_floor = 1e-6;
  p.phase_tolerance = 0.05;
  p.windows = 3;
  p.min_time = 0.0;
  return p;
}

TEST(ConvergenceTracker, PolicyIsValidated) {
  ConvergencePolicy p = strict_policy();
  p.windows = 0;
  EXPECT_THROW(ConvergenceTracker{p}, std::invalid_argument);
  p = strict_policy();
  p.rel_tolerance = -0.1;
  EXPECT_THROW(ConvergenceTracker{p}, std::invalid_argument);
}

TEST(ConvergenceTracker, DecidesAfterConsecutiveStableWindowsExactlyOnce) {
  ConvergenceTracker tracker(strict_policy());
  // windows = 3 stable *deltas*: the fourth identical window decides.
  EXPECT_FALSE(tracker.add_window(1.0, 0.5, 0.1));
  EXPECT_FALSE(tracker.add_window(2.0, 0.5, 0.1));
  EXPECT_FALSE(tracker.add_window(3.0, 0.5, 0.1));
  EXPECT_FALSE(tracker.converged());
  EXPECT_TRUE(tracker.add_window(4.0, 0.5, 0.1));
  EXPECT_TRUE(tracker.converged());
  EXPECT_DOUBLE_EQ(tracker.converged_at(), 4.0);
  // Further windows keep counting but never re-decide.
  EXPECT_FALSE(tracker.add_window(5.0, 0.5, 0.1));
  EXPECT_EQ(tracker.windows_seen(), 5u);
  EXPECT_DOUBLE_EQ(tracker.converged_at(), 4.0);
}

TEST(ConvergenceTracker, UnstableWindowResetsTheStreak) {
  ConvergenceTracker tracker(strict_policy());
  EXPECT_FALSE(tracker.add_window(1.0, 0.5, 0.1));
  EXPECT_FALSE(tracker.add_window(2.0, 0.5, 0.1));
  EXPECT_FALSE(tracker.add_window(3.0, 0.5, 0.1));
  // Amplitude jumps 40%: streak back to zero. The jump window is the new
  // baseline, so three stable deltas after it decide.
  EXPECT_FALSE(tracker.add_window(4.0, 0.7, 0.1));
  EXPECT_FALSE(tracker.add_window(5.0, 0.7, 0.1));
  EXPECT_FALSE(tracker.add_window(6.0, 0.7, 0.1));
  EXPECT_TRUE(tracker.add_window(7.0, 0.7, 0.1));
}

TEST(ConvergenceTracker, PhaseDriftBlocksConvergence) {
  ConvergenceTracker tracker(strict_policy());
  double phase = 0.0;
  for (int i = 0; i < 10; ++i) {
    phase += 0.2;  // 0.2 rad per window > phase_tolerance 0.05
    EXPECT_FALSE(tracker.add_window(1.0 + i, 0.5, phase));
  }
  EXPECT_FALSE(tracker.converged());
}

TEST(ConvergenceTracker, MinTimeDefersTheDecision) {
  ConvergencePolicy p = strict_policy();
  p.min_time = 10.0;  // e.g. the wave transit time
  ConvergenceTracker tracker(p);
  // Flat-at-zero before the wave arrives: stable, but too early to count.
  EXPECT_FALSE(tracker.add_window(1.0, 0.0, 0.0));
  EXPECT_FALSE(tracker.add_window(2.0, 0.0, 0.0));
  EXPECT_FALSE(tracker.add_window(3.0, 0.0, 0.0));
  EXPECT_FALSE(tracker.add_window(4.0, 0.0, 0.0));
  EXPECT_FALSE(tracker.converged());
  // The first stable window past min_time decides.
  EXPECT_TRUE(tracker.add_window(11.0, 0.0, 0.0));
  EXPECT_DOUBLE_EQ(tracker.converged_at(), 11.0);
}

TEST(ConvergenceTracker, CheckpointRestoreReplaysTheSameDecision) {
  ConvergenceTracker tracker(strict_policy());
  tracker.add_window(1.0, 0.5, 0.1);
  tracker.add_window(2.0, 0.5, 0.1);
  const auto cp = tracker.checkpoint();

  // Divergent branch: converges on different data.
  tracker.add_window(3.0, 0.5, 0.1);
  tracker.add_window(4.0, 0.5, 0.1);
  ASSERT_TRUE(tracker.converged());

  // Rewind, replay the true stream: same verdict a clean run gives.
  tracker.restore(cp);
  EXPECT_FALSE(tracker.converged());
  EXPECT_EQ(tracker.windows_seen(), 2u);
  EXPECT_FALSE(tracker.add_window(3.0, 0.9, 0.1));  // jump resets streak
  EXPECT_FALSE(tracker.add_window(4.0, 0.9, 0.1));
  EXPECT_FALSE(tracker.add_window(5.0, 0.9, 0.1));
  EXPECT_TRUE(tracker.add_window(6.0, 0.9, 0.1));
  EXPECT_DOUBLE_EQ(tracker.converged_at(), 6.0);
}

// --- ProbeHub -------------------------------------------------------------

ProbeHub::Frame frame(std::uint64_t window, double amplitude) {
  ProbeHub::Frame f;
  f.job = "micromag MAJ3 101";
  f.probe = "O1";
  f.window = window;
  f.t = 1e-9 * static_cast<double>(window);
  f.amplitude = amplitude;
  f.phase = 0.25;
  f.converged = window >= 3;
  f.converged_at = window >= 3 ? 3e-9 : -1.0;
  return f;
}

TEST(ProbeHub, InertWithoutSubscribersAndDeliversInOrder) {
  auto& hub = ProbeHub::global();
  EXPECT_FALSE(hub.active());
  hub.publish(frame(0, 0.1));  // nobody listening: dropped on the floor

  auto sub = hub.subscribe();
  EXPECT_TRUE(hub.active());
  hub.publish(frame(1, 0.2));
  hub.publish(frame(2, 0.3));

  ProbeHub::Frame got;
  ASSERT_TRUE(sub->next(&got, 1.0));
  EXPECT_EQ(got.window, 1u);
  EXPECT_EQ(got.job, "micromag MAJ3 101");
  EXPECT_EQ(got.probe, "O1");
  EXPECT_DOUBLE_EQ(got.amplitude, 0.2);
  EXPECT_FALSE(got.converged);
  ASSERT_TRUE(sub->next(&got, 1.0));
  EXPECT_EQ(got.window, 2u);
  // Queue drained: next() times out instead of blocking forever.
  EXPECT_FALSE(sub->next(&got, 0.01));
  EXPECT_EQ(sub->dropped(), 0u);

  sub.reset();
  EXPECT_FALSE(hub.active());
}

TEST(ProbeHub, SlowSubscriberLosesOldestFramesWithACount) {
  auto& hub = ProbeHub::global();
  auto slow = hub.subscribe(/*capacity=*/2);
  for (std::uint64_t w = 1; w <= 5; ++w) hub.publish(frame(w, 0.1));

  EXPECT_EQ(slow->dropped(), 3u);
  ProbeHub::Frame got;
  ASSERT_TRUE(slow->next(&got, 1.0));
  EXPECT_EQ(got.window, 4u);  // oldest went first: 1..3 are gone
  ASSERT_TRUE(slow->next(&got, 1.0));
  EXPECT_EQ(got.window, 5u);
  EXPECT_TRUE(got.converged);
  EXPECT_DOUBLE_EQ(got.converged_at, 3e-9);
}

TEST(ProbeHub, IndependentSubscribersGetIndependentQueues) {
  auto& hub = ProbeHub::global();
  auto a = hub.subscribe();
  auto b = hub.subscribe(2);
  for (std::uint64_t w = 1; w <= 4; ++w) hub.publish(frame(w, 0.1));

  ProbeHub::Frame got;
  for (std::uint64_t w = 1; w <= 4; ++w) {
    ASSERT_TRUE(a->next(&got, 1.0));
    EXPECT_EQ(got.window, w);
  }
  EXPECT_EQ(a->dropped(), 0u);
  EXPECT_EQ(b->dropped(), 2u);
}

// --- PhysicsRegistry and the profile "physics" block ----------------------

class PhysicsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::arm();
    PhysicsRegistry::global().reset();
  }
  void TearDown() override {
    PhysicsRegistry::global().reset();
    MetricsRegistry::disarm();
  }
};

TEST_F(PhysicsRegistryTest, RecordersAccumulateIntoTheSnapshot) {
  auto& reg = PhysicsRegistry::global();
  reg.record_window("O1", 0.5, 0.1);
  reg.record_window("O1", 0.6, 0.2);
  reg.record_window("O2", 0.1, -1.0);
  reg.record_converged("O1", 2.5e-9);
  reg.record_energy(1e-18, 4e-19);
  reg.record_energy(2e-18, 5e-19);
  reg.record_early_stop(1200);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.probes.count("O1"), 1u);
  EXPECT_EQ(snap.probes.at("O1").windows, 2u);
  EXPECT_DOUBLE_EQ(snap.probes.at("O1").amplitude, 0.6);  // last window wins
  EXPECT_DOUBLE_EQ(snap.probes.at("O1").phase, 0.2);
  EXPECT_DOUBLE_EQ(snap.probes.at("O1").converged_at, 2.5e-9);
  EXPECT_LT(snap.probes.at("O2").converged_at, 0.0);  // never decided
  EXPECT_EQ(snap.energy_samples, 2u);
  EXPECT_DOUBLE_EQ(snap.total_energy_j, 2e-18);
  EXPECT_DOUBLE_EQ(snap.exchange_energy_j, 5e-19);
  EXPECT_EQ(snap.early_stop_saved_steps, 1200u);
}

TEST_F(PhysicsRegistryTest, DisarmedRecordersAreNoOps) {
  MetricsRegistry::disarm();
  auto& reg = PhysicsRegistry::global();
  reg.record_window("O1", 0.5, 0.1);
  reg.record_energy(1e-18, 4e-19);
  reg.record_early_stop(77);
  const auto snap = reg.snapshot();
  EXPECT_TRUE(snap.probes.empty());
  EXPECT_EQ(snap.energy_samples, 0u);
  EXPECT_EQ(snap.early_stop_saved_steps, 0u);
}

TEST_F(PhysicsRegistryTest, ProfilePhysicsBlockRoundTrips) {
  auto& reg = PhysicsRegistry::global();
  reg.record_window("O2", 0.3, 0.7);
  reg.record_window("O1", 0.5, 0.1);
  reg.record_converged("O1", 1.5e-9);
  reg.record_energy(3e-18, 1e-18);
  reg.record_early_stop(500);

  const RunProfile profile = RunProfile::collect(0.25);
  ASSERT_EQ(profile.physics_probes.size(), 2u);
  EXPECT_EQ(profile.physics_probes[0].name, "O1");  // sorted by name
  EXPECT_EQ(profile.physics_probes[1].name, "O2");
  EXPECT_DOUBLE_EQ(profile.physics_probes[0].converged_at, 1.5e-9);
  EXPECT_EQ(profile.early_stop_saved_steps, 500u);

  const auto parsed = parse_json(profile.to_json());
  ASSERT_NE(parsed.find("physics"), nullptr);
  const RunProfile back = RunProfile::from_json(parsed);
  ASSERT_EQ(back.physics_probes.size(), 2u);
  EXPECT_EQ(back.physics_probes[0].name, "O1");
  EXPECT_EQ(back.physics_probes[0].windows, 1u);
  EXPECT_DOUBLE_EQ(back.physics_probes[0].amplitude, 0.5);
  EXPECT_DOUBLE_EQ(back.physics_probes[0].converged_at, 1.5e-9);
  EXPECT_LT(back.physics_probes[1].converged_at, 0.0);
  EXPECT_EQ(back.physics_energy_samples, 1u);
  EXPECT_DOUBLE_EQ(back.physics_total_energy_j, 3e-18);
  EXPECT_DOUBLE_EQ(back.physics_exchange_energy_j, 1e-18);
  EXPECT_EQ(back.early_stop_saved_steps, 500u);
}

}  // namespace
}  // namespace swsim::obs
