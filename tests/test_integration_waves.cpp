// Physics integration: spin waves propagating in a straight micromagnetic
// waveguide must match the analytical Kalinikos-Slavin dispersion that the
// wave-network backend uses — this test ties the two substrates together.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mag/simulation.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "math/lockin.h"
#include "wavenet/dispersion.h"

namespace swsim {
namespace {

using namespace swsim::math;
using mag::Material;

// A 1-cell-wide strip: effectively a 1D waveguide with thin-film demag.
// (The transverse confinement of a real strip shifts the dispersion; the
// 1D strip is the geometry the analytical model describes.)
mag::Simulation make_strip(std::size_t nx, double cell, double alpha_scale,
                           double drive_f, double drive_amp,
                           double drive_phase) {
  Material mat = Material::fecob();
  const Grid g(nx, 1, 1, cell, cell, nm(1));
  mag::System sys(g, mat);

  // Absorbing tail on the far end (last quarter) to kill reflections.
  ScalarField alpha(g, mat.alpha);
  for (std::size_t x = 3 * nx / 4; x < nx; ++x) {
    const double s = static_cast<double>(x - 3 * nx / 4) /
                     static_cast<double>(nx - 3 * nx / 4);
    alpha[g.index(x, 0, 0)] = mat.alpha + (0.5 - mat.alpha) * s * s * alpha_scale;
  }
  sys.set_alpha_field(alpha);

  mag::Simulation sim(std::move(sys));
  sim.add_standard_terms();

  Mask antenna(g);
  antenna.set_at(2, 0, true);
  antenna.set_at(3, 0, true);
  sim.add_term(std::make_unique<mag::AntennaField>(
      antenna, drive_amp, Vec3{1, 0, 0}, drive_f, drive_phase));
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.25));
  return sim;
}

TEST(WavePropagation, MeasuredWavelengthMatchesDispersion) {
  const wavenet::Dispersion disp(Material::fecob(), nm(1));
  const double lambda_design = nm(50);
  const double f = disp.frequency(wavenet::Dispersion::k_of_lambda(lambda_design));

  const std::size_t nx = 120;
  const double cell = nm(5);
  auto sim = make_strip(nx, cell, 1.0, f, 4e3, 0.0);
  sim.run(ns(1.2));

  // Fit the spatial oscillation of m_x in the steady region (between the
  // antenna and the absorber) by scanning the zero crossings.
  const auto& m = sim.magnetization();
  std::vector<double> crossings;
  for (std::size_t x = 8; x < 3 * nx / 4 - 2; ++x) {
    const double a = m[sim.system().grid().index(x, 0, 0)].x;
    const double b = m[sim.system().grid().index(x + 1, 0, 0)].x;
    if ((a <= 0.0 && b > 0.0) || (a >= 0.0 && b < 0.0)) {
      // Linear interpolation of the crossing position.
      crossings.push_back((static_cast<double>(x) + a / (a - b)) * cell);
    }
  }
  ASSERT_GE(crossings.size(), 4u);
  // Average crossing spacing = lambda / 2.
  const double measured_lambda =
      2.0 * (crossings.back() - crossings.front()) /
      static_cast<double>(crossings.size() - 1);
  EXPECT_NEAR(measured_lambda, lambda_design, lambda_design * 0.15);
}

TEST(WavePropagation, AntennaPhaseShiftsWavePhase) {
  // Driving with phase pi must produce the inverted waveform at a probe
  // downstream — the physical basis of the paper's phase encoding.
  const wavenet::Dispersion disp(Material::fecob(), nm(1));
  const double f = disp.frequency(wavenet::Dispersion::k_of_lambda(nm(50)));

  auto run_phase = [&](double drive_phase) {
    auto sim = make_strip(96, nm(5), 1.0, f, 4e3, drive_phase);
    Mask probe_region(sim.system().grid());
    probe_region.set_at(40, 0, true);
    auto& probe = sim.add_probe("p", probe_region, 1.0 / (32.0 * f));
    sim.run(ns(1.0));
    const auto& t = probe.times();
    const auto i0 = static_cast<std::size_t>(0.6 * t.size());
    std::vector<double> tail(probe.mx().begin() + static_cast<long>(i0),
                             probe.mx().end());
    return lockin(tail, t[1] - t[0], f, t[i0]);
  };

  const auto r0 = run_phase(0.0);
  const auto r1 = run_phase(kPi);
  EXPECT_GT(r0.amplitude, 1e-5);
  EXPECT_NEAR(phase_distance(r0.phase, r1.phase), kPi, 0.15);
  EXPECT_NEAR(r0.amplitude, r1.amplitude, r0.amplitude * 0.05);
}

TEST(WavePropagation, AmplitudeDecaysAlongGuide) {
  // Gilbert damping attenuates the traveling wave; the decay length must
  // be finite and of the order the dispersion model predicts.
  const wavenet::Dispersion disp(Material::fecob(), nm(1));
  const double k = wavenet::Dispersion::k_of_lambda(nm(50));
  const double f = disp.frequency(k);

  // Use artificially high damping so the decay is measurable on a short
  // strip.
  Material lossy = Material::fecob();
  lossy.alpha = 0.04;
  const Grid g(120, 1, 1, nm(5), nm(5), nm(1));
  mag::System sys(g, lossy);
  mag::Simulation sim(std::move(sys));
  sim.add_standard_terms();
  Mask antenna(g);
  antenna.set_at(2, 0, true);
  antenna.set_at(3, 0, true);
  sim.add_term(std::make_unique<mag::AntennaField>(antenna, 4e3,
                                                   Vec3{1, 0, 0}, f, 0.0));
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.25));
  sim.run(ns(1.2));

  // Envelope at two positions.
  auto envelope_at = [&](std::size_t x) {
    double peak = 0.0;
    for (std::size_t dx = 0; dx < 12; ++dx) {
      peak = std::max(peak, std::fabs(sim.magnetization()[g.index(x + dx, 0, 0)].x));
    }
    return peak;
  };
  const double near = envelope_at(10);
  const double far = envelope_at(70);
  EXPECT_GT(near, 0.0);
  EXPECT_LT(far, near);  // decays

  const wavenet::Dispersion lossy_disp(lossy, nm(1));
  const double latt = lossy_disp.attenuation_length(k);
  const double expected_ratio = std::exp(-(60.0 + 6.0) * nm(5) / latt);
  EXPECT_NEAR(far / near, expected_ratio, expected_ratio * 1.0);
}

TEST(WavePropagation, BelowFmrNoPropagation) {
  // Driving far below the FMR gap must not launch a propagating wave at
  // the drive frequency. (The turn-on transient rings near the FMR for a
  // long time at alpha = 0.004, so compare steady-state lock-in amplitudes
  // at the drive frequency rather than raw envelopes.)
  const wavenet::Dispersion disp(Material::fecob(), nm(1));
  const double f_low = disp.frequency(0.0) * 0.3;
  auto sim = make_strip(96, nm(5), 1.0, f_low, 4e3, 0.0);

  const auto& g = sim.system().grid();
  Mask near_region(g), far_region(g);
  for (std::size_t x = 5; x < 9; ++x) near_region.set_at(x, 0, true);
  for (std::size_t x = 50; x < 54; ++x) far_region.set_at(x, 0, true);
  const double sample_dt = 1.0 / (32.0 * f_low);
  auto& near_probe = sim.add_probe("near", near_region, sample_dt);
  auto& far_probe = sim.add_probe("far", far_region, sample_dt);
  // f_low ~ 1.1 GHz has a ~0.9 ns period: run long enough for several
  // settled periods in the lock-in window.
  sim.run(ns(4.0));

  auto tail_amp = [&](const mag::RegionProbe& p) {
    const auto& t = p.times();
    const auto i0 = static_cast<std::size_t>(0.4 * t.size());
    std::vector<double> tail(p.mx().begin() + static_cast<long>(i0),
                             p.mx().end());
    return lockin(tail, t[1] - t[0], f_low, t[i0]).amplitude;
  };
  const double near_amp = tail_amp(near_probe);
  const double far_amp = tail_amp(far_probe);
  EXPECT_GT(near_amp, 0.0);
  // Evanescent at f_low: the drive-frequency response dies within tens of
  // nanometers, so 200+ nm away it is at least 30x smaller.
  EXPECT_LT(far_amp, near_amp / 30.0 + 1e-12);
}

}  // namespace
}  // namespace swsim
