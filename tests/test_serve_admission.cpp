// AdmissionQueue: bounded backpressure, strict priority bands, per-client
// round-robin fairness, and the close()-then-drain contract the daemon's
// graceful shutdown is built on.
#include "serve/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace swsim::serve {
namespace {

std::unique_ptr<PendingRequest> make_request(const std::string& client,
                                             int priority,
                                             std::uint64_t id = 0) {
  auto r = std::make_unique<PendingRequest>();
  r->request.client = client;
  r->request.priority = priority;
  r->request.id = id;
  return r;
}

TEST(AdmissionQueue, FifoForOneClient) {
  AdmissionQueue q(8);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(q.push(make_request("a", 0, i)), Admit::kAdmitted);
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    const auto r = q.pop();
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->request.id, i);
  }
  EXPECT_EQ(q.depth(), 0u);
}

TEST(AdmissionQueue, CapacityIsAHardLimit) {
  AdmissionQueue q(2);
  EXPECT_EQ(q.push(make_request("a", 0)), Admit::kAdmitted);
  EXPECT_EQ(q.push(make_request("b", 0)), Admit::kAdmitted);
  EXPECT_EQ(q.push(make_request("c", 0)), Admit::kOverloaded);
  EXPECT_EQ(q.depth(), 2u);
  // Popping frees a slot; admission resumes.
  ASSERT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.push(make_request("c", 0)), Admit::kAdmitted);
}

TEST(AdmissionQueue, HigherPriorityBandDrainsStrictlyFirst) {
  AdmissionQueue q(8);
  ASSERT_EQ(q.push(make_request("bulk", 0, 1)), Admit::kAdmitted);
  ASSERT_EQ(q.push(make_request("bulk", 0, 2)), Admit::kAdmitted);
  ASSERT_EQ(q.push(make_request("urgent", 5, 3)), Admit::kAdmitted);
  ASSERT_EQ(q.push(make_request("urgent", 5, 4)), Admit::kAdmitted);

  // Both priority-5 requests come out before any priority-0 one, even
  // though they were pushed later.
  EXPECT_EQ(q.pop()->request.id, 3u);
  EXPECT_EQ(q.pop()->request.id, 4u);
  EXPECT_EQ(q.pop()->request.id, 1u);
  EXPECT_EQ(q.pop()->request.id, 2u);
}

TEST(AdmissionQueue, RoundRobinOverClientsWithinABand) {
  // One chatty client queues 4 requests, two quiet ones queue 1 each. The
  // quiet clients must each be served within the first three pops — the
  // chatty client cannot monopolise the band.
  AdmissionQueue q(8);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(q.push(make_request("chatty", 0, 100 + i)), Admit::kAdmitted);
  }
  ASSERT_EQ(q.push(make_request("quiet1", 0, 1)), Admit::kAdmitted);
  ASSERT_EQ(q.push(make_request("quiet2", 0, 2)), Admit::kAdmitted);

  std::set<std::string> first_three;
  for (int i = 0; i < 3; ++i) first_three.insert(q.pop()->request.client);
  EXPECT_TRUE(first_three.count("quiet1"));
  EXPECT_TRUE(first_three.count("quiet2"));
  EXPECT_TRUE(first_three.count("chatty"));

  // The remaining pops are the chatty backlog, still in FIFO order.
  std::uint64_t prev = 0;
  for (int i = 0; i < 3; ++i) {
    const auto r = q.pop();
    EXPECT_EQ(r->request.client, "chatty");
    EXPECT_GT(r->request.id, prev);
    prev = r->request.id;
  }
}

TEST(AdmissionQueue, CloseDrainsBacklogThenReturnsNull) {
  AdmissionQueue q(8);
  ASSERT_EQ(q.push(make_request("a", 0, 1)), Admit::kAdmitted);
  ASSERT_EQ(q.push(make_request("b", 0, 2)), Admit::kAdmitted);
  q.close();
  // New work is rejected as kClosed (the session answers kDraining)...
  EXPECT_EQ(q.push(make_request("c", 0, 3)), Admit::kClosed);
  // ...but the admitted backlog still comes out, then nullptr forever.
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
  EXPECT_EQ(q.pop(), nullptr);
  q.close();  // idempotent
}

TEST(AdmissionQueue, CloseWakesBlockedPoppers) {
  AdmissionQueue q(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> poppers;
  for (int i = 0; i < 3; ++i) {
    poppers.emplace_back([&] {
      while (q.pop() != nullptr) {
      }
      woke.fetch_add(1);
    });
  }
  // Give the poppers a moment to block, then close: all must return.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : poppers) t.join();
  EXPECT_EQ(woke.load(), 3);
}

TEST(AdmissionQueue, ConcurrentProducersAndConsumersLoseNothing) {
  // 4 producers x 64 requests against 3 consumers. Every admitted request
  // is popped exactly once; rejected pushes are retried, so the totals
  // must balance regardless of interleaving.
  AdmissionQueue q(16);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 64;
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (q.pop() != nullptr) popped.fetch_add(1);
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      const std::string client = "client" + std::to_string(p);
      for (int i = 0; i < kPerProducer; ++i) {
        while (q.push(make_request(client, p % 2, i)) != Admit::kAdmitted) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(popped.load(), kProducers * kPerProducer);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(AdmissionQueue, PushStampsEnqueueTimeAndOldestWaitTracksTheHead) {
  AdmissionQueue q(8);
  EXPECT_EQ(q.oldest_wait_seconds(), 0.0);  // empty queue: no waiter
  const auto before = std::chrono::steady_clock::now();
  ASSERT_EQ(q.push(make_request("a", 0, 1)), Admit::kAdmitted);
  const auto r_peek_wait = q.oldest_wait_seconds();
  EXPECT_GE(r_peek_wait, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  // The head has now aged visibly.
  EXPECT_GE(q.oldest_wait_seconds(), 0.025);
  const auto r = q.pop();
  ASSERT_NE(r, nullptr);
  EXPECT_GE(r->enqueued_at, before);
  EXPECT_EQ(q.oldest_wait_seconds(), 0.0);
}

TEST(AdmissionQueue, OldestWaitSpansPriorityBands) {
  // The oldest waiter may sit in a *lower* band than the head-of-service;
  // the age metric reports the oldest regardless of band.
  AdmissionQueue q(8);
  ASSERT_EQ(q.push(make_request("bulk", 0, 1)), Admit::kAdmitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_EQ(q.push(make_request("urgent", 5, 2)), Admit::kAdmitted);
  EXPECT_GE(q.oldest_wait_seconds(), 0.025);
}

TEST(AdmissionQueue, SetCapacityShrinksAdmissionWithoutEvicting) {
  AdmissionQueue q(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(q.push(make_request("a", 0, i)), Admit::kAdmitted);
  }
  // Shrinking below the live depth never evicts admitted work — it only
  // gates new pushes until the backlog drains under the new bound.
  q.set_capacity(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.push(make_request("a", 0, 9)), Admit::kOverloaded);
  ASSERT_NE(q.pop(), nullptr);
  ASSERT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.push(make_request("a", 0, 9)), Admit::kOverloaded);  // at 2
  ASSERT_NE(q.pop(), nullptr);
  EXPECT_EQ(q.push(make_request("a", 0, 9)), Admit::kAdmitted);
  // Growing takes effect immediately; zero clamps to one.
  q.set_capacity(0);
  EXPECT_EQ(q.capacity(), 1u);
}

TEST(AdmissionQueue, DeadlineFieldsDefaultToUnset) {
  PendingRequest r;
  EXPECT_FALSE(r.has_deadline());
  r.deadline_at = std::chrono::steady_clock::now();
  EXPECT_TRUE(r.has_deadline());
}

}  // namespace
}  // namespace swsim::serve
