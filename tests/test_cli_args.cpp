#include "cli/args.h"

#include <gtest/gtest.h>

namespace swsim::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"swsim"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, EmptyCommandLine) {
  const Args a = parse({});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.positional().empty());
}

TEST(Args, CommandAndPositionals) {
  const Args a = parse({"truthtable", "maj", "extra"});
  EXPECT_EQ(a.command(), "truthtable");
  ASSERT_EQ(a.positional().size(), 2u);
  EXPECT_EQ(a.positional()[0], "maj");
  EXPECT_EQ(a.positional()[1], "extra");
}

TEST(Args, KeyValueOptions) {
  const Args a = parse({"yield", "--trials", "200", "--gate", "xor"});
  EXPECT_EQ(a.command(), "yield");
  EXPECT_TRUE(a.has("trials"));
  EXPECT_EQ(a.value("gate").value(), "xor");
  EXPECT_EQ(a.integer("trials", 0), 200);
}

TEST(Args, BareFlags) {
  const Args a = parse({"micromag", "--xor", "--cell", "5"});
  EXPECT_TRUE(a.has("xor"));
  EXPECT_FALSE(a.value("xor").has_value());  // flag, no value
  EXPECT_DOUBLE_EQ(a.number("cell", 0.0), 5.0);
}

TEST(Args, FlagFollowedByFlag) {
  const Args a = parse({"cmd", "--a", "--b", "1"});
  EXPECT_TRUE(a.has("a"));
  EXPECT_FALSE(a.value("a").has_value());
  EXPECT_EQ(a.integer("b", 0), 1);
}

TEST(Args, NumericDefaults) {
  const Args a = parse({"cmd"});
  EXPECT_DOUBLE_EQ(a.number("missing", 3.5), 3.5);
  EXPECT_EQ(a.integer("missing", 7), 7);
}

TEST(Args, NumericValidation) {
  const Args a = parse({"cmd", "--x", "abc", "--y", "1.5z"});
  EXPECT_THROW(a.number("x", 0.0), std::invalid_argument);
  EXPECT_THROW(a.number("y", 0.0), std::invalid_argument);
  EXPECT_THROW(a.integer("x", 0), std::invalid_argument);
}

TEST(Args, NegativeNumbersAsValues) {
  // "-5" does not start with "--", so it parses as a value.
  const Args a = parse({"cmd", "--offset", "-5"});
  EXPECT_EQ(a.integer("offset", 0), -5);
}

TEST(Args, MalformedOptions) {
  EXPECT_THROW(parse({"cmd", "--"}), std::invalid_argument);
}

TEST(Args, RepeatedOptionRejected) {
  // A repeated flag must be an error, not a silent first/last-one-wins.
  EXPECT_THROW(parse({"cmd", "--lambda", "55", "--lambda", "60"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"cmd", "--verbose", "--verbose"}),
               std::invalid_argument);
  // Repeating a *value* that happens to equal a flag name is fine.
  const Args a = parse({"cmd", "--gate", "maj", "--tag", "maj"});
  EXPECT_EQ(a.value("gate").value(), "maj");
  EXPECT_EQ(a.value("tag").value(), "maj");
}

TEST(Args, OptionBeforeCommandMeansNoCommand) {
  const Args a = parse({"--verbose", "thing"});
  EXPECT_TRUE(a.command().empty());
  EXPECT_TRUE(a.has("verbose"));
  EXPECT_EQ(a.value("verbose").value(), "thing");
}

TEST(Args, EqualsSyntaxIsASynonym) {
  const Args a = parse({"batch", "--jobs=4", "--gate=maj"});
  EXPECT_EQ(a.integer("jobs", 0), 4);
  EXPECT_EQ(a.value("gate").value(), "maj");
  // An equals value may itself contain '=' (split at the first one only).
  const Args b = parse({"cmd", "--inject=stall:row 3:0.5"});
  EXPECT_EQ(b.value("inject").value(), "stall:row 3:0.5");
}

TEST(Args, EqualsSyntaxRejectsEmptyValueAndRepeats) {
  EXPECT_THROW(parse({"cmd", "--jobs="}), std::invalid_argument);
  EXPECT_THROW(parse({"cmd", "--jobs=2", "--jobs", "3"}),
               std::invalid_argument);
}

TEST(Args, MalformedNumericFlagIsAUsageError) {
  const Args a = parse({"batch", "--jobs=abc"});
  EXPECT_THROW(a.integer("jobs", 0), std::invalid_argument);
  EXPECT_THROW(a.unsigned_integer("jobs", 0), std::invalid_argument);
}

TEST(Args, UnsignedIntegerRejectsNegativeCounts) {
  const Args a = parse({"batch", "--jobs", "-4", "--trials", "16"});
  try {
    a.unsigned_integer("jobs", 0);
    FAIL() << "negative count accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("non-negative"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-4"), std::string::npos);
  }
  EXPECT_EQ(a.unsigned_integer("trials", 0), 16u);
  EXPECT_EQ(a.unsigned_integer("missing", 9), 9u);  // fallback untouched
}

}  // namespace
}  // namespace swsim::cli
