#include "core/validator.h"

#include <gtest/gtest.h>

#include "core/logic.h"
#include "core/triangle_gate.h"

namespace swsim::core {
namespace {

// A synthetic gate with a deliberate error on one row, to check the
// validator actually catches failures.
class BrokenMajGate final : public FanoutGate {
 public:
  std::string name() const override { return "broken-maj"; }
  std::size_t num_inputs() const override { return 3; }
  int excitation_cells() const override { return 3; }
  bool reference(const std::vector<bool>& in) const override {
    return maj3(in.at(0), in.at(1), in.at(2));
  }
  FanoutOutputs evaluate(const std::vector<bool>& in) override {
    FanoutOutputs out;
    bool v = maj3(in[0], in[1], in[2]);
    if (in[0] && in[1] && !in[2]) v = !v;  // the planted bug
    out.o1.logic = v;
    out.o2.logic = v;
    out.o1.margin = out.o2.margin = 0.5;
    out.normalized_o1 = 0.9;
    out.normalized_o2 = 0.8;
    return out;
  }
};

TEST(Validator, PassesCorrectGate) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass);
  EXPECT_EQ(report.rows.size(), 8u);
  EXPECT_EQ(report.gate_name, gate.name());
}

TEST(Validator, CatchesPlantedBug) {
  BrokenMajGate gate;
  const auto report = validate_gate(gate);
  EXPECT_FALSE(report.all_pass);
  int failures = 0;
  for (const auto& row : report.rows) {
    if (!row.pass_o1) ++failures;
  }
  EXPECT_EQ(failures, 1);
}

TEST(Validator, TracksAsymmetry) {
  BrokenMajGate gate;
  const auto report = validate_gate(gate);
  EXPECT_NEAR(report.max_output_asymmetry, 0.1, 1e-12);
}

TEST(Validator, TracksWorstMargin) {
  BrokenMajGate gate;
  const auto report = validate_gate(gate);
  EXPECT_NEAR(report.min_margin, 0.5, 1e-12);
}

TEST(Validator, FormatContainsVerdictAndRows) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  const auto report = validate_gate(gate);
  const std::string s = format_report(report);
  EXPECT_NE(s.find("PASS"), std::string::npos);
  EXPECT_NE(s.find("I3"), std::string::npos);
  EXPECT_NE(s.find("O1"), std::string::npos);
  // 8 truth-table rows.
  EXPECT_NE(s.find("fan-out symmetry"), std::string::npos);
}

TEST(Validator, FormatMarksFailures) {
  BrokenMajGate gate;
  const std::string s = format_report(validate_gate(gate));
  EXPECT_NE(s.find("NO"), std::string::npos);
  EXPECT_NE(s.find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace swsim::core
