#include "core/ladder_gate.h"

#include <gtest/gtest.h>

#include "core/logic.h"
#include "core/triangle_gate.h"
#include "core/validator.h"

namespace swsim::core {
namespace {

LadderGateConfig default_config() { return LadderGateConfig{}; }

TEST(LadderMajGate, CalibratedTruthTable) {
  LadderMajGate gate(default_config());
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
}

TEST(LadderMajGate, FanOutOfTwoWorks) {
  LadderMajGate gate(default_config());
  for (const auto& p : all_input_patterns(3)) {
    const auto out = gate.evaluate(p);
    EXPECT_EQ(out.o1.logic, out.o2.logic);
  }
}

TEST(LadderMajGate, RequiresMoreExcitationCellsThanTriangle) {
  // The paper's headline: the ladder needs a replicated input (4 cells vs
  // 3), which is exactly the 25% energy overhead of Table III.
  LadderMajGate ladder(default_config());
  TriangleMajGate triangle = TriangleMajGate::paper_device();
  EXPECT_EQ(ladder.excitation_cells(), 4);
  EXPECT_EQ(triangle.excitation_cells(), 3);
}

TEST(LadderMajGate, CalibrationRequiresUnequalLevels) {
  // Sec. IV-D: ladder inputs must be excited at different energy levels.
  LadderMajGate gate(default_config());
  EXPECT_GT(gate.excitation_level_ratio(), 1.05);
}

TEST(LadderMajGate, EqualLevelDriveDegradesAmplitudeMargins) {
  // Sec. IV-D: without per-input level calibration the ladder's rung-split
  // losses unbalance the interference. Phase detection still reads the
  // sign, but the worst-case output amplitude (the distance to a sign
  // flip) collapses — the robustness cost of the ladder design.
  LadderGateConfig equal = default_config();
  equal.calibrated_excitation = false;
  LadderMajGate uncalibrated(equal);
  EXPECT_DOUBLE_EQ(uncalibrated.excitation_level_ratio(), 1.0);
  LadderMajGate calibrated(default_config());

  auto worst_mixed_amplitude = [](LadderMajGate& gate) {
    double worst = 1e300;
    for (const auto& p : all_input_patterns(3)) {
      const int ones = static_cast<int>(p[0]) + p[1] + p[2];
      if (ones == 0 || ones == 3) continue;
      worst = std::min(worst, gate.evaluate(p).normalized_o1);
    }
    return worst;
  };
  EXPECT_LT(worst_mixed_amplitude(uncalibrated),
            0.8 * worst_mixed_amplitude(calibrated));
}

TEST(LadderMajGate, RejectsWrongArity) {
  LadderMajGate gate(default_config());
  EXPECT_THROW(gate.evaluate({true}), std::invalid_argument);
}

TEST(LadderMajGate, ReferenceIsMaj3) {
  LadderMajGate gate(default_config());
  for (const auto& p : all_input_patterns(3)) {
    EXPECT_EQ(gate.reference(p), maj3(p[0], p[1], p[2]));
  }
}

TEST(LadderMajGate, LosslessUncalibratedFailsCalibratedPasses) {
  // Even with idealized lossless splitting, the ladder's path-length
  // asymmetry (attenuation) breaks the truth table at equal drive levels —
  // and calibration repairs it. This is precisely why the paper flags the
  // ladder's unequal-excitation requirement as a design cost.
  LadderGateConfig cfg = default_config();
  cfg.split = wavenet::SplitPolicy::kLossless;
  cfg.calibrated_excitation = false;
  LadderMajGate broken(cfg);
  EXPECT_FALSE(validate_gate(broken).all_pass);

  cfg.calibrated_excitation = true;
  LadderMajGate repaired(cfg);
  const auto report = validate_gate(repaired);
  EXPECT_TRUE(report.all_pass) << format_report(report);
}

}  // namespace
}  // namespace swsim::core
