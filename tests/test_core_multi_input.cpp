#include "core/multi_input_gate.h"

#include <gtest/gtest.h>

#include "core/logic.h"
#include "core/validator.h"

namespace swsim::core {
namespace {

MultiInputMajConfig config_for(std::size_t n) {
  MultiInputMajConfig cfg;
  cfg.num_inputs = n;
  return cfg;
}

TEST(MultiInputMajGate, RejectsEvenOrTooFewInputs) {
  EXPECT_THROW(MultiInputMajGate(config_for(2)), std::invalid_argument);
  EXPECT_THROW(MultiInputMajGate(config_for(4)), std::invalid_argument);
  EXPECT_THROW(MultiInputMajGate(config_for(1)), std::invalid_argument);
}

TEST(MultiInputMajGate, Maj3TruthTable) {
  MultiInputMajGate gate(config_for(3));
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
}

TEST(MultiInputMajGate, Maj5TruthTable) {
  MultiInputMajGate gate(config_for(5));
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
  EXPECT_EQ(report.rows.size(), 32u);
}

TEST(MultiInputMajGate, Maj7TruthTable) {
  MultiInputMajGate gate(config_for(7));
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
  EXPECT_EQ(report.rows.size(), 128u);
}

TEST(MultiInputMajGate, OutputsIdentical) {
  MultiInputMajGate gate(config_for(5));
  const auto report = validate_gate(gate);
  EXPECT_LT(report.max_output_asymmetry, 1e-9);
}

TEST(MultiInputMajGate, AmplitudeReflectsVoteMargin) {
  // With equal arrival weights, |output| ~ |#zeros - #ones|: a 5-0 vote is
  // stronger than a 3-2 vote.
  MultiInputMajGate gate(config_for(5));
  const double unanimous =
      gate.evaluate({false, false, false, false, false}).normalized_o1;
  const double narrow =
      gate.evaluate({false, false, false, true, true}).normalized_o1;
  const double medium =
      gate.evaluate({false, false, false, false, true}).normalized_o1;
  EXPECT_NEAR(unanimous, 1.0, 1e-9);
  EXPECT_NEAR(medium, 3.0 / 5.0, 1e-6);
  EXPECT_NEAR(narrow, 1.0 / 5.0, 1e-6);
}

TEST(MultiInputMajGate, ExcitationCells) {
  EXPECT_EQ(MultiInputMajGate(config_for(5)).excitation_cells(), 5);
}

TEST(MultiInputMajGate, WrongArityThrows) {
  MultiInputMajGate gate(config_for(5));
  EXPECT_THROW(gate.evaluate({true, false}), std::invalid_argument);
}

// The intro's use case: n-input majority for error correction — a MAJ5
// masks up to two faulty replicas.
TEST(MultiInputMajGate, Maj5MasksTwoFaults) {
  MultiInputMajGate gate(config_for(5));
  for (bool truth : {false, true}) {
    for (int f1 = 0; f1 < 5; ++f1) {
      for (int f2 = f1 + 1; f2 < 5; ++f2) {
        std::vector<bool> in(5, truth);
        in[static_cast<std::size_t>(f1)] = !truth;
        in[static_cast<std::size_t>(f2)] = !truth;
        EXPECT_EQ(gate.evaluate(in).o1.logic, truth);
      }
    }
  }
}

}  // namespace
}  // namespace swsim::core
