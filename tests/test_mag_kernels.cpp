// Bit-exactness contract of the fused SoA kernel path.
//
// The kernel layer (src/mag/kernels/) promises byte-identical output to
// the scalar reference steppers for every stepper kind, every term set it
// lowers, and ANY intra-solve job count. These tests hold it to that with
// memcmp over the raw Vec3 bytes — no tolerances anywhere — on a masked
// (triangle-like) geometry that exercises interior SIMD runs, scalar edge
// cells, absent-neighbour self-indices, and the antenna gate at once.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "io/ovf.h"
#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/exchange_field.h"
#include "mag/kernels/plan.h"
#include "mag/kernels/runtime.h"
#include "mag/llg.h"
#include "mag/material.h"
#include "mag/system.h"
#include "mag/thermal_field.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "math/field.h"
#include "robust/fault_injection.h"
#include "robust/status.h"

namespace swsim::mag {
namespace {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::Vec3;
using swsim::math::VectorField;

// Restores the process-wide kernel knobs no matter how a test exits.
struct KernelModeGuard {
  ~KernelModeGuard() {
    kernels::set_force_reference(-1);
    kernels::set_cell_jobs(1);
  }
};

Grid make_grid() { return Grid(24, 16, 1, 4e-9, 4e-9, 10e-9); }

// Right-triangle footprint: row y keeps x in [0, nx - y). Produces long
// interior runs low in the triangle, short (< kMinRun) rows near the apex
// that land whole on the edge path, and a diagonal boundary whose cells
// have absent +x/+y neighbours.
Mask triangle_mask(const Grid& g) {
  Mask mask(g, false);
  for (std::size_t y = 0; y < g.ny(); ++y) {
    for (std::size_t x = 0; x < g.nx(); ++x) {
      if (x + y < g.nx()) mask.set(g.index(x, y, 0), true);
    }
  }
  return mask;
}

// Antenna footprint: a column band, deliberately wider than the mask so
// region ∧ mask matters.
Mask antenna_region(const Grid& g) {
  Mask region(g, false);
  for (std::size_t y = 0; y < g.ny(); ++y) {
    for (std::size_t x = 4; x < 8 && x < g.nx(); ++x) {
      region.set(g.index(x, y, 0), true);
    }
  }
  return region;
}

// Every kernel-lowerable term at once.
std::vector<std::unique_ptr<FieldTerm>> make_terms(const Grid& g) {
  std::vector<std::unique_ptr<FieldTerm>> terms;
  terms.push_back(std::make_unique<ExchangeField>());
  terms.push_back(std::make_unique<UniaxialAnisotropyField>(Vec3{0, 0, 1}));
  terms.push_back(std::make_unique<ThinFilmDemagField>());
  terms.push_back(std::make_unique<UniformZeemanField>(Vec3{0, 0, 2.0e4}));
  terms.push_back(std::make_unique<AntennaField>(antenna_region(g), 5.0e3,
                                                 Vec3{1, 0, 0}, 2.6e9, 0.3));
  return terms;
}

VectorField initial_m(const System& sys) {
  VectorField m(sys.grid());
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (!mask[i]) continue;
    const double a = 0.37 * static_cast<double>(i);
    m[i] = swsim::math::normalized(
        Vec3{0.15 * std::sin(a), 0.15 * std::cos(1.7 * a), 1.0});
  }
  return m;
}

struct RunResult {
  VectorField m;
  StepperStats stats;
};

// Runs `steps` stepper calls under the given kernel mode and job count.
// ref_mode: 1 = scalar reference oracle, 0 = fused kernel path.
RunResult run_steps(StepperKind kind, int ref_mode, std::size_t cell_jobs,
                    std::size_t steps, double dt, double tolerance = 1e-5) {
  KernelModeGuard guard;
  kernels::set_force_reference(ref_mode);
  kernels::set_cell_jobs(cell_jobs);

  const Grid g = make_grid();
  const System sys(g, Material::fecob(), triangle_mask(g));
  auto terms = make_terms(g);
  VectorField m = initial_m(sys);

  Stepper stepper(kind, dt, tolerance);
  double t = 0.0;
  for (std::size_t s = 0; s < steps; ++s) t += stepper.step(sys, terms, m, t);
  return RunResult{std::move(m), stepper.stats()};
}

::testing::AssertionResult bytes_identical(const VectorField& a,
                                           const VectorField& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (std::memcmp(a.data().data(), b.data().data(),
                  a.size() * sizeof(Vec3)) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(Vec3)) != 0) {
      return ::testing::AssertionFailure()
             << "first byte difference at cell " << i << ": (" << a[i].x
             << ", " << a[i].y << ", " << a[i].z << ") vs (" << b[i].x << ", "
             << b[i].y << ", " << b[i].z << ")";
    }
  }
  return ::testing::AssertionFailure() << "padding bytes differ";
}

TEST(KernelBitExact, HeunMatchesReference) {
  const auto ref = run_steps(StepperKind::kHeun, 1, 1, 25, 2e-13);
  const auto fused = run_steps(StepperKind::kHeun, 0, 1, 25, 2e-13);
  EXPECT_TRUE(bytes_identical(ref.m, fused.m));
  EXPECT_EQ(ref.stats.field_evaluations, fused.stats.field_evaluations);
}

TEST(KernelBitExact, Rk4MatchesReference) {
  const auto ref = run_steps(StepperKind::kRk4, 1, 1, 25, 2e-13);
  const auto fused = run_steps(StepperKind::kRk4, 0, 1, 25, 2e-13);
  EXPECT_TRUE(bytes_identical(ref.m, fused.m));
  EXPECT_EQ(ref.stats.field_evaluations, fused.stats.field_evaluations);
}

TEST(KernelBitExact, Rkf45MatchesReferenceIncludingStepControl) {
  const auto ref = run_steps(StepperKind::kRkf45, 1, 1, 25, 2e-13);
  const auto fused = run_steps(StepperKind::kRkf45, 0, 1, 25, 2e-13);
  EXPECT_TRUE(bytes_identical(ref.m, fused.m));
  // The embedded error estimate feeds the step controller; identical bytes
  // require the accept/reject history and final dt to agree exactly.
  EXPECT_EQ(ref.stats.steps_taken, fused.stats.steps_taken);
  EXPECT_EQ(ref.stats.steps_rejected, fused.stats.steps_rejected);
  EXPECT_EQ(ref.stats.field_evaluations, fused.stats.field_evaluations);
  EXPECT_EQ(ref.stats.last_dt, fused.stats.last_dt);
}

TEST(KernelBitExact, Rkf45StepHalvingRecoveryMatches) {
  // A tolerance tight enough that the initial dt is rejected and halved:
  // the recovery path (reject, shrink, retry) must replay identically.
  const auto ref = run_steps(StepperKind::kRkf45, 1, 1, 12, 5e-12, 1e-13);
  const auto fused = run_steps(StepperKind::kRkf45, 0, 1, 12, 5e-12, 1e-13);
  ASSERT_GT(ref.stats.steps_rejected, 0u)
      << "tolerance did not force a rejection; tighten the test";
  EXPECT_EQ(ref.stats.steps_rejected, fused.stats.steps_rejected);
  EXPECT_EQ(ref.stats.last_dt, fused.stats.last_dt);
  EXPECT_TRUE(bytes_identical(ref.m, fused.m));
}

// Steps until the watchdog throws; returns the number of completed steps.
std::size_t steps_until_trip(int ref_mode) {
  KernelModeGuard guard;
  kernels::set_force_reference(ref_mode);
  robust::ScopedFaultPlan plan;
  plan->inject_nan_at_step(5);

  const Grid g = make_grid();
  const System sys(g, Material::fecob(), triangle_mask(g));
  auto terms = make_terms(g);
  VectorField m = initial_m(sys);

  Stepper stepper(StepperKind::kRk4, 2e-13);
  robust::WatchdogConfig wd;
  wd.cadence = 1;
  stepper.set_watchdog(wd);

  double t = 0.0;
  for (std::size_t s = 0; s < 32; ++s) {
    try {
      t += stepper.step(sys, terms, m, t);
    } catch (const robust::SolveError&) {
      return s;
    }
  }
  ADD_FAILURE() << "watchdog never tripped";
  return static_cast<std::size_t>(-1);
}

TEST(KernelBitExact, WatchdogTripsAtTheSameStep) {
  // The injected NaN lands on the AoS state after the kernel path stores
  // back, so the watchdog scan must fire on the identical step index in
  // both modes.
  EXPECT_EQ(steps_until_trip(1), steps_until_trip(0));
}

TEST(KernelDeterminism, CellJobsDoNotChangeBytes) {
  const auto serial = run_steps(StepperKind::kRk4, 0, 1, 20, 2e-13);
  const auto jobs2 = run_steps(StepperKind::kRk4, 0, 2, 20, 2e-13);
  const auto jobs8 = run_steps(StepperKind::kRk4, 0, 8, 20, 2e-13);
  EXPECT_TRUE(bytes_identical(serial.m, jobs2.m));
  EXPECT_TRUE(bytes_identical(serial.m, jobs8.m));
}

TEST(KernelDeterminism, OvfOutputIsByteIdentical) {
  const auto ref = run_steps(StepperKind::kRk4, 1, 1, 10, 2e-13);
  const auto fused = run_steps(StepperKind::kRk4, 0, 4, 10, 2e-13);
  const std::string dir = ::testing::TempDir();
  const std::string pa = dir + "kernels_ref.ovf";
  const std::string pb = dir + "kernels_fused.ovf";
  io::write_ovf(pa, ref.m, "t");
  io::write_ovf(pb, fused.m, "t");
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string a = slurp(pa);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(pb));
}

// --- AntennaField fast-path regression ---------------------------------

TEST(AntennaFastPath, MatchesFullGridSweep) {
  const Grid g = make_grid();
  const System sys(g, Material::fecob(), triangle_mask(g));
  const Mask region = antenna_region(g);
  const double amplitude = 5.0e3, frequency = 2.6e9, phase = 0.3;
  AntennaField antenna(region, amplitude, Vec3{1, 0, 0}, frequency, phase);

  const VectorField m = initial_m(sys);
  for (const double t : {0.0, 7.3e-12, 1.9e-10}) {
    VectorField fast(g);
    // Seed the accumulator with a nonzero pattern so "+= drive" starts from
    // the same bytes a real term stack would.
    for (std::size_t i = 0; i < fast.size(); ++i) {
      fast[i] = Vec3{0.5 * static_cast<double>(i % 7), -1.25, 3.0};
    }
    VectorField full = fast;
    antenna.accumulate(sys, m, t, fast);

    // The pre-fast-path reference semantics: scan the whole grid, drive
    // region ∧ mask cells.
    const double env = 1.0;  // continuous envelope
    const Vec3 drive =
        Vec3{1, 0, 0} * (amplitude * env *
                         std::sin(2.0 * swsim::math::kPi * frequency * t +
                                  phase));
    const auto& mask = sys.mask();
    for (std::size_t i = 0; i < full.size(); ++i) {
      if (region[i] && mask[i]) full[i] += drive;
    }
    EXPECT_TRUE(bytes_identical(fast, full)) << "at t = " << t;
  }
}

// --- plan structure ------------------------------------------------------

TEST(KernelPlan, RejectsTermsItCannotLower) {
  const Grid g = make_grid();
  const System sys(g, Material::fecob(), triangle_mask(g));
  {
    std::vector<std::unique_ptr<FieldTerm>> terms;
    terms.push_back(std::make_unique<ExchangeField>());
    terms.push_back(std::make_unique<ThermalField>(300.0));
    EXPECT_EQ(kernels::build_plan(sys, terms), nullptr);
  }
  {
    std::vector<std::unique_ptr<FieldTerm>> terms;
    terms.push_back(std::make_unique<NewellDemagField>(sys));
    EXPECT_EQ(kernels::build_plan(sys, terms), nullptr);
  }
}

TEST(KernelPlan, InteriorAndEdgePartitionTheActiveSet) {
  const Grid g = make_grid();
  const System sys(g, Material::fecob(), triangle_mask(g));
  auto terms = make_terms(g);
  const auto plan = kernels::build_plan(sys, terms);
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(plan->fused_ok);
  ASSERT_GT(plan->runs.size(), 0u);
  ASSERT_GT(plan->edge_slots.size(), 0u);

  EXPECT_EQ(plan->active.size(), sys.magnetic_cell_count());
  EXPECT_EQ(plan->interior_total + plan->edge_slots.size(),
            plan->active.size());

  // Every interior cell is active with every existing-axis neighbour
  // in-bounds and active, and no cell appears twice.
  const auto& mask = sys.mask();
  std::vector<int> seen(g.cell_count(), 0);
  std::uint64_t counted = 0;
  for (std::size_t r = 0; r < plan->runs.size(); ++r) {
    const auto& run = plan->runs[r];
    EXPECT_EQ(plan->run_prefix[r], counted);
    for (std::uint32_t i = run.b; i < run.e; ++i) {
      ++seen[i];
      EXPECT_TRUE(mask[i]);
      const auto xyz = g.unindex(i);
      ASSERT_GT(xyz.x, 0u);
      ASSERT_LT(xyz.x + 1, g.nx());
      EXPECT_TRUE(mask[i - 1] && mask[i + 1]);
      ASSERT_GT(xyz.y, 0u);
      ASSERT_LT(xyz.y + 1, g.ny());
      EXPECT_TRUE(mask[g.index(xyz.x, xyz.y - 1, 0)]);
      EXPECT_TRUE(mask[g.index(xyz.x, xyz.y + 1, 0)]);
    }
    counted += run.e - run.b;
  }
  EXPECT_EQ(counted, plan->interior_total);
  for (const std::uint32_t s : plan->edge_slots) ++seen[plan->active[s]];
  for (std::size_t i = 0; i < g.cell_count(); ++i) {
    EXPECT_EQ(seen[i], mask[i] ? 1 : 0) << "cell " << i;
  }
}

TEST(KernelPlan, AntennaGateMatchesRegionAndMask) {
  const Grid g = make_grid();
  const System sys(g, Material::fecob(), triangle_mask(g));
  auto terms = make_terms(g);
  const auto plan = kernels::build_plan(sys, terms);
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(plan->fused_ok);

  const kernels::TermOp* antenna = nullptr;
  for (const auto& op : plan->ops) {
    if (op.kind == kernels::OpKind::kAntenna) antenna = &op;
  }
  ASSERT_NE(antenna, nullptr);
  ASSERT_EQ(antenna->gate.size(), g.cell_count());

  const Mask region = antenna_region(g);
  const auto& mask = sys.mask();
  for (std::size_t i = 0; i < g.cell_count(); ++i) {
    EXPECT_EQ(antenna->gate[i], (region[i] && mask[i]) ? 1.0 : 0.0)
        << "cell " << i;
  }
  ASSERT_EQ(plan->antenna_bits.size(), plan->active.size());
  for (std::size_t s = 0; s < plan->active.size(); ++s) {
    const bool driven = (plan->antenna_bits[s] & 1u) != 0;
    EXPECT_EQ(driven, antenna->gate[plan->active[s]] != 0.0) << "slot " << s;
  }
  for (const auto& run : plan->runs) {
    bool any = false;
    for (std::uint32_t i = run.b; i < run.e && !any; ++i) {
      any = antenna->gate[i] != 0.0;
    }
    EXPECT_EQ((run.antenna & 1u) != 0, any);
  }
}

}  // namespace
}  // namespace swsim::mag
