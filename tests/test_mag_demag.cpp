// Demagnetizing field: Newell tensor values against analytic references and
// the FFT convolution against a direct sum.
#include "mag/demag_field.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

TEST(NewellTensor, SelfDemagOfCubeIsOneThird) {
  // A uniformly magnetized cube has N_xx = N_yy = N_zz = 1/3 exactly.
  const double d = 1e-9;
  EXPECT_NEAR(newell_nxx(0, 0, 0, d, d, d), 1.0 / 3.0, 1e-9);
}

TEST(NewellTensor, SelfTermTraceIsOne) {
  // Tr N(0) = 1 for any cell shape (flux closure).
  const double dx = 3e-9, dy = 1e-9, dz = 0.5e-9;
  const double nxx = newell_nxx(0, 0, 0, dx, dy, dz);
  const double nyy = newell_nxx(0, 0, 0, dy, dx, dz);
  const double nzz = newell_nxx(0, 0, 0, dz, dy, dx);
  EXPECT_NEAR(nxx + nyy + nzz, 1.0, 1e-9);
}

TEST(NewellTensor, ThinFilmCellIsDominatedByNzz) {
  // A flat cell (dz << dx, dy) approaches the thin-film limit N_zz -> 1.
  const double nzz = newell_nxx(0, 0, 0, 0.1e-9, 50e-9, 50e-9);
  EXPECT_GT(nzz, 0.95);
}

TEST(NewellTensor, OffDiagonalVanishesOnSymmetryAxes) {
  // N_xy is odd in x and y: it must vanish when the offset lies on an axis.
  const double d = 2e-9;
  EXPECT_NEAR(newell_nxy(5 * d, 0, 0, d, d, d), 0.0, 1e-12);
  EXPECT_NEAR(newell_nxy(0, 3 * d, 0, d, d, d), 0.0, 1e-12);
  EXPECT_NEAR(newell_nxy(0, 0, 2 * d, d, d, d), 0.0, 1e-12);
}

TEST(NewellTensor, FarFieldMatchesPointDipole) {
  // At separations >> cell size the cell-averaged tensor approaches the
  // point-dipole kernel N_xx = (1/4pi) (1/r^3 - 3x^2/r^5) (for H = -N M).
  const double d = 1e-9;
  const double x = 20e-9, y = 5e-9, z = 0.0;
  const double r = std::sqrt(x * x + y * y + z * z);
  const double v = d * d * d;
  const double dipole =
      v / (4.0 * kPi) * (1.0 / (r * r * r) - 3.0 * x * x / std::pow(r, 5));
  EXPECT_NEAR(newell_nxx(x, y, z, d, d, d), dipole,
              std::fabs(dipole) * 0.02 + 1e-12);
}

TEST(NewellTensor, SumRuleOffsetCells) {
  // Trace of the interaction tensor vanishes for non-overlapping cells
  // (the dipolar kernel is traceless away from the source).
  const double d = 1e-9;
  const double x = 4e-9, y = 3e-9, z = 2e-9;
  const double trace = newell_nxx(x, y, z, d, d, d) +
                       newell_nxx(y, x, z, d, d, d) +
                       newell_nxx(z, y, x, d, d, d);
  EXPECT_NEAR(trace, 0.0, 1e-6);
}

TEST(ThinFilmDemag, FieldIsMinusMsMz) {
  const Grid g(4, 4, 1, 5e-9, 5e-9, 1e-9);
  const System sys(g, Material::fecob());
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(g);
  ThinFilmDemagField demag;
  demag.accumulate(sys, m, 0.0, h);
  EXPECT_NEAR(h[0].z, -Material::fecob().ms, 1.0);
  EXPECT_NEAR(h[0].x, 0.0, 1e-9);
}

TEST(ThinFilmDemag, InPlaneStateFeelsNothing) {
  const Grid g(4, 4, 1, 5e-9, 5e-9, 1e-9);
  const System sys(g, Material::fecob());
  const auto m = sys.uniform_magnetization({1, 0, 0});
  VectorField h(g);
  ThinFilmDemagField demag;
  demag.accumulate(sys, m, 0.0, h);
  EXPECT_NEAR(norm(h[0]), 0.0, 1e-9);
}

TEST(ThinFilmDemag, EnergyPositiveForOutOfPlane) {
  const Grid g(4, 4, 1, 5e-9, 5e-9, 1e-9);
  const System sys(g, Material::fecob());
  ThinFilmDemagField demag;
  EXPECT_GT(demag.energy(sys, sys.uniform_magnetization({0, 0, 1})), 0.0);
  EXPECT_NEAR(demag.energy(sys, sys.uniform_magnetization({1, 0, 0})), 0.0,
              1e-30);
}

TEST(NewellDemag, UniformCubeFieldIsMinusMOver3) {
  // A uniformly magnetized cube of cells: the central cell's field
  // approaches -Ms/3 in each direction (exact for the full cube average).
  const std::size_t n = 8;
  const Grid g(n, n, n, 1e-9, 1e-9, 1e-9);
  const System sys(g, Material::fecob());
  NewellDemagField demag(sys);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  const VectorField h = demag.compute(sys, m);

  // Volume-averaged field equals -N_avg * Ms with N_avg = 1/3 for a cube.
  Vec3 avg{};
  for (const Vec3& v : h) avg += v;
  avg /= static_cast<double>(g.cell_count());
  EXPECT_NEAR(avg.z, -Material::fecob().ms / 3.0,
              Material::fecob().ms * 0.01);
  EXPECT_NEAR(avg.x, 0.0, Material::fecob().ms * 1e-6);
}

TEST(NewellDemag, CubeIsotropy) {
  // By symmetry the cube's average demag factor is the same along x and z.
  const std::size_t n = 6;
  const Grid g(n, n, n, 1e-9, 1e-9, 1e-9);
  const System sys(g, Material::fecob());
  NewellDemagField demag(sys);

  auto avg_parallel = [&](const Vec3& dir) {
    const auto m = sys.uniform_magnetization(dir);
    const VectorField h = demag.compute(sys, m);
    double acc = 0.0;
    for (const Vec3& v : h) acc += dot(v, dir);
    return acc / static_cast<double>(g.cell_count());
  };
  EXPECT_NEAR(avg_parallel({1, 0, 0}), avg_parallel({0, 0, 1}), 1.0);
}

TEST(NewellDemag, ThinFilmApproachesLocalApproximation) {
  // For an extended single-layer film, the interior field for m = z is
  // close to -Ms (the thin-film limit used by ThinFilmDemagField).
  const Grid g(32, 32, 1, 5e-9, 5e-9, 1e-9);
  const System sys(g, Material::fecob());
  NewellDemagField demag(sys);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  const VectorField h = demag.compute(sys, m);
  const double center = h.at(16, 16).z;
  EXPECT_NEAR(center, -Material::fecob().ms, Material::fecob().ms * 0.05);
}

TEST(NewellDemag, MatchesDirectSumOnSmallGrid) {
  // The FFT convolution must equal the O(N^2) direct tensor sum exactly.
  const Grid g(4, 3, 1, 2e-9, 3e-9, 1e-9);
  const System sys(g, Material::fecob());
  NewellDemagField demag(sys);

  // A deliberately non-uniform magnetization.
  VectorField m(g);
  for (std::size_t i = 0; i < m.size(); ++i) {
    const double a = static_cast<double>(i);
    m[i] = normalized(Vec3{std::sin(a), std::cos(2.0 * a), 1.0});
  }
  const VectorField h_fft = demag.compute(sys, m);

  const double ms = Material::fecob().ms;
  for (std::size_t yi = 0; yi < g.ny(); ++yi) {
    for (std::size_t xi = 0; xi < g.nx(); ++xi) {
      Vec3 direct{};
      for (std::size_t yj = 0; yj < g.ny(); ++yj) {
        for (std::size_t xj = 0; xj < g.nx(); ++xj) {
          const double x = (static_cast<double>(xi) - static_cast<double>(xj)) * g.dx();
          const double y = (static_cast<double>(yi) - static_cast<double>(yj)) * g.dy();
          const double nxx = newell_nxx(x, y, 0, g.dx(), g.dy(), g.dz());
          const double nyy = newell_nxx(y, x, 0, g.dy(), g.dx(), g.dz());
          const double nzz = newell_nxx(0, y, x, g.dz(), g.dy(), g.dx());
          const double nxy = newell_nxy(x, y, 0, g.dx(), g.dy(), g.dz());
          const double nxz = newell_nxy(x, 0, y, g.dx(), g.dz(), g.dy());
          const double nyz = newell_nxy(y, 0, x, g.dy(), g.dz(), g.dx());
          const Vec3 mj = m[g.index(xj, yj, 0)] * ms;
          direct.x -= nxx * mj.x + nxy * mj.y + nxz * mj.z;
          direct.y -= nxy * mj.x + nyy * mj.y + nyz * mj.z;
          direct.z -= nxz * mj.x + nyz * mj.y + nzz * mj.z;
        }
      }
      const Vec3& fft = h_fft.at(xi, yi);
      EXPECT_NEAR(fft.x, direct.x, ms * 1e-9);
      EXPECT_NEAR(fft.y, direct.y, ms * 1e-9);
      EXPECT_NEAR(fft.z, direct.z, ms * 1e-9);
    }
  }
}

TEST(NewellDemag, EnergyMatchesFieldContraction) {
  const Grid g(4, 4, 1, 2e-9, 2e-9, 1e-9);
  const System sys(g, Material::fecob());
  NewellDemagField demag(sys);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  const double e = demag.energy(sys, m);
  EXPECT_GT(e, 0.0);  // out-of-plane film state costs demag energy
}

}  // namespace
}  // namespace swsim::mag
