#include "math/lockin.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"
#include "math/rng.h"

namespace swsim::math {
namespace {

std::vector<double> make_tone(double amp, double f, double phase, double dt,
                              std::size_t n, double t0 = 0.0) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = t0 + static_cast<double>(i) * dt;
    xs[i] = amp * std::cos(kTwoPi * f * t + phase);
  }
  return xs;
}

TEST(Lockin, RecoversAmplitude) {
  const double f = 10e9;
  const double dt = 1.0 / (64.0 * f);
  const auto xs = make_tone(0.37, f, 0.0, dt, 640);
  const LockinResult r = lockin(xs, dt, f);
  EXPECT_NEAR(r.amplitude, 0.37, 1e-10);
  EXPECT_NEAR(r.phase, 0.0, 1e-10);
}

TEST(Lockin, RecoversPhase) {
  const double f = 10e9;
  const double dt = 1.0 / (64.0 * f);
  for (double phase : {0.3, 1.0, -2.0, kPi - 0.01}) {
    const auto xs = make_tone(1.0, f, phase, dt, 640);
    const LockinResult r = lockin(xs, dt, f);
    EXPECT_NEAR(r.phase, phase, 1e-9) << "phase " << phase;
  }
}

TEST(Lockin, PiPhaseIsAntiphase) {
  const double f = 5e9;
  const double dt = 1.0 / (32.0 * f);
  const auto xs = make_tone(1.0, f, kPi, dt, 320);
  const LockinResult r = lockin(xs, dt, f);
  EXPECT_NEAR(phase_distance(r.phase, kPi), 0.0, 1e-9);
}

TEST(Lockin, NonzeroStartTime) {
  const double f = 10e9;
  const double dt = 1.0 / (64.0 * f);
  const double t0 = 3.7e-10;
  const auto xs = make_tone(2.0, f, 0.8, dt, 640, t0);
  const LockinResult r = lockin(xs, dt, f, t0);
  EXPECT_NEAR(r.amplitude, 2.0, 1e-9);
  EXPECT_NEAR(r.phase, 0.8, 1e-9);
}

TEST(Lockin, RejectsOtherFrequencies) {
  // A tone at 2 f0 measured at f0 over whole periods integrates to ~0.
  const double f0 = 10e9;
  const double dt = 1.0 / (64.0 * f0);
  const auto xs = make_tone(1.0, 2.0 * f0, 0.0, dt, 640);
  const LockinResult r = lockin(xs, dt, f0);
  EXPECT_NEAR(r.amplitude, 0.0, 1e-9);
}

TEST(Lockin, DcRejected) {
  const double f0 = 10e9;
  const double dt = 1.0 / (64.0 * f0);
  std::vector<double> xs(640, 5.0);  // pure DC offset
  const LockinResult r = lockin(xs, dt, f0);
  EXPECT_NEAR(r.amplitude, 0.0, 1e-9);
}

TEST(Lockin, ToneWithNoiseAndOffset) {
  const double f = 10e9;
  const double dt = 1.0 / (64.0 * f);
  Pcg32 rng(1);
  auto xs = make_tone(0.5, f, 1.2, dt, 6400);
  for (auto& x : xs) x += 0.2 + 0.05 * rng.normal();
  const LockinResult r = lockin(xs, dt, f);
  EXPECT_NEAR(r.amplitude, 0.5, 0.01);
  EXPECT_NEAR(r.phase, 1.2, 0.02);
}

TEST(Lockin, ThrowsOnTooFewSamples) {
  const double f = 10e9;
  const double dt = 1.0 / (64.0 * f);
  const auto xs = make_tone(1.0, f, 0.0, dt, 10);  // < 1 period
  EXPECT_THROW(lockin(xs, dt, f), std::invalid_argument);
}

TEST(Lockin, ThrowsOnBadArguments) {
  std::vector<double> xs(100, 0.0);
  EXPECT_THROW(lockin(xs, 0.0, 1e9), std::invalid_argument);
  EXPECT_THROW(lockin(xs, 1e-12, 0.0), std::invalid_argument);
}

TEST(Lockin, PhasorConsistent) {
  const double f = 10e9;
  const double dt = 1.0 / (64.0 * f);
  const auto xs = make_tone(1.5, f, 0.7, dt, 640);
  const LockinResult r = lockin(xs, dt, f);
  EXPECT_NEAR(std::abs(r.phasor), r.amplitude, 1e-12);
  EXPECT_NEAR(std::arg(r.phasor), r.phase, 1e-12);
}

TEST(Rms, KnownValues) {
  EXPECT_DOUBLE_EQ(rms({}), 0.0);
  EXPECT_DOUBLE_EQ(rms({3.0}), 3.0);
  EXPECT_NEAR(rms({1.0, -1.0, 1.0, -1.0}), 1.0, 1e-15);
}

TEST(Rms, SineIsAmplitudeOverSqrt2) {
  const double f = 1e9;
  const double dt = 1.0 / (100.0 * f);
  const auto xs = make_tone(2.0, f, 0.0, dt, 1000);
  EXPECT_NEAR(rms(xs), 2.0 / std::sqrt(2.0), 1e-3);
}

TEST(Peak, KnownValues) {
  EXPECT_DOUBLE_EQ(peak({}), 0.0);
  EXPECT_DOUBLE_EQ(peak({1.0, -3.0, 2.0}), 3.0);
}

TEST(WrapPhase, WrapsIntoRange) {
  EXPECT_NEAR(wrap_phase(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_phase(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_phase(-kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(wrap_phase(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_phase(kPi + 0.1), -kPi + 0.1, 1e-12);
}

TEST(PhaseDistance, Symmetric) {
  EXPECT_NEAR(phase_distance(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(phase_distance(-0.1, 0.1), 0.2, 1e-12);
}

TEST(PhaseDistance, AcrossWrap) {
  EXPECT_NEAR(phase_distance(kPi - 0.05, -kPi + 0.05), 0.1, 1e-12);
}

TEST(PhaseDistance, MaxIsPi) {
  EXPECT_NEAR(phase_distance(0.0, kPi), kPi, 1e-12);
}

}  // namespace
}  // namespace swsim::math
