// Exchange, anisotropy, Zeeman and antenna field terms.
#include <gtest/gtest.h>

#include <cmath>

#include "mag/anisotropy_field.h"
#include "mag/exchange_field.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

Grid line_grid(std::size_t n) { return Grid(n, 1, 1, 2e-9, 2e-9, 1e-9); }

TEST(ExchangeField, UniformStateHasZeroField) {
  const System sys(line_grid(8), Material::fecob());
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  ExchangeField ex;
  ex.accumulate(sys, m, 0.0, h);
  for (const Vec3& v : h) {
    EXPECT_NEAR(norm(v), 0.0, 1e-6);
  }
}

TEST(ExchangeField, MatchesAnalyticSpinWaveEigenvalue) {
  // For m = z + eps*cos(kx) x, the exchange field's transverse component is
  // -(2A/(mu0 Ms)) k_eff^2 * m_x with k_eff^2 = (2 - 2 cos(k dx))/dx^2 (the
  // discrete Laplacian eigenvalue). Periodic fit: use a chain long enough
  // that interior cells see the right neighbours.
  const std::size_t n = 64;
  const Grid g = line_grid(n);
  const System sys(g, Material::fecob());
  const double k = kTwoPi / (16.0 * g.dx());  // 16-cell wavelength
  const double eps = 1e-4;
  VectorField m(g);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = g.cell_center(i, 0, 0).x;
    m[i] = normalized(Vec3{eps * std::cos(k * x), 0, 1});
  }
  VectorField h(g);
  ExchangeField ex;
  ex.accumulate(sys, m, 0.0, h);

  const double dx = g.dx();
  const double k_eff2 = (2.0 - 2.0 * std::cos(k * dx)) / (dx * dx);
  const double pref =
      2.0 * Material::fecob().aex / (kMu0 * Material::fecob().ms);
  // Check an interior cell.
  const std::size_t i = n / 2;
  const double expected = -pref * k_eff2 * m[i].x;
  EXPECT_NEAR(h[i].x, expected, std::fabs(expected) * 1e-3 + 1e-12);
}

TEST(ExchangeField, EnergyNonNegativeAndZeroForUniform) {
  const System sys(line_grid(16), Material::fecob());
  ExchangeField ex;
  const auto uniform = sys.uniform_magnetization({0, 0, 1});
  EXPECT_NEAR(ex.energy(sys, uniform), 0.0, 1e-30);

  // A twisted state costs exchange energy.
  VectorField twisted(sys.grid());
  for (std::size_t i = 0; i < twisted.size(); ++i) {
    const double ang = 0.2 * static_cast<double>(i);
    twisted[i] = Vec3{std::sin(ang), 0, std::cos(ang)};
  }
  EXPECT_GT(ex.energy(sys, twisted), 0.0);
}

TEST(ExchangeField, MaskedNeighborsExcluded) {
  // Two magnetic cells separated by a vacuum cell must not exchange-couple.
  const Grid g = line_grid(3);
  Mask mask(g);
  mask.set_at(0, 0, true);
  mask.set_at(2, 0, true);
  const System sys(g, Material::fecob(), mask);
  VectorField m(g);
  m.at(0, 0) = Vec3{0, 0, 1};
  m.at(2, 0) = Vec3{1, 0, 0};  // orthogonal: would give a huge field if coupled
  VectorField h(g);
  ExchangeField ex;
  ex.accumulate(sys, m, 0.0, h);
  EXPECT_NEAR(norm(h.at(0, 0)), 0.0, 1e-9);
  EXPECT_NEAR(norm(h.at(2, 0)), 0.0, 1e-9);
}

TEST(AnisotropyField, AlignedStateFeelsFullField) {
  const System sys(line_grid(4), Material::fecob());
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  UniaxialAnisotropyField ani;
  ani.accumulate(sys, m, 0.0, h);
  const double expected = Material::fecob().anisotropy_field();
  EXPECT_NEAR(h[0].z, expected, expected * 1e-12);
  EXPECT_NEAR(h[0].x, 0.0, 1e-9);
}

TEST(AnisotropyField, TransverseStateFeelsNothing) {
  const System sys(line_grid(4), Material::fecob());
  const auto m = sys.uniform_magnetization({1, 0, 0});
  VectorField h(sys.grid());
  UniaxialAnisotropyField ani;
  ani.accumulate(sys, m, 0.0, h);
  EXPECT_NEAR(norm(h[0]), 0.0, 1e-9);
}

TEST(AnisotropyField, EnergyConvention) {
  const System sys(line_grid(4), Material::fecob());
  UniaxialAnisotropyField ani;
  EXPECT_NEAR(ani.energy(sys, sys.uniform_magnetization({0, 0, 1})), 0.0,
              1e-30);
  const double e_hard = ani.energy(sys, sys.uniform_magnetization({1, 0, 0}));
  const double expected =
      Material::fecob().ku * sys.grid().cell_volume() * 4.0;  // 4 cells
  EXPECT_NEAR(e_hard, expected, expected * 1e-12);
}

TEST(AnisotropyField, RejectsZeroAxis) {
  EXPECT_THROW(UniaxialAnisotropyField(Vec3{0, 0, 0}), std::invalid_argument);
}

TEST(ZeemanField, AddsUniformField) {
  const System sys(line_grid(4), Material::fecob());
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(sys.grid());
  UniformZeemanField z(Vec3{0, 0, 5e4});
  z.accumulate(sys, m, 0.0, h);
  EXPECT_DOUBLE_EQ(h[0].z, 5e4);
}

TEST(ZeemanField, EnergyIsMinusMuoMsMdotH) {
  const System sys(line_grid(2), Material::fecob());
  const auto m = sys.uniform_magnetization({0, 0, 1});
  UniformZeemanField z(Vec3{0, 0, 1e5});
  const double expected = -kMu0 * Material::fecob().ms * 1e5 *
                          sys.grid().cell_volume() * 2.0;
  EXPECT_NEAR(z.energy(sys, m), expected, std::fabs(expected) * 1e-12);
}

TEST(Envelope, ContinuousIsAlwaysOne) {
  const Envelope e = Envelope::continuous();
  EXPECT_DOUBLE_EQ(e(0.0), 1.0);
  EXPECT_DOUBLE_EQ(e(1e-9), 1.0);
}

TEST(Envelope, PulseWindow) {
  const Envelope e = Envelope::pulse(1e-9, 2e-9);
  EXPECT_DOUBLE_EQ(e(0.5e-9), 0.0);
  EXPECT_DOUBLE_EQ(e(1.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(e(2.5e-9), 0.0);
}

TEST(Envelope, PulseRampIsSmooth) {
  const Envelope e = Envelope::pulse(0.0, 1e-9, 0.2e-9);
  EXPECT_NEAR(e(0.0), 0.0, 1e-12);
  EXPECT_NEAR(e(0.1e-9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(e(0.5e-9), 1.0);
  EXPECT_NEAR(e(0.9e-9), 0.5, 1e-9);
}

TEST(Envelope, PulseValidation) {
  EXPECT_THROW(Envelope::pulse(1e-9, 0.5e-9), std::invalid_argument);
  EXPECT_THROW(Envelope::pulse(0.0, 1e-9, 0.6e-9), std::invalid_argument);
}

TEST(AntennaField, DrivesOnlyItsRegion) {
  const Grid g = line_grid(8);
  const System sys(g, Material::fecob());
  Mask region(g);
  region.set_at(2, 0, true);
  AntennaField ant(region, 1e3, Vec3{1, 0, 0}, 10e9, 0.0);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(g);
  // At t = T/4, sin(2 pi f t) = 1.
  const double t_quarter = 1.0 / (4.0 * 10e9);
  ant.accumulate(sys, m, t_quarter, h);
  EXPECT_NEAR(h.at(2, 0).x, 1e3, 1e-6);
  EXPECT_NEAR(norm(h.at(3, 0)), 0.0, 1e-12);
}

TEST(AntennaField, PhasePiFlipsSign) {
  const Grid g = line_grid(4);
  const System sys(g, Material::fecob());
  Mask region(g, true);
  AntennaField a0(region, 1e3, Vec3{1, 0, 0}, 10e9, 0.0);
  AntennaField a1(region, 1e3, Vec3{1, 0, 0}, 10e9, kPi);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h0(g), h1(g);
  const double t = 1.0 / (4.0 * 10e9);
  a0.accumulate(sys, m, t, h0);
  a1.accumulate(sys, m, t, h1);
  EXPECT_NEAR(h0[0].x, -h1[0].x, 1e-6);
}

TEST(AntennaField, Validation) {
  const Grid g = line_grid(4);
  Mask region(g, true);
  EXPECT_THROW(AntennaField(region, 0.0, Vec3{1, 0, 0}, 1e9, 0.0),
               std::invalid_argument);
  EXPECT_THROW(AntennaField(region, 1e3, Vec3{1, 0, 0}, 0.0, 0.0),
               std::invalid_argument);
}

TEST(AntennaField, GridMismatchThrowsOnUse) {
  const Grid g = line_grid(4);
  const System sys(g, Material::fecob());
  Mask region(line_grid(8), true);
  AntennaField ant(region, 1e3, Vec3{1, 0, 0}, 1e9, 0.0);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  VectorField h(g);
  EXPECT_THROW(ant.accumulate(sys, m, 0.0, h), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::mag
