// The chaos harness against a live in-process daemon: every exchange —
// torn frames, garbage, oversized prefixes, slow-loris trickles, vanishing
// clients — must end terminally (response, closed transport, or nothing
// owed), the daemon must stay byte-deterministic for the honest traffic
// interleaved with the hostile, and it must still drain clean afterwards.
#include "serve/chaos.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/validator.h"
#include "engine/batch_runner.h"
#include "robust/fault_injection.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/workload.h"

namespace swsim::serve {
namespace {

namespace fs = std::filesystem;

ServerConfig chaos_config(const std::string& name) {
  ServerConfig cfg;
  const fs::path dir = fs::path(::testing::TempDir()) / "swsim_chaos_test";
  fs::create_directories(dir);
  cfg.socket_path = (dir / (name + ".sock")).string();
  fs::remove(cfg.socket_path);
  cfg.dispatchers = 2;
  cfg.engine.jobs = 2;
  // Tight-but-fair I/O budgets so hostile sessions are cut off quickly
  // and the test stays fast.
  cfg.idle_timeout_s = 2.0;
  cfg.frame_timeout_s = 1.0;
  return cfg;
}

Request base_request() {
  Request r;
  r.type = RequestType::kTruthTable;
  r.id = 100;
  r.client = "chaos";
  r.gate.kind = "maj";
  return r;
}

struct FaultPlanGuard {
  ~FaultPlanGuard() { robust::FaultPlan::global().clear(); }
};

TEST(ServeChaos, ParseSpecAcceptsKeysAliasesAndRejectsJunk) {
  ChaosProfile p;
  ASSERT_TRUE(
      parse_chaos_spec("seed=7,count=24,clean=3,torn=0,delay-s=0.01", &p)
          .is_ok());
  EXPECT_EQ(p.seed, 7u);
  EXPECT_EQ(p.exchanges, 24);
  EXPECT_EQ(p.clean, 3);
  EXPECT_EQ(p.torn, 0);
  EXPECT_DOUBLE_EQ(p.delay_s, 0.01);

  ChaosProfile alias;
  ASSERT_TRUE(parse_chaos_spec("exchanges=5", &alias).is_ok());
  EXPECT_EQ(alias.exchanges, 5);

  ChaosProfile bad;
  EXPECT_FALSE(parse_chaos_spec("warpfield=1", &bad).is_ok());
  EXPECT_FALSE(parse_chaos_spec("seed", &bad).is_ok());
  EXPECT_FALSE(parse_chaos_spec("seed=banana", &bad).is_ok());
  EXPECT_FALSE(parse_chaos_spec(
                   "clean=0,delay=0,torn=0,garbage=0,oversize=0,"
                   "slowloris=0,disconnect=0",
                   &bad)
                   .is_ok());
}

TEST(ServeChaos, ScriptedFaultsForceExactActionsWithTerminalOutcomes) {
  FaultPlanGuard guard;
  auto cfg = chaos_config("scripted");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  ChaosProfile profile;  // draw would be random; the script overrides it
  FaultyTransport transport(cfg.socket_path, 0, profile);

  // Oversize: the daemon rejects the length prefix and slams the door —
  // a closed transport, never a hang, and no session leaked.
  robust::FaultPlan::global().inject_transport("oversize");
  ChaosOutcome oversize = transport.exchange(base_request());
  EXPECT_EQ(oversize.action, ChaosAction::kOversize);
  EXPECT_FALSE(oversize.hung);
  EXPECT_FALSE(oversize.got_response);
  EXPECT_FALSE(oversize.transport.is_ok());

  // Garbage: well-framed non-JSON earns a structured invalid-config
  // answer on a *surviving* session, not a disconnect.
  robust::FaultPlan::global().inject_transport("garbage");
  ChaosOutcome garbage = transport.exchange(base_request());
  EXPECT_EQ(garbage.action, ChaosAction::kGarbage);
  ASSERT_TRUE(garbage.got_response);
  EXPECT_EQ(garbage.response.status.code(),
            robust::StatusCode::kInvalidConfig);

  // Torn: we hung up mid-frame, so nothing is owed.
  robust::FaultPlan::global().inject_transport("torn");
  ChaosOutcome torn = transport.exchange(base_request());
  EXPECT_EQ(torn.action, ChaosAction::kTorn);
  EXPECT_FALSE(torn.sent_full_request);
  EXPECT_FALSE(torn.hung);

  // Clean, after all that abuse: full honest exchange.
  robust::FaultPlan::global().inject_transport("clean");
  ChaosOutcome clean = transport.exchange(base_request());
  EXPECT_EQ(clean.action, ChaosAction::kClean);
  ASSERT_TRUE(clean.got_response);
  EXPECT_TRUE(clean.response.status.is_ok()) << clean.response.status.str();

  server.shutdown();
}

TEST(ServeChaos, SeededSoakIsTerminalDeterministicAndByteExactForHonestTraffic) {
  auto cfg = chaos_config("soak");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  ChaosProfile profile;
  profile.seed = 42;
  profile.exchanges = 24;
  profile.slow_byte_s = 0.001;
  profile.exchange_deadline_s = 20.0;

  const ChaosSummary first =
      run_chaos(profile, cfg.socket_path, 0, base_request());
  EXPECT_EQ(first.exchanges, 24);
  EXPECT_EQ(first.hung, 0) << first.str();
  EXPECT_GT(first.answered_ok, 0) << first.str();

  // Same seed, same daemon: the warm cache changes *timing* but must not
  // change a single outcome bucket — the schedule is the seed's alone.
  const ChaosSummary second =
      run_chaos(profile, cfg.socket_path, 0, base_request());
  EXPECT_EQ(second.answered_ok, first.answered_ok);
  EXPECT_EQ(second.answered_error, first.answered_error);
  EXPECT_EQ(second.transport_closed, first.transport_closed);
  EXPECT_EQ(second.hung, 0);

  // After the storm: an honest client gets byte-identical results to a
  // local solve, and the daemon drains clean (shutdown() would hang on a
  // leaked session or dispatcher).
  engine::EngineConfig ecfg;
  ecfg.jobs = 2;
  engine::BatchRunner runner(ecfg);
  GateParams p;
  p.kind = "maj";
  const auto spec = make_truth_table_spec(p);
  ASSERT_TRUE(spec.has_value());
  const auto outcome =
      runner.run_truth_table_checked(spec->factory, spec->key, {}, "local");
  ASSERT_TRUE(outcome.ok());

  Client honest;
  ASSERT_TRUE(honest.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(honest.call(base_request(), &resp).is_ok());
  ASSERT_TRUE(resp.status.is_ok()) << resp.status.str();
  EXPECT_EQ(resp.text, core::format_report(outcome.report));

  server.shutdown();

  const auto health_after = server.runner().stats();
  EXPECT_EQ(health_after.jobs_failed, 0u);
}

TEST(ServeChaos, SlowLorisSessionIsCutOffNotServedForever) {
  FaultPlanGuard guard;
  auto cfg = chaos_config("loris");
  cfg.frame_timeout_s = 0.1;  // trickle slower than the frame budget
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  ChaosProfile profile;
  profile.slow_byte_s = 0.02;  // ~4 s for a full request: never finishes
  FaultyTransport transport(cfg.socket_path, 0, profile);
  robust::FaultPlan::global().inject_transport("slowloris");
  const ChaosOutcome out = transport.exchange(base_request());
  EXPECT_EQ(out.action, ChaosAction::kSlowLoris);
  // The server must cut us off (closed transport) — not answer, not hang.
  EXPECT_FALSE(out.hung);
  EXPECT_FALSE(out.got_response);

  // And the daemon is fine: a clean exchange right after succeeds.
  Client honest;
  ASSERT_TRUE(honest.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(honest.call(base_request(), &resp).is_ok());
  EXPECT_TRUE(resp.status.is_ok());
  server.shutdown();
}

}  // namespace
}  // namespace swsim::serve
