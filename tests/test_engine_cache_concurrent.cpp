// Concurrent access to a shared ResultCache spill store — the situation
// `swsim serve` creates on purpose: many threads in one process, and
// several processes (daemon + CLI runs) pointed at one --cache-dir.
//
// The invariants under test:
//   * thread-safety of one instance under mixed insert/lookup pressure;
//   * torn-read freedom across instances: spill files are published with
//     write-to-temp + atomic rename, so a racing reader sees either the
//     whole file or no file, never a partial one (spill_corrupt stays 0);
//   * checksum-evict-recompute: a corrupted file is detected, deleted,
//     reported as a miss, and cleanly republished.
#include "engine/result_cache.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

namespace swsim::engine {
namespace {

namespace fs = std::filesystem;

#if defined(__SANITIZE_THREAD__)
constexpr bool kUnderTsan = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kUnderTsan = true;
#else
constexpr bool kUnderTsan = false;
#endif
#else
constexpr bool kUnderTsan = false;
#endif

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<double> payload_for(std::uint64_t key) {
  // Deterministic content per key: the content-addressing contract says
  // every writer of `key` writes exactly these bytes.
  std::vector<double> v;
  for (int i = 0; i < 16; ++i) {
    v.push_back(static_cast<double>(key) * 1.25 + i);
  }
  return v;
}

TEST(ResultCacheConcurrent, ThreadsShareOneInstanceWithoutLoss) {
  const auto dir = fresh_dir("swsim_cache_threads");
  // Tiny capacity forces constant eviction/spill/promote churn.
  ResultCache cache(2, dir.string());
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 12;
  std::atomic<int> wrong{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &wrong, t] {
      for (int round = 0; round < 40; ++round) {
        const std::uint64_t key =
            1 + (static_cast<std::uint64_t>(t) * 7 + round) % kKeys;
        const auto hit = cache.lookup(key);
        if (hit.has_value()) {
          if (*hit != payload_for(key)) wrong.fetch_add(1);
        } else {
          cache.insert(key, payload_for(key));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(cache.stats().spill_corrupt, 0u);
  // Every key is retrievable afterwards, from memory or disk.
  for (std::uint64_t key = 1; key <= kKeys; ++key) {
    cache.insert(key, payload_for(key));  // no-op when present
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value()) << "key " << key;
    EXPECT_EQ(*hit, payload_for(key));
  }
  fs::remove_all(dir);
}

TEST(ResultCacheConcurrent, TwoInstancesRaceOnOneSpillDirWithoutTornReads) {
  // The daemon and a CLI run share a --cache-dir: two independent caches,
  // one directory, concurrent evictions (writes) and lookups (reads) of
  // the same keys. Atomic-rename publishing must keep every read whole.
  const auto dir = fresh_dir("swsim_cache_xinstance");
  constexpr std::uint64_t kKeys = 8;
  std::atomic<int> wrong{0};

  auto churn = [&dir, &wrong](unsigned seed) {
    ResultCache cache(1, dir.string());  // capacity 1: every insert spills
    for (int round = 0; round < 120; ++round) {
      const std::uint64_t key = 1 + (seed + round) % kKeys;
      const auto hit = cache.lookup(key);
      if (hit.has_value()) {
        if (*hit != payload_for(key)) wrong.fetch_add(1);
      } else {
        cache.insert(key, payload_for(key));
      }
    }
    if (cache.stats().spill_corrupt != 0) wrong.fetch_add(1000);
  };

  std::thread a(churn, 0u);
  std::thread b(churn, 3u);
  std::thread c(churn, 5u);
  a.join();
  b.join();
  c.join();
  EXPECT_EQ(wrong.load(), 0);

  // No temp droppings left behind; every published file verifies.
  ResultCache verify(kKeys * 2, dir.string());
  for (std::uint64_t key = 1; key <= kKeys; ++key) {
    const auto hit = verify.lookup(key);
    if (hit.has_value()) EXPECT_EQ(*hit, payload_for(key));
  }
  EXPECT_EQ(verify.stats().spill_corrupt, 0u);
  fs::remove_all(dir);
}

TEST(ResultCacheConcurrent, CorruptSpillFileIsEvictedAndRepublished) {
  const auto dir = fresh_dir("swsim_cache_corrupt");
  ResultCache cache(1, dir.string());
  cache.insert(1, payload_for(1));
  cache.insert(2, payload_for(2));  // evicts key 1 to disk
  const fs::path spilled = dir / ResultCache::spill_filename(1);
  ASSERT_TRUE(fs::exists(spilled));

  // Flip one payload byte past the header: the checksum must catch it.
  {
    std::fstream f(spilled, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24 + 3);
    char byte = 0;
    f.seekg(24 + 3);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(24 + 3);
    f.write(&byte, 1);
  }

  // Detected: miss, file deleted, counted — never a wrong payload.
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().spill_corrupt, 1u);
  EXPECT_FALSE(fs::exists(spilled));

  // The caller recomputes and the key publishes cleanly again.
  cache.insert(1, payload_for(1));
  cache.insert(2, payload_for(2));  // evict key 1 again
  ASSERT_TRUE(fs::exists(spilled));
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, payload_for(1));
  EXPECT_EQ(cache.stats().spill_corrupt, 1u);  // no new corruption
  fs::remove_all(dir);
}

TEST(ResultCacheConcurrent, TruncatedSpillFileIsAMissNotAPayload) {
  const auto dir = fresh_dir("swsim_cache_trunc");
  ResultCache cache(1, dir.string());
  cache.insert(1, payload_for(1));
  cache.insert(2, payload_for(2));
  const fs::path spilled = dir / ResultCache::spill_filename(1);
  ASSERT_TRUE(fs::exists(spilled));
  fs::resize_file(spilled, fs::file_size(spilled) / 2);

  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().spill_corrupt, 1u);
  EXPECT_FALSE(fs::exists(spilled));
  fs::remove_all(dir);
}

TEST(ResultCacheConcurrent, ProcessesRaceOnOneSpillDirWithoutTornReads) {
  // The real multi-process shape: forked children, each with its own
  // ResultCache over the same directory, all churning the same keys.
  // (TSan does not follow forks; the cross-instance thread test above
  // covers the same code paths under the race detector.)
  if (kUnderTsan) GTEST_SKIP() << "fork is not supported under TSan";

  const auto dir = fresh_dir("swsim_cache_procs");
  constexpr int kChildren = 4;
  constexpr std::uint64_t kKeys = 6;

  std::vector<pid_t> pids;
  for (int c = 0; c < kChildren; ++c) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: churn, then exit 0 iff every observation was consistent.
      ResultCache cache(1, dir.string());
      int bad = 0;
      for (int round = 0; round < 150; ++round) {
        const std::uint64_t key =
            1 + (static_cast<std::uint64_t>(c) * 5 + round) % kKeys;
        const auto hit = cache.lookup(key);
        if (hit.has_value()) {
          if (*hit != payload_for(key)) ++bad;
        } else {
          cache.insert(key, payload_for(key));
        }
      }
      if (cache.stats().spill_corrupt != 0) bad += 100;
      ::_exit(bad == 0 ? 0 : 1);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child saw a torn or wrong payload";
  }

  // The surviving directory verifies end to end from a fresh process-like
  // cache: whole files, correct contents, zero integrity failures.
  ResultCache verify(kKeys * 2, dir.string());
  std::size_t found = 0;
  for (std::uint64_t key = 1; key <= kKeys; ++key) {
    const auto hit = verify.lookup(key);
    if (hit.has_value()) {
      ++found;
      EXPECT_EQ(*hit, payload_for(key));
    }
  }
  EXPECT_GT(found, 0u);
  EXPECT_EQ(verify.stats().spill_corrupt, 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace swsim::engine
