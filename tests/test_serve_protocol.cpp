// swsim.serve/1 document model: request parse/serialize round trips,
// strict-vs-lenient validation, response scalars, and the status-code
// name mapping both ends rely on.
#include "serve/protocol.h"

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/trace.h"

namespace swsim::serve {
namespace {

TEST(ServeProtocol, RequestRoundTripPreservesEveryField) {
  Request r;
  r.type = RequestType::kTruthTable;
  r.id = 42;
  r.client = "sweeper";
  r.priority = 3;
  r.gate.kind = "xor";
  r.gate.lambda_nm = 60.0;
  r.gate.width_nm = 21.5;

  Request back;
  ASSERT_TRUE(parse_request_text(serialize_request(r), &back).is_ok());
  EXPECT_EQ(back.type, RequestType::kTruthTable);
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.client, "sweeper");
  EXPECT_EQ(back.priority, 3);
  EXPECT_EQ(back.gate.kind, "xor");
  EXPECT_DOUBLE_EQ(back.gate.lambda_nm, 60.0);
  ASSERT_TRUE(back.gate.width_nm.has_value());
  EXPECT_DOUBLE_EQ(*back.gate.width_nm, 21.5);
}

TEST(ServeProtocol, YieldRequestRoundTrip) {
  Request r;
  r.type = RequestType::kYield;
  r.yield.kind = "xor";
  r.yield.trials = 250;
  r.yield.sigma_length_nm = 1.5;
  r.yield.sigma_amp = 0.07;

  Request back;
  ASSERT_TRUE(parse_request_text(serialize_request(r), &back).is_ok());
  EXPECT_EQ(back.type, RequestType::kYield);
  EXPECT_EQ(back.yield.kind, "xor");
  EXPECT_EQ(back.yield.trials, 250u);
  EXPECT_DOUBLE_EQ(back.yield.sigma_length_nm, 1.5);
  EXPECT_DOUBLE_EQ(back.yield.sigma_amp, 0.07);
}

TEST(ServeProtocol, MicromagRequestRoundTripAndDefaults) {
  Request r;
  r.type = RequestType::kMicromag;
  r.micromag.kind = "xor";
  r.micromag.lambda_nm = 60.0;
  r.micromag.width_nm = 25.0;
  r.micromag.cell_nm = 5.0;
  r.micromag.early_stop = true;

  Request back;
  ASSERT_TRUE(parse_request_text(serialize_request(r), &back).is_ok());
  EXPECT_EQ(back.type, RequestType::kMicromag);
  EXPECT_EQ(back.micromag.kind, "xor");
  EXPECT_DOUBLE_EQ(back.micromag.lambda_nm, 60.0);
  EXPECT_DOUBLE_EQ(back.micromag.width_nm, 25.0);
  EXPECT_DOUBLE_EQ(back.micromag.cell_nm, 5.0);
  EXPECT_TRUE(back.micromag.early_stop);

  // A bare document gets the CLI's micromag defaults, early stop off.
  Request bare;
  ASSERT_TRUE(parse_request_text(R"({"type":"micromag"})", &bare).is_ok());
  EXPECT_EQ(bare.micromag.kind, "maj");
  EXPECT_DOUBLE_EQ(bare.micromag.lambda_nm, 50.0);
  EXPECT_DOUBLE_EQ(bare.micromag.width_nm, 20.0);
  EXPECT_DOUBLE_EQ(bare.micromag.cell_nm, 4.0);
  EXPECT_FALSE(bare.micromag.early_stop);
}

TEST(ServeProtocol, MicromagRequestValidatesFields) {
  Request r;
  EXPECT_FALSE(
      parse_request_text(R"({"type":"micromag","lambda_nm":-3})", &r).is_ok());
  EXPECT_FALSE(
      parse_request_text(R"({"type":"micromag","cell_nm":0})", &r).is_ok());
  const auto st =
      parse_request_text(R"({"type":"micromag","early_stop":"yes"})", &r);
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("boolean"), std::string::npos);
}

TEST(ServeProtocol, ProbeSubscribeRoundTripAndValidation) {
  Request r;
  r.type = RequestType::kProbeSubscribe;
  r.id = 9;
  r.probe_max_frames = 32;
  r.probe_duration_s = 1.5;
  r.probe_filter = "O1";

  Request back;
  ASSERT_TRUE(parse_request_text(serialize_request(r), &back).is_ok());
  EXPECT_EQ(back.type, RequestType::kProbeSubscribe);
  EXPECT_EQ(back.probe_max_frames, 32u);
  EXPECT_DOUBLE_EQ(back.probe_duration_s, 1.5);
  EXPECT_EQ(back.probe_filter, "O1");

  // Unset bounds mean "stream until the client goes away".
  Request bare;
  ASSERT_TRUE(
      parse_request_text(R"({"type":"probe.subscribe"})", &bare).is_ok());
  EXPECT_EQ(bare.probe_max_frames, 0u);
  EXPECT_DOUBLE_EQ(bare.probe_duration_s, 0.0);
  EXPECT_TRUE(bare.probe_filter.empty());

  EXPECT_FALSE(parse_request_text(
                   R"({"type":"probe.subscribe","max_frames":-1})", &r)
                   .is_ok());
  EXPECT_FALSE(parse_request_text(
                   R"({"type":"probe.subscribe","max_frames":2.5})", &r)
                   .is_ok());
  EXPECT_FALSE(parse_request_text(
                   R"({"type":"probe.subscribe","duration_s":0})", &r)
                   .is_ok());
}

TEST(ServeProtocol, LenientDefaultsMirrorTheCli) {
  // A minimal document gets the CLI's defaults, not an error.
  Request r;
  ASSERT_TRUE(
      parse_request_text(R"({"type":"truthtable","gate":"maj"})", &r).is_ok());
  EXPECT_EQ(r.id, 0u);
  EXPECT_EQ(r.client, "anon");
  EXPECT_EQ(r.priority, 0);
  EXPECT_DOUBLE_EQ(r.gate.lambda_nm, 55.0);
  EXPECT_FALSE(r.gate.width_nm.has_value());
}

TEST(ServeProtocol, StrictValidationRejectsBeforeAnyWorkRuns) {
  Request r;
  // Wrong protocol string.
  EXPECT_EQ(parse_request_text(
                R"({"proto":"swsim.serve/999","type":"hello"})", &r)
                .code(),
            robust::StatusCode::kInvalidConfig);
  // Unknown type.
  EXPECT_EQ(parse_request_text(R"({"type":"frobnicate"})", &r).code(),
            robust::StatusCode::kInvalidConfig);
  // Missing type entirely.
  EXPECT_EQ(parse_request_text(R"({"gate":"maj"})", &r).code(),
            robust::StatusCode::kInvalidConfig);
  // Non-positive trials.
  EXPECT_EQ(parse_request_text(
                R"({"type":"yield","gate":"maj","trials":0})", &r)
                .code(),
            robust::StatusCode::kInvalidConfig);
  // Wrong field type.
  EXPECT_EQ(parse_request_text(
                R"({"type":"truthtable","gate":42})", &r)
                .code(),
            robust::StatusCode::kInvalidConfig);
  // Not JSON at all.
  EXPECT_EQ(parse_request_text("not json", &r).code(),
            robust::StatusCode::kInvalidConfig);
}

TEST(ServeProtocol, ResponseRoundTripKeepsStatusAndScalars) {
  Response r;
  r.id = 7;
  r.status = robust::Status::error(robust::StatusCode::kDraining,
                                   "server is draining", "serve unix:/s");
  r.retry_after_s = 0.5;
  r.text = "two\nlines\n";
  r.all_pass = 1.0;
  r.min_margin = 0.25;

  Response back;
  ASSERT_TRUE(parse_response_text(serialize_response(r), &back).is_ok());
  EXPECT_EQ(back.id, 7u);
  EXPECT_EQ(back.status.code(), robust::StatusCode::kDraining);
  EXPECT_EQ(back.status.message(), "server is draining");
  EXPECT_DOUBLE_EQ(back.retry_after_s, 0.5);
  EXPECT_EQ(back.text, "two\nlines\n");
  ASSERT_TRUE(Response::set(back.all_pass));
  EXPECT_DOUBLE_EQ(back.all_pass, 1.0);
  ASSERT_TRUE(Response::set(back.min_margin));
  EXPECT_DOUBLE_EQ(back.min_margin, 0.25);
  EXPECT_FALSE(Response::set(back.yield_value));  // unset stays unset
}

TEST(ServeProtocol, AdmissionCodesAreRetryableOnTheWire) {
  // The client-side retry contract: a rejection parses back into a status
  // the robust taxonomy marks retryable.
  for (const auto code :
       {robust::StatusCode::kOverloaded, robust::StatusCode::kDraining}) {
    Response r;
    r.status = robust::Status::error(code, "busy", "serve");
    r.retry_after_s = 0.25;
    Response back;
    ASSERT_TRUE(parse_response_text(serialize_response(r), &back).is_ok());
    EXPECT_EQ(back.status.code(), code);
    EXPECT_TRUE(robust::is_retryable(back.status.code()));
    EXPECT_GT(back.retry_after_s, 0.0);
  }
}

TEST(ServeProtocol, StatusCodeNamesRoundTripAndFailClosed) {
  // Every named code maps back to itself; an unknown name (newer server,
  // older client) degrades to kInternal, never to kOk.
  for (const auto code :
       {robust::StatusCode::kOk, robust::StatusCode::kInvalidConfig,
        robust::StatusCode::kNumericalDivergence, robust::StatusCode::kTimeout,
        robust::StatusCode::kCancelled, robust::StatusCode::kCacheCorrupt,
        robust::StatusCode::kIoError, robust::StatusCode::kQuarantined,
        robust::StatusCode::kOverloaded, robust::StatusCode::kDraining,
        robust::StatusCode::kInternal}) {
    EXPECT_EQ(status_code_from_string(robust::to_string(code)), code);
  }
  EXPECT_EQ(status_code_from_string("quantum-flux"),
            robust::StatusCode::kInternal);
}

TEST(ServeProtocol, DumpJsonIsDeterministic) {
  // Two key orders, one rendering: JsonValue objects sort their keys, so
  // dump_json gives byte-stable documents for comparisons and logs.
  const std::string a = R"({"zeta":1,"alpha":{"b":2,"a":[1,2,3]}})";
  const std::string b = R"({"alpha":{"a":[1,2,3],"b":2},"zeta":1})";
  EXPECT_EQ(dump_json(obs::parse_json(a)), dump_json(obs::parse_json(b)));
}

TEST(ServeProtocol, SerializedRequestIsValidJson) {
  Request r;
  r.type = RequestType::kHello;
  r.client = "with \"quotes\" and \n newline";
  EXPECT_NO_THROW(obs::parse_json(serialize_request(r)));
}

TEST(ServeProtocol, TraceContextRoundTrips) {
  Request r;
  r.type = RequestType::kHello;
  r.id = 9;
  r.trace_id = "cli-1234-99";
  // A parent span id whose value exceeds 2^53 — the hex-string wire form
  // exists precisely because a JSON double would mangle it.
  r.parent_span = 0xfeedfacecafebeefull;

  Request back;
  ASSERT_TRUE(parse_request_text(serialize_request(r), &back).is_ok());
  EXPECT_EQ(back.trace_id, "cli-1234-99");
  EXPECT_EQ(back.parent_span, 0xfeedfacecafebeefull);
  // An explicit parent span wins as the flow id.
  EXPECT_EQ(back.flow_id(), 0xfeedfacecafebeefull);

  // Without one, both ends derive the same id from trace_id + request id.
  r.parent_span = 0;
  ASSERT_TRUE(parse_request_text(serialize_request(r), &back).is_ok());
  EXPECT_EQ(back.flow_id(), obs::flow_hash("cli-1234-99#9"));
  EXPECT_NE(back.flow_id(), 0u);

  // No trace context at all: no flow, and the wire stays clean of the
  // optional keys.
  Request plain;
  plain.type = RequestType::kHello;
  EXPECT_EQ(plain.flow_id(), 0u);
  const std::string wire = serialize_request(plain);
  EXPECT_EQ(wire.find("trace_id"), std::string::npos);
  EXPECT_EQ(wire.find("parent_span"), std::string::npos);
}

TEST(ServeProtocol, ParentSpanMustBeAHexString) {
  Request r;
  EXPECT_EQ(parse_request_text(
                R"({"type":"hello","parent_span":12345})", &r)
                .code(),
            robust::StatusCode::kInvalidConfig);
  EXPECT_EQ(parse_request_text(
                R"({"type":"hello","parent_span":"xyzzy"})", &r)
                .code(),
            robust::StatusCode::kInvalidConfig);
}

TEST(ServeProtocol, TimingBlockRoundTripsAndOmitsUnsetPhases) {
  Response r;
  r.id = 3;
  r.status = robust::Status::ok();
  r.timing.queue_s = 0.001;
  r.timing.engine_s = 0.25;
  r.timing.render_s = 0.0005;
  r.timing.total_s = 0.2521;
  r.timing.budget_consumed = 0.42;

  Response back;
  ASSERT_TRUE(parse_response_text(serialize_response(r), &back).is_ok());
  ASSERT_TRUE(back.timing.any());
  EXPECT_DOUBLE_EQ(back.timing.queue_s, 0.001);
  EXPECT_DOUBLE_EQ(back.timing.engine_s, 0.25);
  EXPECT_DOUBLE_EQ(back.timing.render_s, 0.0005);
  EXPECT_DOUBLE_EQ(back.timing.total_s, 0.2521);
  EXPECT_DOUBLE_EQ(back.timing.budget_consumed, 0.42);

  // Partially measured (a shed request has no engine/render phase): the
  // unset fields stay unset through the round trip.
  Response shed;
  shed.timing.queue_s = 0.002;
  shed.timing.total_s = 0.003;
  ASSERT_TRUE(parse_response_text(serialize_response(shed), &back).is_ok());
  EXPECT_DOUBLE_EQ(back.timing.queue_s, 0.002);
  EXPECT_LT(back.timing.engine_s, 0.0);
  EXPECT_LT(back.timing.render_s, 0.0);
  EXPECT_LT(back.timing.budget_consumed, 0.0);

  // No timing at all: the key is absent from the wire.
  Response none;
  EXPECT_EQ(serialize_response(none).find("timing"), std::string::npos);
  ASSERT_TRUE(parse_response_text(serialize_response(none), &back).is_ok());
  EXPECT_FALSE(back.timing.any());
}

}  // namespace
}  // namespace swsim::serve
