#include "geom/roughness.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geom/shape.h"
#include "math/constants.h"

namespace swsim::geom {
namespace {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::nm;

Mask straight_guide() {
  const Grid g(60, 20, 1, nm(5), nm(5), nm(1));
  const Rect guide(nm(0), nm(30), nm(300), nm(70));
  return rasterize(g, guide);
}

TEST(Roughness, ZeroAmplitudeIsIdentity) {
  const Mask m = straight_guide();
  RoughnessParams p;
  p.amplitude = 0.0;
  EXPECT_EQ(apply_edge_roughness(m, p), m);
}

TEST(Roughness, PerturbsOnlyNearBoundary) {
  const Mask m = straight_guide();
  RoughnessParams p;
  p.amplitude = nm(8);
  p.correlation_length = nm(20);
  p.seed = 5;
  const Mask rough = apply_edge_roughness(m, p);
  EXPECT_NE(rough, m);

  // Deep-interior cells (>= 2 cells from the boundary) must be untouched,
  // and cells far outside must stay empty.
  const Grid& g = m.grid();
  for (std::size_t y = 0; y < g.ny(); ++y) {
    for (std::size_t x = 0; x < g.nx(); ++x) {
      const bool interior = m.at(x, y) &&
                            (y >= 8 && y <= 11);  // center of the guide
      const bool far_outside = y <= 2 || y >= 17;
      if (interior) EXPECT_TRUE(rough.at(x, y)) << x << "," << y;
      if (far_outside) EXPECT_FALSE(rough.at(x, y)) << x << "," << y;
    }
  }
}

TEST(Roughness, DeterministicInSeed) {
  const Mask m = straight_guide();
  RoughnessParams p;
  p.amplitude = nm(6);
  p.correlation_length = nm(15);
  p.seed = 42;
  EXPECT_EQ(apply_edge_roughness(m, p), apply_edge_roughness(m, p));
}

TEST(Roughness, DifferentSeedsDiffer) {
  const Mask m = straight_guide();
  RoughnessParams a, b;
  a.amplitude = b.amplitude = nm(6);
  a.correlation_length = b.correlation_length = nm(15);
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(apply_edge_roughness(m, a), apply_edge_roughness(m, b));
}

TEST(Roughness, PreservesCellCountApproximately) {
  // Roughness adds and removes edge cells but should not systematically
  // grow or shrink the structure by more than the edge-cell population.
  const Mask m = straight_guide();
  RoughnessParams p;
  p.amplitude = nm(6);
  p.correlation_length = nm(25);
  p.seed = 7;
  const Mask rough = apply_edge_roughness(m, p);
  const double rel = std::fabs(static_cast<double>(rough.count()) -
                               static_cast<double>(m.count())) /
                     static_cast<double>(m.count());
  EXPECT_LT(rel, 0.3);
}

TEST(Trapezoid, ReducesWidth) {
  const double w = trapezoid_effective_width(nm(50), nm(10), 0.3);
  EXPECT_LT(w, nm(50));
  EXPECT_GT(w, 0.0);
}

TEST(Trapezoid, VerticalSidewallIsExact) {
  EXPECT_DOUBLE_EQ(trapezoid_effective_width(nm(50), nm(1), 0.0), nm(50));
}

TEST(Trapezoid, SymmetricInAngleSign) {
  EXPECT_DOUBLE_EQ(trapezoid_effective_width(nm(50), nm(5), 0.2),
                   trapezoid_effective_width(nm(50), nm(5), -0.2));
}

TEST(Trapezoid, ThrowsWhenWidthConsumed) {
  EXPECT_THROW(trapezoid_effective_width(nm(10), nm(50), 0.5),
               std::invalid_argument);
  EXPECT_THROW(trapezoid_effective_width(0.0, nm(1), 0.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace swsim::geom
