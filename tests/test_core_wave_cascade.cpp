#include "core/wave_cascade.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/logic.h"

namespace swsim::core {
namespace {

TEST(WaveCascade, SingleMajStage) {
  WaveCascade wc;
  const auto a = wc.primary();
  const auto b = wc.primary();
  const auto c = wc.primary();
  const auto [o1, o2] = wc.add_maj3(a, b, c);
  for (const auto& p : all_input_patterns(3)) {
    wc.evaluate(p);
    const bool expected = maj3(p[0], p[1], p[2]);
    EXPECT_EQ(wc.read_phase(o1).logic, expected);
    EXPECT_EQ(wc.read_phase(o2).logic, expected);
  }
}

TEST(WaveCascade, TwoStageMajChain) {
  // MAJ(MAJ(a,b,c), d, e): the second stage is driven by the first
  // stage's raw wave — assumption (v) in action. Because the MAJ output
  // amplitude is vote-dependent (Table I), a narrow first-stage vote can
  // be outvoted downstream; a repeater (normalizer) between the stages
  // restores logic-exact cascading on all 32 patterns.
  auto run = [](bool normalize) {
    WaveCascade wc;
    const auto a = wc.primary();
    const auto b = wc.primary();
    const auto c = wc.primary();
    const auto d = wc.primary();
    const auto e = wc.primary();
    auto [m1, m1b] = wc.add_maj3(a, b, c);
    (void)m1b;
    const auto stage1 = normalize ? wc.add_repeater(m1) : m1;
    const auto [m2, m2b] = wc.add_maj3(stage1, d, e);
    (void)m2b;
    int wrong = 0;
    for (const auto& p : all_input_patterns(5)) {
      wc.evaluate(p);
      const bool expected = maj3(maj3(p[0], p[1], p[2]), p[3], p[4]);
      if (wc.read_phase(m2).logic != expected) ++wrong;
    }
    return wrong;
  };
  EXPECT_EQ(run(true), 0);   // normalized cascade: exact
  EXPECT_GT(run(false), 0);  // raw cascade: narrow votes get outvoted
}

TEST(WaveCascade, ChainedWaveContributionShrinks) {
  // The chained input enters one arm of each stage; its share of the next
  // output shrinks by the arm weight every stage while fresh transducer
  // inputs stay at full strength. Measure the sensitivity of the final
  // phasor to the chained value after 1 vs 3 stages.
  auto final_phasor = [](int stages, bool s0) {
    WaveCascade wc;
    const auto a = wc.primary();
    const auto one = wc.constant(true);
    const auto zero = wc.constant(false);
    auto [s, sb] = wc.add_maj3(a, one, zero);
    (void)sb;
    for (int i = 1; i < stages; ++i) {
      auto [next, nb] = wc.add_maj3(s, one, zero);
      (void)nb;
      s = next;
    }
    wc.evaluate({s0});
    return wc.phasor(s);
  };
  const double sens1 =
      std::abs(final_phasor(1, false) - final_phasor(1, true));
  const double sens3 =
      std::abs(final_phasor(3, false) - final_phasor(3, true));
  EXPECT_GT(sens1, 0.0);
  EXPECT_LT(sens3, 0.5 * sens1);
}

TEST(WaveCascade, RepeaterNormalizesAmplitude) {
  // MAJ output amplitude depends on the vote (Table I: unanimous ~1,
  // narrow ~0.06 normalized); the repeater flattens this to a unit wave
  // while preserving the phase (the logic).
  WaveCascade wc;
  const auto a = wc.primary();
  const auto b = wc.primary();
  const auto c = wc.primary();
  auto [s1, s1b] = wc.add_maj3(a, b, c);
  (void)s1b;
  const auto r = wc.add_repeater(s1);

  wc.evaluate({true, true, true});
  const double unanimous = std::abs(wc.phasor(s1));
  EXPECT_NEAR(std::abs(wc.phasor(r)), 1.0, 1e-12);
  EXPECT_TRUE(wc.read_phase(r).logic);

  wc.evaluate({true, true, false});
  const double narrow = std::abs(wc.phasor(s1));
  EXPECT_LT(narrow, 0.5 * unanimous);  // vote-dependent raw amplitude
  EXPECT_NEAR(std::abs(wc.phasor(r)), 1.0, 1e-12);  // flattened
  EXPECT_TRUE(wc.read_phase(r).logic);  // logic preserved
}

TEST(WaveCascade, FanOutOfTwoEnforced) {
  WaveCascade wc;
  const auto a = wc.primary();
  const auto b = wc.primary();
  const auto c = wc.primary();
  const auto [o1, o2] = wc.add_maj3(a, b, c);
  (void)o2;
  wc.add_maj3(o1, a, b);
  wc.add_maj3(o1, a, c);
  EXPECT_THROW(wc.add_maj3(o1, b, c), std::runtime_error);
}

TEST(WaveCascade, XorTerminatesCascade) {
  // XOR output is amplitude-encoded: reading with the threshold detector
  // works; feeding it onward must be rejected.
  WaveCascade wc;
  const auto a = wc.primary();
  const auto b = wc.primary();
  const auto c = wc.primary();
  const auto [x, xb] = wc.add_xor2(a, b);
  (void)xb;
  EXPECT_THROW(wc.add_maj3(x, a, c), std::logic_error);
  EXPECT_THROW(wc.add_xor2(x, a), std::logic_error);

  for (const auto& p : all_input_patterns(2)) {
    wc.evaluate({p[0], p[1], false});
    EXPECT_EQ(wc.read_threshold(x).logic, xor2(p[0], p[1]));
  }
}

TEST(WaveCascade, XorAfterMajNeedsNormalization) {
  // The headline cascade finding: a MAJ output carries vote-dependent
  // amplitude (Table I), so feeding it straight into a threshold-detected
  // XOR mis-normalizes on narrow votes — the very problem the paper's
  // ref. [8] ("spin wave normalization toward all magnonic circuits")
  // exists to solve. A repeater (normalization stage) fixes every pattern.

  // Without normalization: at least one narrow-vote pattern misreads.
  {
    WaveCascade wc;
    const auto a = wc.primary();
    const auto b = wc.primary();
    const auto c = wc.primary();
    const auto [m, mb] = wc.add_maj3(a, b, c);
    (void)mb;
    const auto [x, xb] = wc.add_xor2(m, a);
    (void)xb;
    int wrong = 0;
    for (const auto& p : all_input_patterns(3)) {
      wc.evaluate(p);
      const bool expected = xor2(maj3(p[0], p[1], p[2]), p[0]);
      if (wc.read_threshold(x).logic != expected) ++wrong;
    }
    EXPECT_GT(wrong, 0);
  }

  // With a repeater between the stages: all 8 patterns correct.
  {
    WaveCascade wc;
    const auto a = wc.primary();
    const auto b = wc.primary();
    const auto c = wc.primary();
    const auto [m, mb] = wc.add_maj3(a, b, c);
    (void)mb;
    const auto r = wc.add_repeater(m);
    const auto [x, xb] = wc.add_xor2(r, a);
    (void)xb;
    for (const auto& p : all_input_patterns(3)) {
      wc.evaluate(p);
      const bool expected = xor2(maj3(p[0], p[1], p[2]), p[0]);
      EXPECT_EQ(wc.read_threshold(x).logic, expected)
          << p[0] << p[1] << p[2];
    }
  }
}

TEST(WaveCascade, PassThroughChainNeedsRepeaters) {
  // A pass-through chain: each stage computes MAJ(s, 1, 0), whose two
  // fresh inputs ideally cancel so the output follows s. The chained
  // wave's contribution shrinks by the arm weight every stage, so without
  // repeaters the carried signal drowns in the residue of the imperfect
  // 1/0 cancellation; with a repeater per stage it is regenerated.
  auto chain_signal = [](bool repeaters, bool s0) {
    WaveCascade wc;
    const auto a = wc.primary();  // evaluated to s0
    const auto one = wc.constant(true);
    const auto zero = wc.constant(false);
    auto [s, sb] = wc.add_maj3(a, one, zero);
    (void)sb;
    for (int stage = 0; stage < 6; ++stage) {
      if (repeaters) s = wc.add_repeater(s);
      auto [next, nb] = wc.add_maj3(s, one, zero);
      (void)nb;
      s = next;
    }
    wc.evaluate({s0});
    return wc.read_phase(s);
  };
  // With repeaters the chain transports both logic values faithfully.
  EXPECT_FALSE(chain_signal(true, false).logic);
  EXPECT_TRUE(chain_signal(true, true).logic);
  // Without repeaters the carried wave decays below the cancellation
  // residue and the chain forgets its input: both initial values converge
  // to the same (residue-determined) reading.
  const bool bare0 = chain_signal(false, false).logic;
  const bool bare1 = chain_signal(false, true).logic;
  EXPECT_EQ(bare0, bare1);
}

TEST(WaveCascade, ConstantsWork) {
  // AND via MAJ(a, b, 0) at wave level.
  WaveCascade wc;
  const auto a = wc.primary();
  const auto b = wc.primary();
  const auto zero = wc.constant(false);
  const auto [o, ob] = wc.add_maj3(a, b, zero);
  (void)ob;
  for (const auto& p : all_input_patterns(2)) {
    wc.evaluate(p);
    EXPECT_EQ(wc.read_phase(o).logic, p[0] && p[1]);
  }
}

TEST(WaveCascade, ExcitationCellAccounting) {
  WaveCascade wc;
  const auto a = wc.primary();
  const auto b = wc.primary();
  const auto zero = wc.constant(false);
  auto [o, ob] = wc.add_maj3(a, b, zero);
  (void)ob;
  wc.add_repeater(o);
  EXPECT_EQ(wc.excitation_cells(), 2 + 1 + 1);
}

TEST(WaveCascade, ErrorsBeforeEvaluate) {
  WaveCascade wc;
  const auto a = wc.primary();
  EXPECT_THROW(wc.phasor(a), std::logic_error);
  EXPECT_THROW(wc.evaluate({true, false}), std::invalid_argument);
}

TEST(WaveCascade, RequiresMajDesign) {
  TriangleGateConfig xor_design;
  xor_design.params = geom::TriangleGateParams::paper_xor();
  EXPECT_THROW(WaveCascade{xor_design}, std::invalid_argument);
}

}  // namespace
}  // namespace swsim::core
