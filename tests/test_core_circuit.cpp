#include "core/circuit.h"

#include <gtest/gtest.h>

#include "core/logic.h"
#include "math/constants.h"

namespace swsim::core {
namespace {

TEST(Circuit, SingleMajEvaluates) {
  Circuit c;
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  const Signal d = c.input("d");
  c.mark_output(c.add_maj3(a, b, d), "y");
  for (const auto& p : all_input_patterns(3)) {
    EXPECT_EQ(c.evaluate(p)[0], maj3(p[0], p[1], p[2]));
  }
}

TEST(Circuit, XorAndNot) {
  Circuit c;
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  const Signal x = c.add_xor2(a, b);
  c.mark_output(c.add_not(x), "xnor");
  for (const auto& p : all_input_patterns(2)) {
    EXPECT_EQ(c.evaluate(p)[0], !xor2(p[0], p[1]));
  }
}

TEST(Circuit, AndOrViaControlledMaj) {
  Circuit c;
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  c.mark_output(c.add_and2(a, b), "and");
  c.mark_output(c.add_or2(a, b), "or");
  for (const auto& p : all_input_patterns(2)) {
    const auto out = c.evaluate(p);
    EXPECT_EQ(out[0], p[0] && p[1]);
    EXPECT_EQ(out[1], p[0] || p[1]);
  }
}

TEST(Circuit, InvertedMaj) {
  Circuit c;
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  const Signal d = c.input("d");
  c.mark_output(c.add_maj3(a, b, d, /*inverted=*/true), "minority");
  for (const auto& p : all_input_patterns(3)) {
    EXPECT_EQ(c.evaluate(p)[0], !maj3(p[0], p[1], p[2]));
  }
}

TEST(Circuit, FanoutLimitEnforced) {
  Circuit c(/*max_fanout=*/2);
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  const Signal d = c.input("d");
  const Signal m = c.add_maj3(a, b, d);
  const Signal x1 = c.add_xor2(m, a);   // load 1
  const Signal x2 = c.add_xor2(m, b);   // load 2
  (void)x1;
  (void)x2;
  EXPECT_EQ(c.fanout_of(m), 2);
  EXPECT_THROW(c.add_xor2(m, d), std::runtime_error);  // load 3: FO2 exceeded
}

TEST(Circuit, RepeaterResetsFanout) {
  Circuit c(2);
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  const Signal d = c.input("d");
  const Signal m = c.add_maj3(a, b, d);
  c.add_xor2(m, a);
  const Signal r = c.add_repeater(m);  // second (and last) load on m
  // Repeater output has a fresh fan-out budget.
  c.add_xor2(r, b);
  c.add_xor2(r, d);
  EXPECT_THROW(c.add_xor2(r, a), std::runtime_error);
}

TEST(Circuit, InputsHaveUnlimitedFanout) {
  Circuit c(2);
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  for (int i = 0; i < 10; ++i) c.add_xor2(a, b);
  SUCCEED();
}

TEST(Circuit, EvaluateChecksInputCount) {
  Circuit c;
  c.input("a");
  EXPECT_THROW(c.evaluate({true, false}), std::invalid_argument);
}

TEST(Circuit, RejectsBadFanoutLimit) {
  EXPECT_THROW(Circuit(0), std::invalid_argument);
}

TEST(Circuit, CostRollUp) {
  Circuit c;
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  const Signal d = c.input("d");
  const Signal m = c.add_maj3(a, b, d);      // 3 excitations, depth 1
  const Signal x = c.add_xor2(m, a);         // 2 excitations, depth 2
  c.mark_output(x, "y");
  const CircuitCost cost = c.cost();
  EXPECT_EQ(cost.maj_gates, 1);
  EXPECT_EQ(cost.xor_gates, 1);
  EXPECT_EQ(cost.excitation_cells, 5);
  EXPECT_EQ(cost.detection_cells, 1);
  EXPECT_EQ(cost.depth, 2u);
  const perf::TransducerModel t = perf::TransducerModel::me_cell();
  EXPECT_NEAR(cost.energy, 5.0 * t.excitation_energy(), 1e-30);
  EXPECT_NEAR(cost.delay, 2.0 * t.delay, 1e-18);
}

TEST(Circuit, NotIsFree) {
  Circuit c;
  const Signal a = c.input("a");
  const Signal b = c.input("b");
  const Signal x = c.add_xor2(a, b);
  c.mark_output(c.add_not(x), "y");
  const CircuitCost cost = c.cost();
  EXPECT_EQ(cost.excitation_cells, 2);  // only the XOR
  EXPECT_EQ(cost.depth, 1u);            // NOT adds no stage
}

TEST(FullAdder, ExhaustiveTruth) {
  Circuit c;
  const FullAdderSignals fa = build_full_adder(c);
  c.mark_output(fa.sum, "sum");
  c.mark_output(fa.cout, "cout");
  for (const auto& p : all_input_patterns(3)) {
    const auto out = c.evaluate(p);
    const int total = static_cast<int>(p[0]) + p[1] + p[2];
    EXPECT_EQ(out[0], (total & 1) != 0) << "sum";
    EXPECT_EQ(out[1], total >= 2) << "cout";
  }
}

TEST(FullAdder, UsesOneMajAndTwoXors) {
  Circuit c;
  build_full_adder(c);
  const CircuitCost cost = c.cost();
  EXPECT_EQ(cost.maj_gates, 1);
  EXPECT_EQ(cost.xor_gates, 2);
}

class RippleAdderTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RippleAdderTest, AddsAllOperandPairs) {
  const std::size_t bits = GetParam();
  Circuit c;
  const RippleAdderSignals r = build_ripple_adder(c, bits);
  for (std::size_t i = 0; i < bits; ++i) {
    c.mark_output(r.sum[i], "s" + std::to_string(i));
  }
  c.mark_output(r.cout, "cout");

  const std::size_t limit = std::size_t{1} << bits;
  for (std::size_t a = 0; a < limit; ++a) {
    for (std::size_t b = 0; b < limit; ++b) {
      std::vector<bool> in;
      for (std::size_t i = 0; i < bits; ++i) in.push_back((a >> i) & 1);
      for (std::size_t i = 0; i < bits; ++i) in.push_back((b >> i) & 1);
      const auto out = c.evaluate(in);
      std::size_t result = 0;
      for (std::size_t i = 0; i < bits; ++i) {
        result |= static_cast<std::size_t>(out[i]) << i;
      }
      result |= static_cast<std::size_t>(out[bits]) << bits;
      EXPECT_EQ(result, a + b) << a << " + " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RippleAdderTest, ::testing::Values(1, 2, 3, 4));

TEST(RippleAdder, CarryChainFitsWithinFanout2) {
  // The critical design point: every carry signal drives exactly two loads
  // (the next stage's XOR and MAJ) — the FO2 structure suffices with no
  // repeaters.
  Circuit c(2);
  EXPECT_NO_THROW(build_ripple_adder(c, 8));
  const CircuitCost cost = c.cost();
  EXPECT_EQ(cost.repeaters, 0);
  EXPECT_EQ(cost.maj_gates, 8);
  EXPECT_EQ(cost.xor_gates, 16);
}

TEST(RippleAdder, RejectsZeroBits) {
  Circuit c;
  EXPECT_THROW(build_ripple_adder(c, 0), std::invalid_argument);
}

TEST(RippleAdder, DepthGrowsLinearly) {
  Circuit c4;
  build_ripple_adder(c4, 4);
  Circuit c8;
  build_ripple_adder(c8, 8);
  EXPECT_GT(c8.cost().depth, c4.cost().depth);
}

TEST(TmrVoter, MasksSingleFault) {
  Circuit c;
  const Signal m0 = c.input("m0");
  const Signal m1 = c.input("m1");
  const Signal m2 = c.input("m2");
  c.mark_output(build_tmr_voter(c, m0, m1, m2), "voted");
  // Any single corrupted module copy is outvoted.
  for (bool truth : {false, true}) {
    for (int faulty = 0; faulty < 3; ++faulty) {
      std::vector<bool> in(3, truth);
      in[static_cast<std::size_t>(faulty)] = !truth;
      EXPECT_EQ(c.evaluate(in)[0], truth);
    }
  }
}

}  // namespace
}  // namespace swsim::core
