// End-to-end micromagnetic gate validation — our equivalent of the paper's
// MuMax3 experiments (Fig. 5, Tables I/II) at reduced scale. These are the
// slowest tests in the suite (seconds each); the full sweeps live in the
// bench harness.
#include <gtest/gtest.h>

#include "core/logic.h"
#include "core/micromag_gate.h"
#include "core/triangle_gate.h"
#include "core/validator.h"
#include "math/constants.h"
#include "math/lockin.h"

namespace swsim::core {
namespace {

using swsim::math::nm;

MicromagGateConfig xor_config() {
  MicromagGateConfig cfg;
  cfg.params = geom::TriangleGateParams::reduced_xor(nm(50), nm(20));
  return cfg;
}

MicromagGateConfig maj_config() {
  MicromagGateConfig cfg;
  cfg.params = geom::TriangleGateParams::reduced_maj3(nm(50), nm(20));
  return cfg;
}

TEST(MicromagGate, ConstructionSanity) {
  MicromagTriangleGate gate(xor_config());
  EXPECT_EQ(gate.num_inputs(), 2u);
  EXPECT_GT(gate.drive_frequency(), 1e9);
  EXPECT_GT(gate.simulated_duration(), 0.0);
  EXPECT_GT(gate.body_mask().count(), 100u);
}

TEST(MicromagGate, ConfigValidation) {
  MicromagGateConfig cfg = xor_config();
  cfg.cell_size = 0.0;
  EXPECT_THROW(MicromagTriangleGate{cfg}, std::invalid_argument);

  cfg = xor_config();
  cfg.cell_size = cfg.params.wavelength;  // < 4 cells per wavelength
  EXPECT_THROW(MicromagTriangleGate{cfg}, std::invalid_argument);

  cfg = xor_config();
  cfg.settle_fraction = 0.99;
  EXPECT_THROW(MicromagTriangleGate{cfg}, std::invalid_argument);
}

TEST(MicromagGate, RejectsWrongArity) {
  MicromagTriangleGate gate(xor_config());
  EXPECT_THROW(gate.evaluate({true, false, true}), std::invalid_argument);
}

TEST(MicromagGate, XorFullTruthTable) {
  // The headline experiment: LLG simulation of the triangle XOR validates
  // the full truth table with threshold detection (paper Table II).
  MicromagTriangleGate gate(xor_config());
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
  // Fan-out of 2: both outputs agree within a few percent (paper: 0.99 vs 1).
  EXPECT_LT(report.max_output_asymmetry, 0.15);
}

TEST(MicromagGate, XorAmplitudeContrast) {
  MicromagTriangleGate gate(xor_config());
  const auto same = gate.evaluate_full({false, false});
  const auto diff = gate.evaluate_full({true, false});
  // In-phase >> antiphase: the Table II pattern (1 vs ~0).
  EXPECT_GT(same.outputs.normalized_o1, 2.0 * diff.outputs.normalized_o1);
  EXPECT_LT(diff.outputs.normalized_o1, 0.5);   // below the 0.5 threshold
  EXPECT_GT(same.outputs.normalized_o1, 0.5);
}

TEST(MicromagGate, XorSnapshotContainsWave) {
  MicromagTriangleGate gate(xor_config());
  const auto ev = gate.evaluate_full({false, false});
  double peak = 0.0;
  for (double v : ev.snapshot_mx) peak = std::max(peak, std::fabs(v));
  EXPECT_GT(peak, 1e-4);  // a visible wave pattern for Fig. 5 rendering
  EXPECT_EQ(ev.snapshot_mx.grid().cell_count(), gate.grid().cell_count());
}

TEST(MicromagGate, MajFullTruthTable) {
  // Phase detection over all 8 patterns (paper Fig. 5 / Table I).
  MicromagTriangleGate gate(maj_config());
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
  // FO2: normalized outputs nearly identical (paper: 0.083 vs 0.084).
  EXPECT_LT(report.max_output_asymmetry, 0.05);
}

TEST(MicromagGate, HalfWavelengthTapInvertsPhysically) {
  // The paper's inverted-output rule, validated in the LLG solver: moving
  // the detectors out by lambda/2 shifts the arriving wave's absolute
  // phase by ~pi relative to the nominal device (measured on the same
  // all-zeros excitation).
  MicromagGateConfig plain_cfg = maj_config();
  MicromagGateConfig shifted_cfg = maj_config();
  shifted_cfg.params.n_out += 0.5;

  MicromagTriangleGate plain(plain_cfg);
  MicromagTriangleGate shifted(shifted_cfg);
  const std::vector<bool> zeros{false, false, false};
  const auto ev_plain = plain.evaluate_full(zeros);
  const auto ev_shift = shifted.evaluate_full(zeros);
  // evaluate_full reports phases relative to each gate's own calibration
  // (both ~0); compare the raw lock-in phases instead.
  const double dphi =
      swsim::math::phase_distance(ev_plain.o1_phase + swsim::math::kPi,
                                  ev_shift.o1_phase);
  // The half-wavelength tap adds pi (plus small junction corrections).
  EXPECT_LT(dphi, 0.7);
}

TEST(MicromagGate, AgreesWithAnalyticalBackend) {
  // The same device evaluated by the wave-network backend and by LLG must
  // produce the same logic for every input pattern.
  MicromagTriangleGate mm(xor_config());
  TriangleGateConfig acfg;
  acfg.params = xor_config().params;
  TriangleXorGate analytical(acfg);
  for (const auto& p : all_input_patterns(2)) {
    EXPECT_EQ(mm.evaluate(p).o1.logic, analytical.evaluate(p).o1.logic)
        << "pattern " << p[0] << p[1];
  }
}

}  // namespace
}  // namespace swsim::core
