// Metrics: bucket boundary ("le") semantics, quantile interpolation,
// armed/disarmed gating, registry identity, and the JSON export shape.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace swsim::obs {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::arm(); }
  void TearDown() override { MetricsRegistry::disarm(); }
};

TEST_F(MetricsTest, CounterAndGaugeTallyWhenArmed) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST_F(MetricsTest, DisarmedRecordsAreDropped) {
  MetricsRegistry::disarm();
  Counter c;
  c.add(100);
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  g.set(5);
  EXPECT_EQ(g.value(), 0);

  Histogram h({1.0});
  h.observe(0.5);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(MetricsTest, HistogramBoundaryValuesAreInclusive) {
  // "le" semantics: a value exactly on a bound lands in that bound's
  // bucket, not the next one.
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);  // bucket 0
  h.observe(1.0);  // bucket 0 (boundary inclusive)
  h.observe(1.5);  // bucket 1
  h.observe(2.0);  // bucket 1 (boundary inclusive)
  h.observe(5.0);  // bucket 2 (last finite boundary)
  h.observe(7.0);  // overflow

  const auto s = h.snapshot();
  ASSERT_EQ(s.counts.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 2u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.count, 6u);
  EXPECT_DOUBLE_EQ(s.sum, 17.0);
  EXPECT_DOUBLE_EQ(s.mean(), 17.0 / 6.0);
}

TEST_F(MetricsTest, QuantileInterpolatesWithinBucket) {
  Histogram h({1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 5.0, 7.0}) h.observe(v);
  const auto s = h.snapshot();
  // rank 3 of 6 falls in the (1, 2] bucket at within-fraction 0.5.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 1.5);
  // The overflow bucket has no upper bound to interpolate toward; it
  // reports the last finite bound.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  // Empty histogram: quantile is defined (0), not a crash.
  EXPECT_DOUBLE_EQ(Histogram({1.0}).snapshot().quantile(0.9), 0.0);
}

TEST_F(MetricsTest, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST_F(MetricsTest, RegistryGetOrCreateReturnsStableObjects) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("test.obs_metrics.counter");
  Counter& b = reg.counter("test.obs_metrics.counter");
  EXPECT_EQ(&a, &b);

  // Bounds apply only on first creation; later callers get the original.
  Histogram& h1 = reg.histogram("test.obs_metrics.hist", {1.0, 2.0});
  Histogram& h2 = reg.histogram("test.obs_metrics.hist", {99.0});
  EXPECT_EQ(&h1, &h2);
  ASSERT_EQ(h2.bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h2.bounds()[1], 2.0);
}

TEST_F(MetricsTest, ConcurrentCounterAddsDoNotLoseIncrements) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kAdds = 10000;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&c] {
      for (int n = 0; n < kAdds; ++n) c.add();
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST_F(MetricsTest, JsonExportRoundTrips) {
  auto& reg = MetricsRegistry::global();
  reg.counter("test.obs_metrics.json_counter").add(3);
  reg.gauge("test.obs_metrics.json_gauge").set(-2);
  Histogram& h = reg.histogram("test.obs_metrics.json_hist", {1.0, 2.0});
  h.reset();
  h.observe(0.5);
  h.observe(9.0);

  const JsonValue root = parse_json(reg.json());
  const auto* counters = root.find("counters");
  ASSERT_NE(counters, nullptr);
  const auto* c = counters->find("test.obs_metrics.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->number(), 3.0);

  const auto* g = root.find("gauges")->find("test.obs_metrics.json_gauge");
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->number(), -2.0);

  const auto* hist =
      root.find("histograms")->find("test.obs_metrics.json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->number(), 9.5);
  const auto& buckets = hist->find("buckets")->array();
  ASSERT_EQ(buckets.size(), 3u);  // two finite bounds + overflow
  EXPECT_DOUBLE_EQ(buckets[0].array()[0].number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[0].array()[1].number(), 1.0);
  // The overflow bucket's "le" is the string "inf", not a number.
  EXPECT_EQ(buckets[2].array()[0].str(), "inf");
  EXPECT_DOUBLE_EQ(buckets[2].array()[1].number(), 1.0);
}

TEST_F(MetricsTest, SnapshotsAreLexicographicallySorted) {
  auto& reg = MetricsRegistry::global();
  reg.reset();
  // Registered deliberately out of order; the dump must not depend on
  // registration (or hash-bucket) order.
  reg.counter("test.sort.zebra").add(1);
  reg.counter("test.sort.alpha").add(2);
  reg.counter("test.sort.middle").add(3);
  reg.gauge("test.sort.g2").set(2);
  reg.gauge("test.sort.g1").set(1);

  const auto counters = reg.counters_snapshot();
  for (std::size_t i = 1; i < counters.size(); ++i) {
    EXPECT_LT(counters[i - 1].first, counters[i].first);
  }
  const auto gauges = reg.gauges_snapshot();
  for (std::size_t i = 1; i < gauges.size(); ++i) {
    EXPECT_LT(gauges[i - 1].first, gauges[i].first);
  }
}

TEST_F(MetricsTest, JsonDumpIsByteStableAndSorted) {
  auto& reg = MetricsRegistry::global();
  reg.reset();
  // First creation order is deliberately non-lexicographic; the storage is
  // an unordered_map, so only the sort-at-snapshot contract keeps the dump
  // deterministic.
  reg.counter("test.stable.b").add(2);
  reg.counter("test.stable.a").add(1);
  reg.gauge("test.stable.g").set(7);
  const std::string first = reg.json();

  // Same state, dumped again: byte-identical, so baselines diff cleanly.
  EXPECT_EQ(reg.json(), first);
  // And within the dump, the keys appear in sorted order despite the
  // creation order above.
  const auto pos_a = first.find("test.stable.a");
  const auto pos_b = first.find("test.stable.b");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);
}

}  // namespace
}  // namespace swsim::obs
