#include "core/logic.h"

#include <gtest/gtest.h>

#include "math/constants.h"

namespace swsim::core {
namespace {

TEST(Logic, Maj3TruthTable) {
  EXPECT_FALSE(maj3(false, false, false));
  EXPECT_FALSE(maj3(true, false, false));
  EXPECT_FALSE(maj3(false, true, false));
  EXPECT_FALSE(maj3(false, false, true));
  EXPECT_TRUE(maj3(true, true, false));
  EXPECT_TRUE(maj3(true, false, true));
  EXPECT_TRUE(maj3(false, true, true));
  EXPECT_TRUE(maj3(true, true, true));
}

TEST(Logic, Xor2TruthTable) {
  EXPECT_FALSE(xor2(false, false));
  EXPECT_TRUE(xor2(true, false));
  EXPECT_TRUE(xor2(false, true));
  EXPECT_FALSE(xor2(true, true));
}

TEST(Logic, MajorityNInput) {
  EXPECT_TRUE(majority({true, true, false, true, false}));
  EXPECT_FALSE(majority({true, false, false, true, false}));
  EXPECT_TRUE(majority({true}));
}

TEST(Logic, MajorityRejectsEvenOrEmpty) {
  EXPECT_THROW(majority({}), std::invalid_argument);
  EXPECT_THROW(majority({true, false}), std::invalid_argument);
}

TEST(Logic, Maj3ConsistentWithMajority) {
  for (const auto& p : all_input_patterns(3)) {
    EXPECT_EQ(maj3(p[0], p[1], p[2]), majority({p[0], p[1], p[2]}));
  }
}

TEST(Logic, AllInputPatternsCountAndOrder) {
  const auto rows = all_input_patterns(3);
  ASSERT_EQ(rows.size(), 8u);
  // Row r encodes r in binary with inputs[0] the LSB.
  EXPECT_EQ(rows[0], (std::vector<bool>{false, false, false}));
  EXPECT_EQ(rows[1], (std::vector<bool>{true, false, false}));
  EXPECT_EQ(rows[6], (std::vector<bool>{false, true, true}));
  EXPECT_EQ(rows[7], (std::vector<bool>{true, true, true}));
}

TEST(Logic, AllInputPatternsRejectsHugeN) {
  EXPECT_THROW(all_input_patterns(32), std::invalid_argument);
}

TEST(Logic, PhaseEncoding) {
  EXPECT_DOUBLE_EQ(logic_phase(false), 0.0);
  EXPECT_DOUBLE_EQ(logic_phase(true), swsim::math::kPi);
}

TEST(Logic, PhaseDecoding) {
  EXPECT_FALSE(phase_logic(0.0));
  EXPECT_TRUE(phase_logic(swsim::math::kPi));
  EXPECT_TRUE(phase_logic(-swsim::math::kPi));
  EXPECT_FALSE(phase_logic(0.4));
  EXPECT_TRUE(phase_logic(swsim::math::kPi - 0.4));
}

TEST(Logic, PhaseRoundTrip) {
  EXPECT_FALSE(phase_logic(logic_phase(false)));
  EXPECT_TRUE(phase_logic(logic_phase(true)));
}

}  // namespace
}  // namespace swsim::core
