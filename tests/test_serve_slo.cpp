// Serve-plane telemetry: SloTracker determinism and schema, the flight
// recorder ring, the timing block echoed on every response, the healthz
// "slo" section of a live daemon, and an in-process loadgen smoke run.
#include "serve/slo.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/client.h"
#include "serve/flight_recorder.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace swsim::serve {
namespace {

namespace fs = std::filesystem;

using robust::StatusCode;

SloTracker::Sample sample(const std::string& tenant, const std::string& kind,
                          StatusCode code, double total_s,
                          double engine_s = -1.0) {
  SloTracker::Sample s;
  s.tenant = tenant;
  s.kind = kind;
  s.code = code;
  s.total_s = total_s;
  s.engine_s = engine_s;
  return s;
}

TEST(SloTracker, CountsAndHistogramsFollowTheSamples) {
  SloTracker slo;
  slo.record(sample("a", "truthtable", StatusCode::kOk, 0.001, 0.0005));
  slo.record(sample("a", "truthtable", StatusCode::kOk, 0.002, 0.001));
  slo.record(sample("a", "truthtable", StatusCode::kOverloaded, 0.0001));
  slo.record(sample("a", "yield", StatusCode::kDeadlineExceeded, 0.05));
  slo.record(sample("b", "hello", StatusCode::kInvalidConfig, 0.0001));

  const auto snap = slo.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const auto& tt = snap.at("a").at("truthtable");
  EXPECT_EQ(tt.requests, 3u);
  EXPECT_EQ(tt.ok, 2u);
  EXPECT_EQ(tt.shed_overload, 1u);
  EXPECT_EQ(tt.retryable, 1u);
  EXPECT_EQ(tt.total.count, 3u);
  EXPECT_EQ(tt.engine.count, 2u);  // the shed sample had no engine phase
  EXPECT_EQ(tt.total.sum_us, 1000u + 2000u + 100u);
  EXPECT_EQ(tt.total.max_us, 2000u);
  const auto& y = snap.at("a").at("yield");
  EXPECT_EQ(y.shed_deadline, 1u);
  EXPECT_EQ(snap.at("b").at("hello").failed, 1u);
  EXPECT_EQ(slo.total_requests(), 5u);
}

TEST(SloTracker, QuantileIsConservativeBucketUpperBound) {
  SloTracker slo;
  // 100 samples at 0.9 ms: every quantile reports the enclosing bucket's
  // upper bound, never less than the true value.
  for (int i = 0; i < 100; ++i) {
    slo.record(sample("t", "hello", StatusCode::kOk, 0.0009));
  }
  const auto hist = slo.snapshot().at("t").at("hello").total;
  EXPECT_GE(hist.quantile(0.5), 0.0009);
  EXPECT_GE(hist.quantile(0.99), 0.0009);
  EXPECT_LE(hist.quantile(0.99), 0.01);  // and not wildly above
}

TEST(SloTracker, JsonIsDeterministicUnderConcurrentRecording) {
  // The healthz contract: the snapshot depends only on the multiset of
  // samples, not on how session threads interleaved. Integer-microsecond
  // accumulation makes the sums commutative where double addition is not.
  std::vector<SloTracker::Sample> samples;
  for (int i = 0; i < 240; ++i) {
    const char* tenants[] = {"alpha", "beta", "gamma"};
    const char* kinds[] = {"truthtable", "yield"};
    const StatusCode codes[] = {StatusCode::kOk, StatusCode::kOk,
                                StatusCode::kOverloaded,
                                StatusCode::kDeadlineExceeded};
    auto s = sample(tenants[i % 3], kinds[i % 2], codes[i % 4],
                    0.0001 * (1 + i % 50), 0.00005 * (1 + i % 30));
    s.queue_s = 0.00001 * (i % 7);
    s.budget_consumed = (i % 5 == 0) ? 0.25 * (i % 6) : -1.0;
    samples.push_back(std::move(s));
  }

  SloTracker serial;
  for (const auto& s : samples) serial.record(s);

  SloTracker concurrent;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = t; i < samples.size(); i += 4) {
        concurrent.record(samples[i]);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(serial.json(), concurrent.json());
  EXPECT_EQ(serial.total_requests(), concurrent.total_requests());
}

TEST(SloTracker, TenantCardinalityIsBounded) {
  SloTracker slo(2);
  slo.record(sample("a", "hello", StatusCode::kOk, 0.001));
  slo.record(sample("b", "hello", StatusCode::kOk, 0.001));
  slo.record(sample("flood-1", "hello", StatusCode::kOk, 0.001));
  slo.record(sample("flood-2", "hello", StatusCode::kOk, 0.001));
  const auto snap = slo.snapshot();
  ASSERT_EQ(snap.size(), 3u);  // a, b, ~other
  EXPECT_EQ(snap.at("~other").at("hello").requests, 2u);
}

TEST(SloTracker, JsonParsesAndCarriesTheSchema) {
  SloTracker slo;
  auto s = sample("tenant-1", "truthtable", StatusCode::kOk, 0.002, 0.001);
  s.queue_s = 0.0001;
  s.render_s = 0.0005;
  s.budget_consumed = 0.4;
  slo.record(s);

  const auto doc = obs::parse_json(slo.json());
  EXPECT_EQ(doc.find("requests")->number(), 1.0);
  const auto* tenant = doc.find("tenants")->find("tenant-1");
  ASSERT_NE(tenant, nullptr);
  const auto* tt = tenant->find("truthtable");
  ASSERT_NE(tt, nullptr);
  for (const char* phase : {"queue", "engine", "render", "total"}) {
    const auto* h = tt->find(phase);
    ASSERT_NE(h, nullptr) << phase;
    EXPECT_EQ(h->find("count")->number(), 1.0) << phase;
    ASSERT_NE(h->find("p99_s"), nullptr) << phase;
  }
  const auto* budget = tt->find("budget");
  ASSERT_NE(budget, nullptr);
  EXPECT_EQ(budget->find("count")->number(), 1.0);
  EXPECT_NEAR(budget->find("mean_consumed")->number(), 0.4, 1e-6);
  EXPECT_EQ(budget->find("over")->number(), 0.0);
}

TEST(FlightRecorder, RingKeepsTheMostRecentEntries) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record("{\"n\":" + std::to_string(i) + "}");
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.size(), 4u);
  std::ostringstream os;
  rec.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"flight_recorder\":\"begin\",\"dropped\":6"),
            std::string::npos);
  EXPECT_NE(out.find("\"flight_recorder\":\"end\",\"entries\":4"),
            std::string::npos);
  EXPECT_EQ(out.find("{\"n\":5}"), std::string::npos);  // dropped
  // Oldest-first order of the survivors.
  EXPECT_LT(out.find("{\"n\":6}"), out.find("{\"n\":9}"));
}

TEST(FlightRecorder, LongLinesAreTruncatedNotDropped) {
  FlightRecorder rec(2);
  rec.record(std::string(2 * FlightRecorder::kSlotBytes, 'x'));
  EXPECT_EQ(rec.size(), 1u);
  std::ostringstream os;
  rec.dump(os);
  // The entry survives, capped at the slot size.
  const std::string out = os.str();
  const auto first_x = out.find('x');
  ASSERT_NE(first_x, std::string::npos);
  std::size_t run = 0;
  while (first_x + run < out.size() && out[first_x + run] == 'x') ++run;
  EXPECT_LT(run, FlightRecorder::kSlotBytes);
}

// ---------------------------------------------------------------------------
// Live-daemon half: timing echo, healthz slo, request-log trace ids, the
// SIGQUIT-path dump, and a loadgen smoke run — all against an in-process
// server on a Unix socket.

ServerConfig test_config(const std::string& name) {
  ServerConfig cfg;
  const fs::path dir = fs::path(::testing::TempDir()) / "swsim_slo_test";
  fs::create_directories(dir);
  cfg.socket_path = (dir / (name + ".sock")).string();
  fs::remove(cfg.socket_path);
  cfg.dispatchers = 2;
  cfg.engine.jobs = 2;
  return cfg;
}

Request truth_table_request(const std::string& client,
                            const std::string& trace_id = "") {
  Request r;
  r.type = RequestType::kTruthTable;
  r.client = client;
  r.gate.kind = "maj";
  r.trace_id = trace_id;
  return r;
}

TEST(ServeSlo, ResponsesEchoTheTimingBreakdown) {
  ServerConfig cfg = test_config("timing");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());
  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());

  Request req = truth_table_request("timer");
  req.deadline_s = 30.0;
  Response resp;
  ASSERT_TRUE(client.call(req, &resp).is_ok());
  ASSERT_TRUE(resp.status.is_ok());
  ASSERT_TRUE(resp.timing.any());
  EXPECT_GE(resp.timing.queue_s, 0.0);
  EXPECT_GE(resp.timing.engine_s, 0.0);
  EXPECT_GE(resp.timing.render_s, 0.0);
  // The session-observed total covers queue + dispatch work.
  EXPECT_GE(resp.timing.total_s, resp.timing.engine_s);
  // A request that carried a deadline reports its budget consumption.
  EXPECT_GE(resp.timing.budget_consumed, 0.0);
  EXPECT_LT(resp.timing.budget_consumed, 1.0);
  server.shutdown();
}

TEST(ServeSlo, HealthzReportsPerTenantSloSections) {
  ServerConfig cfg = test_config("healthz");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());
  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());

  Response resp;
  ASSERT_TRUE(client.call(truth_table_request("tenant-a"), &resp).is_ok());
  ASSERT_TRUE(client.call(truth_table_request("tenant-b"), &resp).is_ok());

  Request healthz;
  healthz.type = RequestType::kHealthz;
  ASSERT_TRUE(client.call(healthz, &resp).is_ok());
  ASSERT_TRUE(resp.status.is_ok());
  const auto doc = obs::parse_json(resp.payload_json);
  const auto* slo = doc.find("slo");
  ASSERT_NE(slo, nullptr);
  EXPECT_GE(slo->find("requests")->number(), 2.0);
  const auto* tenants = slo->find("tenants");
  ASSERT_NE(tenants, nullptr);
  for (const char* tenant : {"tenant-a", "tenant-b"}) {
    const auto* t = tenants->find(tenant);
    ASSERT_NE(t, nullptr) << tenant;
    const auto* tt = t->find("truthtable");
    ASSERT_NE(tt, nullptr) << tenant;
    EXPECT_GE(tt->find("requests")->number(), 1.0);
    EXPECT_GE(tt->find("ok")->number(), 1.0);
    ASSERT_NE(tt->find("total"), nullptr);
    EXPECT_GE(tt->find("total")->find("count")->number(), 1.0);
  }
  server.shutdown();
}

TEST(ServeSlo, RequestLogCarriesTraceIdsAndTheFlightRecorderDump) {
  ServerConfig cfg = test_config("reqlog");
  const fs::path log_path =
      fs::path(::testing::TempDir()) / "swsim_slo_test" / "requests.jsonl";
  fs::remove(log_path);
  cfg.request_log = log_path.string();
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());
  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());

  Response resp;
  ASSERT_TRUE(
      client.call(truth_table_request("traced", "trace-xyz"), &resp).is_ok());
  ASSERT_TRUE(resp.status.is_ok());
  // The SIGQUIT path minus the signal: dump the ring into the request log.
  server.dump_flight_recorder();
  server.shutdown();

  std::ifstream in(log_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string log = buffer.str();
  EXPECT_NE(log.find("\"trace_id\":\"trace-xyz\""), std::string::npos);
  EXPECT_NE(log.find("\"flight_recorder\":\"begin\""), std::string::npos);
  EXPECT_NE(log.find("\"flight_recorder\":\"end\""), std::string::npos);
}

TEST(ServeSlo, LoadgenSmokeCompletesWithoutHangs) {
  ServerConfig cfg = test_config("loadgen");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  LoadgenConfig lg;
  lg.socket_path = cfg.socket_path;
  lg.duration_s = 0.3;
  lg.concurrency = 2;
  lg.weight_truthtable = 0.2;
  lg.weight_yield = 0.0;
  lg.weight_hello = 0.8;
  lg.call_timeout_s = 10.0;
  lg.seed = 7;
  LoadgenReport report;
  ASSERT_TRUE(run_loadgen(lg, &report).is_ok());
  EXPECT_GT(report.completed, 0u);
  EXPECT_EQ(report.hung, 0u);
  EXPECT_EQ(report.transport_errors, 0u);
  EXPECT_EQ(report.ok, report.completed);
  EXPECT_EQ(report.sent, report.truthtable + report.yield + report.hello);
  // The daemon's SLO tracker saw every tenant the loadgen ran.
  EXPECT_GE(server.slo().total_requests(), report.completed);
  server.shutdown();
}

}  // namespace
}  // namespace swsim::serve
