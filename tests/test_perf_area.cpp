#include "perf/area.h"

#include <gtest/gtest.h>

#include "math/constants.h"

namespace swsim::perf {
namespace {

using swsim::math::nm;

TEST(Area, TriangleGateAreaPositiveAndConsistent) {
  const geom::TriangleGateLayout layout(
      geom::TriangleGateParams::paper_maj3());
  const AreaEstimate est = triangle_gate_area(layout);
  EXPECT_GT(est.device_area, 0.0);
  EXPECT_GT(est.waveguide_area, 0.0);
  // Material footprint is a subset of the bounding box.
  EXPECT_LT(est.waveguide_area, est.device_area);
}

TEST(Area, PaperDeviceIsSubMicronSquared) {
  const geom::TriangleGateLayout layout(
      geom::TriangleGateParams::paper_maj3());
  const AreaEstimate est = triangle_gate_area(layout);
  // ~2.4 um x ~1 um bounding box: order 1e-12 m^2.
  EXPECT_GT(est.device_area, 0.1e-12);
  EXPECT_LT(est.device_area, 10e-12);
}

TEST(Area, ScalesWithWavelength) {
  auto small = geom::TriangleGateParams::paper_maj3();
  auto large = small;
  large.wavelength *= 2.0;
  large.width *= 2.0;
  const double a_small =
      triangle_gate_area(geom::TriangleGateLayout(small)).device_area;
  const double a_large =
      triangle_gate_area(geom::TriangleGateLayout(large)).device_area;
  EXPECT_NEAR(a_large / a_small, 4.0, 0.2);  // area ~ lambda^2
}

TEST(Area, CmosAreaModel) {
  const CmosGate g16 = CmosGate::reference(CmosNode::k16nm, GateFunction::kMaj3);
  const CmosGate g7 = CmosGate::reference(CmosNode::k7nm, GateFunction::kMaj3);
  EXPECT_GT(cmos_gate_area(g16), cmos_gate_area(g7));
  EXPECT_GT(cmos_gate_area(g7), 0.0);
}

TEST(Adp, SwRowConsistency) {
  const geom::TriangleGateLayout layout(
      geom::TriangleGateParams::paper_maj3());
  const AdpRow row = sw_adp(SwGateCost::triangle_maj3(), layout);
  EXPECT_GT(row.adp, 0.0);
  EXPECT_NEAR(row.adp, row.area * row.delay * row.power, row.adp * 1e-12);
  // power = energy / delay: 10.32 aJ / 0.42 ns ~ 24.6 nW.
  EXPECT_NEAR(row.power, 24.6e-9, 1e-9);
}

TEST(Adp, CmosRowConsistency) {
  const AdpRow row =
      cmos_adp(CmosGate::reference(CmosNode::k7nm, GateFunction::kXor2));
  EXPECT_GT(row.adp, 0.0);
  EXPECT_NEAR(row.power, 5.4e-18 / 0.01e-9, 1e-9);  // 540 nW burst power
}

TEST(Adp, SwWinsOnPowerLosesOnDelay) {
  // The qualitative trade-off of Sec. IV-D / ref. [42].
  const geom::TriangleGateLayout layout(
      geom::TriangleGateParams::paper_maj3());
  const AdpRow sw = sw_adp(SwGateCost::triangle_maj3(), layout);
  const AdpRow cm =
      cmos_adp(CmosGate::reference(CmosNode::k16nm, GateFunction::kMaj3));
  EXPECT_LT(sw.power, cm.power);
  EXPECT_GT(sw.delay, cm.delay);
}

}  // namespace
}  // namespace swsim::perf
