#include "math/fft.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"
#include "math/rng.h"

namespace swsim::math {
namespace {

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
  EXPECT_THROW(next_pow2(0), std::invalid_argument);
}

TEST(Fft, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(96));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(3);
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(Fft, SizeOneIsIdentity) {
  std::vector<Complex> data{Complex{3.0, -2.0}};
  fft(data);
  EXPECT_DOUBLE_EQ(data[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(data[0].imag(), -2.0);
}

TEST(Fft, DeltaHasFlatSpectrum) {
  std::vector<Complex> data(8, Complex{});
  data[0] = 1.0;
  fft(data);
  for (const Complex& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInCorrectBin) {
  const std::size_t n = 32;
  const std::size_t bin = 5;
  std::vector<Complex> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ph = kTwoPi * static_cast<double>(bin * i) /
                      static_cast<double>(n);
    data[i] = Complex{std::cos(ph), std::sin(ph)};
  }
  fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = k == bin ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(data[k]), expected, 1e-9) << "bin " << k;
  }
}

TEST(Fft, ParsevalHolds) {
  Pcg32 rng(7);
  const std::size_t n = 64;
  std::vector<Complex> data(n);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = Complex{rng.normal(), rng.normal()};
    time_energy += std::norm(c);
  }
  fft(data);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-9 * freq_energy);
}

// Parameterized round-trip across sizes.
class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, ForwardInverseIsIdentity) {
  const std::size_t n = GetParam();
  Pcg32 rng(n);
  std::vector<Complex> data(n);
  for (auto& c : data) c = Complex{rng.normal(), rng.normal()};
  const auto original = data;
  fft(data);
  fft(data, /*inverse=*/true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(Fft3d, RoundTrip) {
  const std::size_t nx = 4, ny = 8, nz = 2;
  Pcg32 rng(99);
  std::vector<Complex> data(nx * ny * nz);
  for (auto& c : data) c = Complex{rng.normal(), rng.normal()};
  const auto original = data;
  fft3d(data, nx, ny, nz);
  fft3d(data, nx, ny, nz, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(Fft3d, RejectsBadDimensions) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft3d(data, 3, 4, 1), std::invalid_argument);
  EXPECT_THROW(fft3d(data, 4, 4, 1), std::invalid_argument);  // size mismatch
}

TEST(Fft3d, SeparableTone) {
  // A plane wave in 3D lands in exactly one 3D bin.
  const std::size_t nx = 8, ny = 4, nz = 2;
  const std::size_t bx = 3, by = 1, bz = 1;
  std::vector<Complex> data(nx * ny * nz);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const double ph =
            kTwoPi * (static_cast<double>(bx * x) / static_cast<double>(nx) +
                      static_cast<double>(by * y) / static_cast<double>(ny) +
                      static_cast<double>(bz * z) / static_cast<double>(nz));
        data[x + nx * (y + ny * z)] = Complex{std::cos(ph), std::sin(ph)};
      }
    }
  }
  fft3d(data, nx, ny, nz);
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      for (std::size_t x = 0; x < nx; ++x) {
        const double expected =
            (x == bx && y == by && z == bz)
                ? static_cast<double>(nx * ny * nz)
                : 0.0;
        EXPECT_NEAR(std::abs(data[x + nx * (y + ny * z)]), expected, 1e-8);
      }
    }
  }
}

TEST(CircularConvolve, MatchesDirectSum) {
  Pcg32 rng(5);
  const std::size_t n = 16;
  std::vector<Complex> a(n), b(n);
  for (auto& c : a) c = Complex{rng.normal(), rng.normal()};
  for (auto& c : b) c = Complex{rng.normal(), rng.normal()};
  const auto c = circular_convolve(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    Complex direct{};
    for (std::size_t j = 0; j < n; ++j) {
      direct += a[j] * b[(i + n - j) % n];
    }
    EXPECT_NEAR(c[i].real(), direct.real(), 1e-9);
    EXPECT_NEAR(c[i].imag(), direct.imag(), 1e-9);
  }
}

TEST(CircularConvolve, SizeMismatchThrows) {
  std::vector<Complex> a(4), b(8);
  EXPECT_THROW(circular_convolve(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::math
