#include "math/grid.h"

#include <gtest/gtest.h>

namespace swsim::math {
namespace {

TEST(Grid, BasicDimensions) {
  const Grid g(4, 3, 2, 1e-9, 2e-9, 3e-9);
  EXPECT_EQ(g.nx(), 4u);
  EXPECT_EQ(g.ny(), 3u);
  EXPECT_EQ(g.nz(), 2u);
  EXPECT_EQ(g.cell_count(), 24u);
  EXPECT_DOUBLE_EQ(g.cell_volume(), 6e-27);
  EXPECT_DOUBLE_EQ(g.size_x(), 4e-9);
  EXPECT_DOUBLE_EQ(g.size_y(), 6e-9);
  EXPECT_DOUBLE_EQ(g.size_z(), 6e-9);
}

TEST(Grid, FilmFactory) {
  const Grid g = Grid::film(10, 20, 5e-9, 5e-9, 1e-9);
  EXPECT_EQ(g.nz(), 1u);
  EXPECT_DOUBLE_EQ(g.dz(), 1e-9);
}

TEST(Grid, RejectsZeroAxis) {
  EXPECT_THROW(Grid(0, 1, 1, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(Grid(1, 0, 1, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(Grid(1, 1, 0, 1, 1, 1), std::invalid_argument);
}

TEST(Grid, RejectsNonPositiveCellSize) {
  EXPECT_THROW(Grid(1, 1, 1, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Grid(1, 1, 1, 1, -1, 1), std::invalid_argument);
}

TEST(Grid, IndexRoundTrip) {
  const Grid g(5, 7, 3, 1, 1, 1);
  for (std::size_t z = 0; z < g.nz(); ++z) {
    for (std::size_t y = 0; y < g.ny(); ++y) {
      for (std::size_t x = 0; x < g.nx(); ++x) {
        const std::size_t i = g.index(x, y, z);
        const Index3 idx = g.unindex(i);
        EXPECT_EQ(idx.x, x);
        EXPECT_EQ(idx.y, y);
        EXPECT_EQ(idx.z, z);
      }
    }
  }
}

TEST(Grid, IndexIsXFastest) {
  const Grid g(4, 4, 4, 1, 1, 1);
  EXPECT_EQ(g.index(1, 0, 0), 1u);
  EXPECT_EQ(g.index(0, 1, 0), 4u);
  EXPECT_EQ(g.index(0, 0, 1), 16u);
}

TEST(Grid, CellCenter) {
  const Grid g(4, 4, 1, 2.0, 3.0, 1.0);
  const Vec3 c = g.cell_center(0, 0, 0);
  EXPECT_DOUBLE_EQ(c.x, 1.0);
  EXPECT_DOUBLE_EQ(c.y, 1.5);
  EXPECT_DOUBLE_EQ(c.z, 0.5);
  const Vec3 c2 = g.cell_center(3, 2, 0);
  EXPECT_DOUBLE_EQ(c2.x, 7.0);
  EXPECT_DOUBLE_EQ(c2.y, 7.5);
}

TEST(Grid, LocateFindsContainingCell) {
  const Grid g(10, 10, 1, 1.0, 1.0, 1.0);
  const Index3 idx = g.locate(Vec3{3.7, 8.2, 0.5});
  EXPECT_EQ(idx.x, 3u);
  EXPECT_EQ(idx.y, 8u);
  EXPECT_EQ(idx.z, 0u);
}

TEST(Grid, LocateClampsOutOfRange) {
  const Grid g(10, 10, 1, 1.0, 1.0, 1.0);
  const Index3 low = g.locate(Vec3{-5.0, -5.0, -5.0});
  EXPECT_EQ(low.x, 0u);
  EXPECT_EQ(low.y, 0u);
  const Index3 high = g.locate(Vec3{100.0, 100.0, 100.0});
  EXPECT_EQ(high.x, 9u);
  EXPECT_EQ(high.y, 9u);
}

TEST(Grid, ContainsChecksBounds) {
  const Grid g(3, 3, 1, 1, 1, 1);
  EXPECT_TRUE(g.contains(0, 0, 0));
  EXPECT_TRUE(g.contains(2, 2, 0));
  EXPECT_FALSE(g.contains(3, 0, 0));
  EXPECT_FALSE(g.contains(0, 3, 0));
  EXPECT_FALSE(g.contains(0, 0, 1));
}

TEST(Grid, Equality) {
  EXPECT_EQ(Grid(2, 2, 1, 1, 1, 1), Grid(2, 2, 1, 1, 1, 1));
  EXPECT_NE(Grid(2, 2, 1, 1, 1, 1), Grid(2, 3, 1, 1, 1, 1));
  EXPECT_NE(Grid(2, 2, 1, 1, 1, 1), Grid(2, 2, 1, 2, 1, 1));
}

// Parameterized: locate(cell_center(i)) == i for a variety of cell shapes.
class GridRoundTrip : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(GridRoundTrip, CenterLocateRoundTrip) {
  const auto [dx, dy] = GetParam();
  const Grid g(7, 5, 1, dx, dy, 1e-9);
  for (std::size_t y = 0; y < g.ny(); ++y) {
    for (std::size_t x = 0; x < g.nx(); ++x) {
      const Index3 idx = g.locate(g.cell_center(x, y, 0));
      EXPECT_EQ(idx.x, x);
      EXPECT_EQ(idx.y, y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CellShapes, GridRoundTrip,
                         ::testing::Values(std::make_tuple(1e-9, 1e-9),
                                           std::make_tuple(5e-9, 2e-9),
                                           std::make_tuple(2.5e-9, 7.5e-9),
                                           std::make_tuple(1e-6, 1e-6)));

}  // namespace
}  // namespace swsim::math
