// Tracing: disarmed spans record nothing, armed spans export well-formed
// Chrome trace_event JSON, and scope nesting survives multi-threaded
// recording (each thread's spans nest by time containment on its own tid).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"
#include "obs/trace_merge.h"

namespace swsim::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::global().stop();
    TraceSession::global().clear();
  }
  void TearDown() override {
    TraceSession::global().stop();
    TraceSession::global().clear();
  }
};

TEST_F(TraceTest, DisarmedSpansRecordNothing) {
  {
    Span a("outer");
    Span b("inner", "cat");
  }
  record_complete("late", "cat", 0.0);
  EXPECT_EQ(TraceSession::global().event_count(), 0u);
}

TEST_F(TraceTest, ArmedSpanBecomesCompleteEvent) {
  TraceSession::global().start();
  { Span a("solve", "engine"); }
  TraceSession::global().stop();
  ASSERT_EQ(TraceSession::global().event_count(), 1u);

  const JsonValue root = parse_json(TraceSession::global().chrome_json());
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Exactly one X event named "solve" (any M thread-name events aside).
  std::size_t complete = 0;
  for (const auto& e : events->array()) {
    if (e.find("ph")->str() != "X") continue;
    ++complete;
    EXPECT_EQ(e.find("name")->str(), "solve");
    EXPECT_EQ(e.find("cat")->str(), "engine");
    EXPECT_GE(e.find("ts")->number(), 0.0);
    EXPECT_GE(e.find("dur")->number(), 0.0);
  }
  EXPECT_EQ(complete, 1u);
}

TEST_F(TraceTest, SpansStartedBeforeStopAreKept) {
  TraceSession::global().start();
  {
    Span a("outlives-stop");
    TraceSession::global().stop();
  }  // the span was armed at construction; closing it must still record
  EXPECT_EQ(TraceSession::global().event_count(), 1u);
}

struct EventRec {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double tid = -1.0;
};

std::vector<EventRec> complete_events(const std::string& json) {
  std::vector<EventRec> out;
  const JsonValue root = parse_json(json);
  for (const auto& e : root.find("traceEvents")->array()) {
    if (e.find("ph")->str() != "X") continue;
    out.push_back({e.find("name")->str(), e.find("ts")->number(),
                   e.find("dur")->number(), e.find("tid")->number()});
  }
  return out;
}

TEST_F(TraceTest, NestingSurvivesAcrossThreads) {
  constexpr int kThreads = 4;
  TraceSession::global().start();
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      set_thread_name("t" + std::to_string(w));
      Span outer("outer-" + std::to_string(w));
      Span inner("inner-" + std::to_string(w));
    });
  }
  for (auto& t : workers) t.join();
  TraceSession::global().stop();

  const auto events = complete_events(TraceSession::global().chrome_json());
  ASSERT_EQ(events.size(), 2u * kThreads);

  // Group by tid: each thread buffer must hold exactly its own pair, with
  // the inner span contained in the outer's [ts, ts+dur) window — that is
  // what makes the viewer render them as nested.
  std::map<double, std::vector<EventRec>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(e);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (auto& [tid, list] : by_tid) {
    ASSERT_EQ(list.size(), 2u);
    const auto outer = std::find_if(list.begin(), list.end(), [](auto& e) {
      return e.name.rfind("outer", 0) == 0;
    });
    const auto inner = std::find_if(list.begin(), list.end(), [](auto& e) {
      return e.name.rfind("inner", 0) == 0;
    });
    ASSERT_NE(outer, list.end());
    ASSERT_NE(inner, list.end());
    // Same worker: suffixes match.
    EXPECT_EQ(outer->name.substr(6), inner->name.substr(6));
    EXPECT_GE(inner->ts, outer->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-6);
  }

  // Thread names exported as metadata events.
  const JsonValue root = parse_json(TraceSession::global().chrome_json());
  std::size_t named = 0;
  for (const auto& e : root.find("traceEvents")->array()) {
    if (e.find("ph")->str() != "M") continue;
    EXPECT_EQ(e.find("name")->str(), "thread_name");
    const auto* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const auto* name = args->find("name");
    ASSERT_NE(name, nullptr);
    if (name->str().rfind("t", 0) == 0) ++named;
  }
  EXPECT_EQ(named, static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, RecordCompleteBackfillsAnInterval) {
  TraceSession::global().start();
  const double t0 = 1.0;
  record_complete("block", "mag", t0);
  TraceSession::global().stop();
  const auto events = complete_events(TraceSession::global().chrome_json());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "block");
  EXPECT_DOUBLE_EQ(events[0].ts, t0);
  EXPECT_GE(events[0].dur, 0.0);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsThreadRegistration) {
  TraceSession::global().start();
  { Span a("before-clear"); }
  TraceSession::global().clear();
  EXPECT_EQ(TraceSession::global().event_count(), 0u);
  { Span a("after-clear"); }
  TraceSession::global().stop();
  EXPECT_EQ(TraceSession::global().event_count(), 1u);
}

TEST_F(TraceTest, SpanNamesAreJsonEscaped) {
  TraceSession::global().start();
  { Span a(std::string("quote \" backslash \\ newline \n end"), "core"); }
  TraceSession::global().stop();
  const auto events = complete_events(TraceSession::global().chrome_json());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "quote \" backslash \\ newline \n end");
}

TEST_F(TraceTest, FlowEventsExportHexIdsAndPhases) {
  TraceSession::global().start();
  const std::uint64_t id = flow_hash("trace-1#7");
  {
    Span a("client.request");
    record_flow("client.request", "client", id, 's');
  }
  {
    Span b("serve.request");
    record_flow("serve.request", "serve", id, 't');
  }
  record_flow("serve.done", "serve", id, 'f');
  TraceSession::global().stop();

  const JsonValue root = parse_json(TraceSession::global().chrome_json());
  std::vector<std::string> phases;
  std::vector<std::string> ids;
  for (const auto& e : root.find("traceEvents")->array()) {
    const std::string& ph = e.find("ph")->str();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    phases.push_back(ph);
    // The arrow id is a hex string, not a JSON number: 64-bit ids would
    // lose precision as doubles.
    const auto* idv = e.find("id");
    ASSERT_NE(idv, nullptr);
    ASSERT_TRUE(idv->is_string());
    ids.push_back(idv->str());
    if (ph == "f") {
      ASSERT_NE(e.find("bp"), nullptr);
      EXPECT_EQ(e.find("bp")->str(), "e");
    } else {
      EXPECT_EQ(e.find("bp"), nullptr);
    }
  }
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(ids[0], ids[1]);
  EXPECT_EQ(ids[1], ids[2]);
  char expect[19];
  std::snprintf(expect, sizeof expect, "0x%llx",
                static_cast<unsigned long long>(id));
  EXPECT_EQ(ids[0], expect);
}

TEST_F(TraceTest, DisarmedOrZeroIdFlowsRecordNothing) {
  record_flow("never", "x", 123, 's');  // disarmed
  TraceSession::global().start();
  record_flow("no-flow", "x", 0, 's');  // id 0 means "no flow"
  TraceSession::global().stop();
  EXPECT_EQ(TraceSession::global().event_count(), 0u);
}

TEST_F(TraceTest, ScopedFlowSetsAndRestoresTheThreadFlow) {
  EXPECT_EQ(current_flow_id(), 0u);
  {
    ScopedFlow outer(11);
    EXPECT_EQ(current_flow_id(), 11u);
    {
      ScopedFlow inner(22);
      EXPECT_EQ(current_flow_id(), 22u);
    }
    EXPECT_EQ(current_flow_id(), 11u);
  }
  EXPECT_EQ(current_flow_id(), 0u);
  // And the flow is per-thread, not global.
  {
    ScopedFlow outer(33);
    std::uint64_t seen = 99;
    std::thread([&] { seen = current_flow_id(); }).join();
    EXPECT_EQ(seen, 0u);
  }
}

TEST_F(TraceTest, ExportCarriesAWallAnchorForCrossProcessMerge) {
  TraceSession::global().start();
  { Span a("anchored"); }
  TraceSession::global().stop();
  const JsonValue root = parse_json(TraceSession::global().chrome_json());
  const auto* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  const auto* anchor = other->find("wall_anchor_us");
  ASSERT_NE(anchor, nullptr);
  ASSERT_TRUE(anchor->is_number());
  // Epoch microseconds at trace ts 0: after 2020, before the heat death.
  EXPECT_GT(anchor->number(), 1.5e15);
}

TEST_F(TraceTest, FlowHashIsDeterministicAndNeverZero) {
  EXPECT_EQ(flow_hash("trace-a#1"), flow_hash("trace-a#1"));
  EXPECT_NE(flow_hash("trace-a#1"), flow_hash("trace-a#2"));
  EXPECT_NE(flow_hash(""), 0u);
}

// --- cross-process merge --------------------------------------------------

// A synthetic single-event dump as --trace-out writes it: monotonic ts,
// pid 0, and the wall anchor that lets merge rebase across processes.
std::string dump_json(double anchor_us, double ts_us, const char* event) {
  return std::string("{\"traceEvents\":[{\"name\":\"") + event +
         "\",\"ph\":\"X\",\"ts\":" + std::to_string(ts_us) +
         ",\"dur\":5,\"pid\":0,\"tid\":1}],\"otherData\":{"
         "\"wall_anchor_us\":" +
         std::to_string(anchor_us) + "}}";
}

TEST(TraceMerge, ThreeDumpsRebaseOntoTheEarliestAnchor) {
  // Three processes started 1 ms apart; the middle file started first, so
  // its anchor wins and its events keep their timestamps.
  const JsonValue cli = parse_json(dump_json(2'000'000'000'000.0, 10.0, "a"));
  const JsonValue daemon =
      parse_json(dump_json(1'999'999'999'000.0, 10.0, "b"));
  const JsonValue worker =
      parse_json(dump_json(2'000'000'001'000.0, 10.0, "c"));

  TraceMergeStats stats;
  const std::string merged = merge_trace_dumps(
      {{"cli.json", &cli}, {"daemon.json", &daemon}, {"worker.json", &worker}},
      &stats);
  EXPECT_EQ(stats.files, 3u);
  EXPECT_EQ(stats.events, 3u);

  const JsonValue root = parse_json(merged);
  const auto* other = root.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->find("wall_anchor_us")->number(),
                   1'999'999'999'000.0);
  EXPECT_EQ(other->find("merged_from")->number(), 3.0);

  // One pid per input file (1..3, input order), each with a process_name
  // metadata event, and every trace event rebased by its file's offset
  // from the earliest anchor.
  const auto& events = root.find("traceEvents")->array();
  ASSERT_EQ(events.size(), 6u);  // 3 metadata + 3 trace events
  double rebased[4] = {0, 0, 0, 0};
  std::map<long long, std::string> names;
  for (const auto& e : events) {
    const long long pid = static_cast<long long>(e.find("pid")->number());
    ASSERT_GE(pid, 1);
    ASSERT_LE(pid, 3);
    if (e.find("name")->str() == "process_name") {
      names[pid] = e.find("args")->find("name")->str();
    } else {
      rebased[pid] = e.find("ts")->number();
    }
  }
  EXPECT_EQ(names[1], "cli.json");
  EXPECT_EQ(names[2], "daemon.json");
  EXPECT_EQ(names[3], "worker.json");
  EXPECT_DOUBLE_EQ(rebased[1], 1010.0);  // anchor 1000 us after the earliest
  EXPECT_DOUBLE_EQ(rebased[2], 10.0);    // the earliest anchor: unshifted
  EXPECT_DOUBLE_EQ(rebased[3], 2010.0);
}

TEST(TraceMerge, SingleDumpIsRebasedAndLabelled) {
  const JsonValue only = parse_json(dump_json(2e12, 42.0, "solo"));
  TraceMergeStats stats;
  const JsonValue root =
      parse_json(merge_trace_dumps({{"/tmp/run/solo.json", &only}}, &stats));
  EXPECT_EQ(stats.events, 1u);
  EXPECT_EQ(root.find("otherData")->find("merged_from")->number(), 1.0);
  // Labels are reduced to file names for the Perfetto process list.
  bool labelled = false;
  for (const auto& e : root.find("traceEvents")->array()) {
    if (e.find("name")->str() == "process_name") {
      labelled = true;
      EXPECT_EQ(e.find("args")->find("name")->str(), "solo.json");
    }
  }
  EXPECT_TRUE(labelled);
}

TEST(TraceMerge, StructuralProblemsNameTheOffendingInput) {
  const JsonValue good = parse_json(dump_json(2e12, 1.0, "ok"));
  const JsonValue no_anchor =
      parse_json("{\"traceEvents\":[],\"otherData\":{}}");
  const JsonValue no_events = parse_json("{\"otherData\":{}}");

  const auto message_of = [](auto&& fn) -> std::string {
    try {
      fn();
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };

  std::string msg = message_of([&] {
    merge_trace_dumps({{"good.json", &good}, {"stale.json", &no_anchor}});
  });
  EXPECT_NE(msg.find("stale.json"), std::string::npos) << msg;
  EXPECT_NE(msg.find("wall_anchor_us"), std::string::npos) << msg;

  msg = message_of([&] { merge_trace_dumps({{"empty.json", &no_events}}); });
  EXPECT_NE(msg.find("empty.json"), std::string::npos) << msg;

  EXPECT_THROW(merge_trace_dumps({}), std::runtime_error);
}

}  // namespace
}  // namespace swsim::obs
