// Tracing: disarmed spans record nothing, armed spans export well-formed
// Chrome trace_event JSON, and scope nesting survives multi-threaded
// recording (each thread's spans nest by time containment on its own tid).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/trace.h"

namespace swsim::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceSession::global().stop();
    TraceSession::global().clear();
  }
  void TearDown() override {
    TraceSession::global().stop();
    TraceSession::global().clear();
  }
};

TEST_F(TraceTest, DisarmedSpansRecordNothing) {
  {
    Span a("outer");
    Span b("inner", "cat");
  }
  record_complete("late", "cat", 0.0);
  EXPECT_EQ(TraceSession::global().event_count(), 0u);
}

TEST_F(TraceTest, ArmedSpanBecomesCompleteEvent) {
  TraceSession::global().start();
  { Span a("solve", "engine"); }
  TraceSession::global().stop();
  ASSERT_EQ(TraceSession::global().event_count(), 1u);

  const JsonValue root = parse_json(TraceSession::global().chrome_json());
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Exactly one X event named "solve" (any M thread-name events aside).
  std::size_t complete = 0;
  for (const auto& e : events->array()) {
    if (e.find("ph")->str() != "X") continue;
    ++complete;
    EXPECT_EQ(e.find("name")->str(), "solve");
    EXPECT_EQ(e.find("cat")->str(), "engine");
    EXPECT_GE(e.find("ts")->number(), 0.0);
    EXPECT_GE(e.find("dur")->number(), 0.0);
  }
  EXPECT_EQ(complete, 1u);
}

TEST_F(TraceTest, SpansStartedBeforeStopAreKept) {
  TraceSession::global().start();
  {
    Span a("outlives-stop");
    TraceSession::global().stop();
  }  // the span was armed at construction; closing it must still record
  EXPECT_EQ(TraceSession::global().event_count(), 1u);
}

struct EventRec {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double tid = -1.0;
};

std::vector<EventRec> complete_events(const std::string& json) {
  std::vector<EventRec> out;
  const JsonValue root = parse_json(json);
  for (const auto& e : root.find("traceEvents")->array()) {
    if (e.find("ph")->str() != "X") continue;
    out.push_back({e.find("name")->str(), e.find("ts")->number(),
                   e.find("dur")->number(), e.find("tid")->number()});
  }
  return out;
}

TEST_F(TraceTest, NestingSurvivesAcrossThreads) {
  constexpr int kThreads = 4;
  TraceSession::global().start();
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([w] {
      set_thread_name("t" + std::to_string(w));
      Span outer("outer-" + std::to_string(w));
      Span inner("inner-" + std::to_string(w));
    });
  }
  for (auto& t : workers) t.join();
  TraceSession::global().stop();

  const auto events = complete_events(TraceSession::global().chrome_json());
  ASSERT_EQ(events.size(), 2u * kThreads);

  // Group by tid: each thread buffer must hold exactly its own pair, with
  // the inner span contained in the outer's [ts, ts+dur) window — that is
  // what makes the viewer render them as nested.
  std::map<double, std::vector<EventRec>> by_tid;
  for (const auto& e : events) by_tid[e.tid].push_back(e);
  ASSERT_EQ(by_tid.size(), static_cast<std::size_t>(kThreads));
  for (auto& [tid, list] : by_tid) {
    ASSERT_EQ(list.size(), 2u);
    const auto outer = std::find_if(list.begin(), list.end(), [](auto& e) {
      return e.name.rfind("outer", 0) == 0;
    });
    const auto inner = std::find_if(list.begin(), list.end(), [](auto& e) {
      return e.name.rfind("inner", 0) == 0;
    });
    ASSERT_NE(outer, list.end());
    ASSERT_NE(inner, list.end());
    // Same worker: suffixes match.
    EXPECT_EQ(outer->name.substr(6), inner->name.substr(6));
    EXPECT_GE(inner->ts, outer->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + 1e-6);
  }

  // Thread names exported as metadata events.
  const JsonValue root = parse_json(TraceSession::global().chrome_json());
  std::size_t named = 0;
  for (const auto& e : root.find("traceEvents")->array()) {
    if (e.find("ph")->str() != "M") continue;
    EXPECT_EQ(e.find("name")->str(), "thread_name");
    const auto* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const auto* name = args->find("name");
    ASSERT_NE(name, nullptr);
    if (name->str().rfind("t", 0) == 0) ++named;
  }
  EXPECT_EQ(named, static_cast<std::size_t>(kThreads));
}

TEST_F(TraceTest, RecordCompleteBackfillsAnInterval) {
  TraceSession::global().start();
  const double t0 = 1.0;
  record_complete("block", "mag", t0);
  TraceSession::global().stop();
  const auto events = complete_events(TraceSession::global().chrome_json());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "block");
  EXPECT_DOUBLE_EQ(events[0].ts, t0);
  EXPECT_GE(events[0].dur, 0.0);
}

TEST_F(TraceTest, ClearDropsEventsButKeepsThreadRegistration) {
  TraceSession::global().start();
  { Span a("before-clear"); }
  TraceSession::global().clear();
  EXPECT_EQ(TraceSession::global().event_count(), 0u);
  { Span a("after-clear"); }
  TraceSession::global().stop();
  EXPECT_EQ(TraceSession::global().event_count(), 1u);
}

TEST_F(TraceTest, SpanNamesAreJsonEscaped) {
  TraceSession::global().start();
  { Span a(std::string("quote \" backslash \\ newline \n end"), "core"); }
  TraceSession::global().stop();
  const auto events = complete_events(TraceSession::global().chrome_json());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "quote \" backslash \\ newline \n end");
}

}  // namespace
}  // namespace swsim::obs
