// Error taxonomy: Status construction, context trails, exception carrying,
// retry policy, and the structured failure report.
#include "robust/status.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "robust/report.h"

namespace swsim::robust {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.str(), "");
  EXPECT_TRUE(Status::ok().is_ok());
}

TEST(Status, ErrorCarriesCodeMessageContext) {
  const Status s = Status::error(StatusCode::kNumericalDivergence,
                                 "NaN at cell 214", "row 3");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNumericalDivergence);
  EXPECT_EQ(s.message(), "NaN at cell 214");
  EXPECT_EQ(s.context(), "row 3");
  EXPECT_EQ(s.str(), "numerical-divergence: NaN at cell 214 [row 3]");
}

TEST(Status, WithContextPrependsFrames) {
  const Status inner = Status::error(StatusCode::kTimeout, "deadline");
  const Status mid = inner.with_context("solve");
  const Status outer = mid.with_context("gate MAJ3");
  EXPECT_EQ(mid.context(), "solve");
  EXPECT_EQ(outer.context(), "gate MAJ3 <- solve");
  // The original is untouched (value semantics).
  EXPECT_EQ(inner.context(), "");
}

TEST(Status, ToStringCoversEveryCode) {
  EXPECT_EQ(to_string(StatusCode::kOk), "ok");
  EXPECT_EQ(to_string(StatusCode::kInvalidConfig), "invalid-config");
  EXPECT_EQ(to_string(StatusCode::kNumericalDivergence),
            "numerical-divergence");
  EXPECT_EQ(to_string(StatusCode::kTimeout), "timeout");
  EXPECT_EQ(to_string(StatusCode::kCancelled), "cancelled");
  EXPECT_EQ(to_string(StatusCode::kCacheCorrupt), "cache-corrupt");
  EXPECT_EQ(to_string(StatusCode::kIoError), "io-error");
  EXPECT_EQ(to_string(StatusCode::kQuarantined), "quarantined");
  EXPECT_EQ(to_string(StatusCode::kInternal), "internal");
  EXPECT_EQ(to_string(StatusCode::kOverloaded), "overloaded");
  EXPECT_EQ(to_string(StatusCode::kDraining), "draining");
  EXPECT_EQ(to_string(StatusCode::kDeadlineExceeded), "deadline-exceeded");
}

TEST(Status, RetryPolicy) {
  // Transient numerical trouble is worth another attempt.
  EXPECT_TRUE(is_retryable(StatusCode::kNumericalDivergence));
  EXPECT_TRUE(is_retryable(StatusCode::kCacheCorrupt));
  EXPECT_TRUE(is_retryable(StatusCode::kInternal));
  // The serve admission rejections tell the CLIENT to come back later.
  EXPECT_TRUE(is_retryable(StatusCode::kOverloaded));
  EXPECT_TRUE(is_retryable(StatusCode::kDraining));
  // A shed deadline is the caller's budget, not the work: retry with more.
  EXPECT_TRUE(is_retryable(StatusCode::kDeadlineExceeded));
  // Timeouts must NOT retry: the timed-out closure may still be running.
  EXPECT_FALSE(is_retryable(StatusCode::kTimeout));
  EXPECT_FALSE(is_retryable(StatusCode::kCancelled));
  EXPECT_FALSE(is_retryable(StatusCode::kInvalidConfig));
  EXPECT_FALSE(is_retryable(StatusCode::kQuarantined));
  EXPECT_FALSE(is_retryable(StatusCode::kOk));
}

TEST(SolveError, WhatMatchesStatusStr) {
  const Status s =
      Status::error(StatusCode::kCacheCorrupt, "checksum mismatch", "key 7");
  const SolveError e(s);
  EXPECT_EQ(std::string(e.what()), s.str());
  EXPECT_EQ(e.status().code(), StatusCode::kCacheCorrupt);
}

TEST(SolveError, IsARuntimeError) {
  // Legacy catch sites catch std::runtime_error; SolveError must land there.
  try {
    throw SolveError(Status::error(StatusCode::kTimeout, "late"));
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("timeout"), std::string::npos);
    return;
  }
  FAIL() << "SolveError not caught as std::runtime_error";
}

TEST(StatusOfCurrentException, ClassifiesSolveError) {
  Status got;
  try {
    throw SolveError(Status::error(StatusCode::kNumericalDivergence, "boom"));
  } catch (...) {
    got = status_of_current_exception();
  }
  EXPECT_EQ(got.code(), StatusCode::kNumericalDivergence);
  EXPECT_EQ(got.message(), "boom");
}

TEST(StatusOfCurrentException, MapsForeignExceptionsToInternal) {
  Status got;
  try {
    throw std::logic_error("unexpected");
  } catch (...) {
    got = status_of_current_exception();
  }
  EXPECT_EQ(got.code(), StatusCode::kInternal);
  EXPECT_EQ(got.message(), "unexpected");

  try {
    throw 42;  // not even a std::exception
  } catch (...) {
    got = status_of_current_exception();
  }
  EXPECT_EQ(got.code(), StatusCode::kInternal);
  EXPECT_EQ(got.message(), "unknown exception");
}

TEST(FailureReport, CollectsAndMerges) {
  FailureReport a;
  EXPECT_TRUE(a.empty());
  a.add({"job 1 / row 2",
         Status::error(StatusCode::kTimeout, "deadline"), 1, false});
  FailureReport b;
  b.add({"job 3 / trials 16",
         Status::error(StatusCode::kNumericalDivergence, "NaN"), 2, true});
  a.merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.failures()[0].job, "job 1 / row 2");
  EXPECT_EQ(a.failures()[1].attempts, 2u);
  EXPECT_TRUE(a.failures()[1].quarantined);
}

TEST(FailureReport, RendersCsvAndTable) {
  FailureReport r;
  r.add({"job 1", Status::error(StatusCode::kInternal, "thrown"), 1, false});
  const auto header = FailureReport::csv_header();
  ASSERT_EQ(header.size(), 9u);
  EXPECT_EQ(header[0], "job");
  EXPECT_EQ(header[5], "time");
  EXPECT_EQ(header[6], "t_us");
  EXPECT_EQ(header[7], "job_key");
  EXPECT_EQ(header[8], "wall_s");
  const auto rows = r.csv_rows();
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), header.size());
  EXPECT_EQ(rows[0][0], "job 1");
  EXPECT_EQ(rows[0][1], "internal");
  // No timestamp / key recorded: placeholder cells, zero t_us.
  EXPECT_EQ(rows[0][5], "-");
  EXPECT_EQ(rows[0][6], "0");
  EXPECT_EQ(rows[0][7], "-");
  const std::string table = r.str();
  EXPECT_NE(table.find("failure report (1 job)"), std::string::npos);
  EXPECT_NE(table.find("internal"), std::string::npos);
}

TEST(FailureReport, RendersWallClockStampAndJobKey) {
  FailureReport r;
  JobFailure f;
  f.job = "job 2 / row 1";
  f.status = Status::error(StatusCode::kTimeout, "deadline");
  f.t_us = 1754450000123456ULL;
  f.job_key = 0x9e3779b97f4a7c15ULL;
  f.wall_seconds = 1.5;
  r.add(f);
  const auto rows = r.csv_rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][6], "1754450000123456");
  EXPECT_EQ(rows[0][7], "0x9e3779b97f4a7c15");
  EXPECT_EQ(rows[0][8], "1.500");
  // ISO-8601 UTC rendering of the same microsecond stamp.
  EXPECT_EQ(rows[0][5], "2025-08-06T03:13:20.123456Z");
}

}  // namespace
}  // namespace swsim::robust
