// RunProfile: JSON round-trip fidelity, NaN/inf guards (the dump must stay
// valid JSON no matter what the rates computed to), schema rejection, and
// collect() reading the live registry without registering metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace swsim::obs {
namespace {

RunProfile sample_profile() {
  RunProfile p;
  p.wall_seconds = 2.5;
  p.cells = 4096;
  p.llg_steps = 120000;
  p.field_evals = 480000;
  p.steps_per_second = 48000.0;
  p.cell_steps_per_second = 4096.0 * 48000.0;
  p.term_share["exchange"] = 0.25;
  p.term_share["demag"] = 0.6;
  p.term_share["zeeman"] = 0.15;
  p.cache_hits = 7;
  p.cache_misses = 3;
  p.cache_hit_rate = 0.7;
  p.pool_threads = 4;
  p.pool_busy_us = 9000000;
  p.pool_utilization = 0.9;
  p.jobs_done = 9;
  p.jobs_failed = 1;
  p.jobs_retried = 2;
  p.peak_rss_bytes = 128 * 1024 * 1024;
  return p;
}

TEST(ObsProfile, JsonRoundTripPreservesEveryField) {
  const RunProfile p = sample_profile();
  const RunProfile q = RunProfile::from_json(parse_json(p.to_json()));

  EXPECT_DOUBLE_EQ(q.wall_seconds, p.wall_seconds);
  EXPECT_EQ(q.cells, p.cells);
  EXPECT_EQ(q.llg_steps, p.llg_steps);
  EXPECT_EQ(q.field_evals, p.field_evals);
  EXPECT_DOUBLE_EQ(q.steps_per_second, p.steps_per_second);
  EXPECT_DOUBLE_EQ(q.cell_steps_per_second, p.cell_steps_per_second);
  ASSERT_EQ(q.term_share.size(), 3u);
  EXPECT_DOUBLE_EQ(q.term_share.at("exchange"), 0.25);
  EXPECT_DOUBLE_EQ(q.term_share.at("demag"), 0.6);
  EXPECT_DOUBLE_EQ(q.term_share.at("zeeman"), 0.15);
  EXPECT_EQ(q.cache_hits, 7u);
  EXPECT_EQ(q.cache_misses, 3u);
  EXPECT_DOUBLE_EQ(q.cache_hit_rate, 0.7);
  EXPECT_EQ(q.pool_threads, 4u);
  EXPECT_EQ(q.pool_busy_us, 9000000u);
  EXPECT_DOUBLE_EQ(q.pool_utilization, 0.9);
  EXPECT_EQ(q.jobs_done, 9u);
  EXPECT_EQ(q.jobs_failed, 1u);
  EXPECT_EQ(q.jobs_retried, 2u);
  EXPECT_EQ(q.peak_rss_bytes, 128u * 1024 * 1024);
}

TEST(ObsProfile, NonFiniteRatesSerializeAsZeroAndStayValidJson) {
  RunProfile p = sample_profile();
  p.steps_per_second = std::numeric_limits<double>::quiet_NaN();
  p.cell_steps_per_second = std::numeric_limits<double>::infinity();
  p.pool_utilization = -std::numeric_limits<double>::infinity();
  p.term_share["demag"] = std::numeric_limits<double>::quiet_NaN();

  // NaN/inf are not JSON tokens — the writer must clamp, and the result
  // must still parse.
  const std::string doc = p.to_json();
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
  const RunProfile q = RunProfile::from_json(parse_json(doc));
  EXPECT_DOUBLE_EQ(q.steps_per_second, 0.0);
  EXPECT_DOUBLE_EQ(q.cell_steps_per_second, 0.0);
  EXPECT_DOUBLE_EQ(q.pool_utilization, 0.0);
  EXPECT_DOUBLE_EQ(q.term_share.at("demag"), 0.0);
}

TEST(ObsProfile, FromJsonRejectsWrongSchemaAndShape) {
  EXPECT_THROW(RunProfile::from_json(parse_json("[1,2]")), std::runtime_error);
  EXPECT_THROW(RunProfile::from_json(parse_json("{}")), std::runtime_error);
  EXPECT_THROW(
      RunProfile::from_json(parse_json("{\"schema\": \"swsim.profile/999\"}")),
      std::runtime_error);
  // Right schema but a missing section still names the problem.
  try {
    RunProfile::from_json(
        parse_json("{\"schema\": \"swsim.profile/1\", \"wall_seconds\": 1}"));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("missing"), std::string::npos);
  }
}

TEST(ObsProfile, CollectReadsRegistryWithoutRegisteringMetrics) {
  MetricsRegistry::arm();
  auto& reg = MetricsRegistry::global();
  reg.reset();
  reg.counter("mag.llg.steps").add(1000);
  reg.counter("mag.term.exchange.us").add(300);
  reg.counter("mag.term.demag.us").add(700);
  reg.counter("cache.hits").add(3);
  reg.counter("cache.misses").add(1);
  reg.gauge("pool.threads").set(2);
  reg.counter("pool.busy_us").add(4000000);

  const std::size_t counters_before = reg.counters_snapshot().size();
  const RunProfile p = RunProfile::collect(/*wall_seconds=*/2.0,
                                           /*cells=*/100);
  MetricsRegistry::disarm();

  EXPECT_EQ(p.llg_steps, 1000u);
  EXPECT_DOUBLE_EQ(p.steps_per_second, 500.0);
  EXPECT_DOUBLE_EQ(p.cell_steps_per_second, 50000.0);
  ASSERT_EQ(p.term_share.size(), 2u);
  EXPECT_DOUBLE_EQ(p.term_share.at("exchange"), 0.3);
  EXPECT_DOUBLE_EQ(p.term_share.at("demag"), 0.7);
  EXPECT_DOUBLE_EQ(p.cache_hit_rate, 0.75);
  EXPECT_EQ(p.pool_threads, 2u);
  // busy 4 s over 2 threads * 2 s wall = fully utilized.
  EXPECT_DOUBLE_EQ(p.pool_utilization, 1.0);
  EXPECT_GT(p.peak_rss_bytes, 0u);
  // Profiling is a read-only pass: it must not have registered the engine
  // counters it looked for but did not find.
  EXPECT_EQ(reg.counters_snapshot().size(), counters_before);
}

TEST(ObsProfile, ZeroWallGuardsDerivedRates) {
  MetricsRegistry::arm();
  auto& reg = MetricsRegistry::global();
  reg.reset();
  reg.counter("mag.llg.steps").add(1000);
  const RunProfile p = RunProfile::collect(/*wall_seconds=*/0.0);
  MetricsRegistry::disarm();
  EXPECT_DOUBLE_EQ(p.steps_per_second, 0.0);
  EXPECT_DOUBLE_EQ(p.cell_steps_per_second, 0.0);
  EXPECT_DOUBLE_EQ(p.pool_utilization, 0.0);
}

}  // namespace
}  // namespace swsim::obs
