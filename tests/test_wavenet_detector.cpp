#include "wavenet/detector.h"

#include <gtest/gtest.h>

#include <complex>

#include "math/constants.h"

namespace swsim::wavenet {
namespace {

using swsim::math::kPi;

std::complex<double> phasor(double amp, double phase) {
  return amp * std::complex<double>{std::cos(phase), std::sin(phase)};
}

TEST(PhaseDetector, Phase0IsLogic0) {
  const PhaseDetector det;
  EXPECT_FALSE(det.detect(phasor(1.0, 0.0)).logic);
}

TEST(PhaseDetector, PhasePiIsLogic1) {
  const PhaseDetector det;
  EXPECT_TRUE(det.detect(phasor(1.0, kPi)).logic);
}

TEST(PhaseDetector, DecisionBoundaryAtHalfPi) {
  const PhaseDetector det;
  EXPECT_FALSE(det.detect(phasor(1.0, kPi / 2.0 - 0.05)).logic);
  EXPECT_TRUE(det.detect(phasor(1.0, kPi / 2.0 + 0.05)).logic);
  EXPECT_FALSE(det.detect(phasor(1.0, -kPi / 2.0 + 0.05)).logic);
  EXPECT_TRUE(det.detect(phasor(1.0, -kPi / 2.0 - 0.05)).logic);
}

TEST(PhaseDetector, MarginLargestOnReference) {
  const PhaseDetector det;
  const double m0 = det.detect(phasor(1.0, 0.0)).margin;
  const double m_near = det.detect(phasor(1.0, kPi / 2.0 - 0.01)).margin;
  EXPECT_NEAR(m0, kPi / 2.0, 1e-12);
  EXPECT_LT(m_near, 0.02);
}

TEST(PhaseDetector, InvertFlips) {
  const PhaseDetector det(0.0, /*invert=*/true);
  EXPECT_TRUE(det.detect(phasor(1.0, 0.0)).logic);
  EXPECT_FALSE(det.detect(phasor(1.0, kPi)).logic);
}

TEST(PhaseDetector, CustomReference) {
  const PhaseDetector det(kPi / 2.0);
  EXPECT_FALSE(det.detect(phasor(1.0, kPi / 2.0)).logic);
  EXPECT_TRUE(det.detect(phasor(1.0, -kPi / 2.0)).logic);
}

TEST(PhaseDetector, ReportsAmplitudeAndPhase) {
  const PhaseDetector det;
  const Detection d = det.detect(phasor(0.7, 1.1));
  EXPECT_NEAR(d.amplitude, 0.7, 1e-12);
  EXPECT_NEAR(d.phase, 1.1, 1e-12);
}

TEST(PhaseDetector, ZeroAmplitudeDefaultsToLogic0) {
  const PhaseDetector det;
  const Detection d = det.detect({0.0, 0.0});
  EXPECT_FALSE(d.logic);
  EXPECT_DOUBLE_EQ(d.amplitude, 0.0);
}

TEST(ThresholdDetector, PaperConvention) {
  // Table II: amplitude ~1 (in-phase inputs) reads logic 0; amplitude ~0
  // (antiphase) reads logic 1, with threshold 0.5.
  const ThresholdDetector det(0.5);
  EXPECT_FALSE(det.detect(phasor(0.99, 0.0), 1.0).logic);
  EXPECT_TRUE(det.detect(phasor(0.01, 0.0), 1.0).logic);
}

TEST(ThresholdDetector, ReferenceNormalization) {
  const ThresholdDetector det(0.5);
  // Amplitude 3 against reference 10 -> normalized 0.3 -> logic 1.
  EXPECT_TRUE(det.detect(phasor(3.0, 0.0), 10.0).logic);
  // Amplitude 8 against reference 10 -> 0.8 -> logic 0.
  EXPECT_FALSE(det.detect(phasor(8.0, 0.0), 10.0).logic);
}

TEST(ThresholdDetector, XnorInversion) {
  const ThresholdDetector det(0.5, /*invert=*/true);
  EXPECT_TRUE(det.detect(phasor(0.99, 0.0), 1.0).logic);
  EXPECT_FALSE(det.detect(phasor(0.01, 0.0), 1.0).logic);
}

TEST(ThresholdDetector, MarginIsDistanceToThreshold) {
  const ThresholdDetector det(0.5);
  EXPECT_NEAR(det.detect(phasor(0.9, 0.0), 1.0).margin, 0.4, 1e-12);
  EXPECT_NEAR(det.detect(phasor(0.2, 0.0), 1.0).margin, 0.3, 1e-12);
}

TEST(ThresholdDetector, PhaseIndependent) {
  const ThresholdDetector det(0.5);
  EXPECT_EQ(det.detect(phasor(0.8, 0.0), 1.0).logic,
            det.detect(phasor(0.8, 2.5), 1.0).logic);
}

TEST(ThresholdDetector, Validation) {
  EXPECT_THROW(ThresholdDetector(0.0), std::invalid_argument);
  const ThresholdDetector det(0.5);
  EXPECT_THROW(det.detect(phasor(1.0, 0.0), 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::wavenet
