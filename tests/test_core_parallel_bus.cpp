#include "core/parallel_bus.h"

#include <gtest/gtest.h>

#include "core/logic.h"
#include "math/constants.h"

namespace swsim::core {
namespace {

using swsim::math::nm;

ParallelBusConfig bus_config(std::size_t channels) {
  ParallelBusConfig cfg;
  cfg.channels = channels;
  // Narrow the waveguide so higher channels stay above the width limit,
  // and use a compact geometry: high channels ride at short wavelengths
  // whose attenuation lengths shrink, so long paths would unbalance the
  // arm-vs-tap weights (see HighChannelsFailOnLongDevices below).
  cfg.params.width = nm(12);
  cfg.params.n_arm = 2;
  cfg.params.n_axis_half = 1;
  cfg.params.n_feed = 1;
  return cfg;
}

TEST(ParallelMajBus, RejectsBadConfigs) {
  EXPECT_THROW(ParallelMajBus(bus_config(0)), std::invalid_argument);

  ParallelBusConfig frac = bus_config(2);
  frac.params.n_arm = 2.5;  // half-integer multiples break channel synthesis
  EXPECT_THROW(ParallelMajBus{frac}, std::invalid_argument);

  ParallelBusConfig wide = bus_config(8);
  wide.params.width = nm(50);  // channel 8 wavelength 6.9 nm < width
  EXPECT_THROW(ParallelMajBus{wide}, std::invalid_argument);
}

TEST(ParallelMajBus, ChannelLaddering) {
  ParallelMajBus bus(bus_config(4));
  EXPECT_EQ(bus.channels(), 4u);
  EXPECT_NEAR(bus.channel_wavelength(0), nm(55), 1e-12);
  EXPECT_NEAR(bus.channel_wavelength(1), nm(27.5), 1e-12);
  EXPECT_NEAR(bus.channel_wavelength(3), nm(13.75), 1e-12);
  // Shorter waves ride higher on the dispersion.
  EXPECT_GT(bus.channel_frequency(1), bus.channel_frequency(0));
  EXPECT_GT(bus.channel_frequency(3), bus.channel_frequency(2));
}

TEST(ParallelMajBus, FourChannelsComputeIndependentMajorities) {
  ParallelMajBus bus(bus_config(4));
  const std::vector<std::vector<bool>> words{
      {false, false, false},
      {true, false, true},
      {false, true, false},
      {true, true, true},
  };
  const BusResult r = bus.evaluate(words);
  ASSERT_EQ(r.channels.size(), 4u);
  EXPECT_TRUE(r.all_correct);
  EXPECT_FALSE(r.channels[0].outputs.o1.logic);
  EXPECT_TRUE(r.channels[1].outputs.o1.logic);
  EXPECT_FALSE(r.channels[2].outputs.o1.logic);
  EXPECT_TRUE(r.channels[3].outputs.o1.logic);
}

TEST(ParallelMajBus, ExhaustivePerChannelTruthTables) {
  ParallelMajBus bus(bus_config(3));
  for (const auto& p : all_input_patterns(3)) {
    // Drive every channel with the same pattern; all must agree with MAJ3.
    const std::vector<std::vector<bool>> words(3, p);
    const BusResult r = bus.evaluate(words);
    EXPECT_TRUE(r.all_correct) << p[0] << p[1] << p[2];
    for (const auto& ch : r.channels) {
      EXPECT_EQ(ch.outputs.o1.logic, maj3(p[0], p[1], p[2]));
      EXPECT_EQ(ch.outputs.o2.logic, ch.outputs.o1.logic);  // FO2 per channel
    }
  }
}

TEST(ParallelMajBus, HighChannelsFailOnLongDevices) {
  // Physical channel-count limit: on the full paper-scale geometry the
  // third channel (lambda ~ 18 nm, f ~ 100 GHz) attenuates so fast that
  // the arm and tap arrival weights unbalance and narrow votes misread.
  ParallelBusConfig cfg;
  cfg.channels = 3;
  cfg.params.width = nm(12);  // paper multiples kept (long paths)
  ParallelMajBus bus(cfg);
  const std::vector<bool> narrow{true, true, false};  // minority on the tap
  const std::vector<std::vector<bool>> words(3, narrow);
  const BusResult r = bus.evaluate(words);
  EXPECT_TRUE(r.channels[0].outputs.o1.logic);   // base channel fine
  EXPECT_FALSE(r.all_correct);                   // a high channel breaks
}

TEST(ParallelMajBus, EvaluateChecksShape) {
  ParallelMajBus bus(bus_config(2));
  EXPECT_THROW(bus.evaluate({{true, false, true}}), std::invalid_argument);
  EXPECT_THROW(bus.evaluate({{true, false}, {true, false, true}}),
               std::invalid_argument);
}

TEST(ParallelMajBus, ToneAccounting) {
  ParallelMajBus bus(bus_config(4));
  EXPECT_EQ(bus.excitation_tones(), 12);
}

TEST(ParallelMajBus, ThroughputScalesWithoutArea) {
  // The bus evaluates `channels` majorities on ONE structure; check the
  // per-bit energy advantage claim of ref. [9]: the waveguide area is
  // shared, only the tones scale.
  ParallelMajBus bus1(bus_config(1));
  ParallelMajBus bus4(bus_config(4));
  EXPECT_EQ(bus4.excitation_tones(), 4 * bus1.excitation_tones());
  // Same geometry -> same layout footprint (by construction).
  SUCCEED();
}

}  // namespace
}  // namespace swsim::core
