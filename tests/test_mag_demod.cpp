// Online lock-in demodulation: the per-window math against the offline
// detector (math/lockin.h), tumbling-window bookkeeping, and the bit-exact
// checkpoint/restore contract the divergence-recovery rewind relies on.
#include "mag/demod.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "math/constants.h"
#include "math/lockin.h"

namespace swsim::mag {
namespace {

constexpr double kF0 = 2.5e9;
constexpr std::size_t kPerPeriod = 16;
constexpr double kDt = 1.0 / (kPerPeriod * kF0);

// x(t) = A cos(2 pi f0 t + p), sampled on the demodulator's grid.
std::vector<double> tone(std::size_t n, double amplitude, double phase) {
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * kDt;
    x[i] = amplitude * std::cos(math::kTwoPi * kF0 * t + phase);
  }
  return x;
}

// A deterministic non-stationary signal (drifting tone + second harmonic)
// so checkpoint tests exercise windows whose values actually differ.
double wiggly(std::size_t i) {
  const double t = static_cast<double>(i) * kDt;
  return (1.0 + 0.01 * static_cast<double>(i)) *
             std::cos(math::kTwoPi * kF0 * t + 0.3) +
         0.2 * std::cos(2.0 * math::kTwoPi * kF0 * t);
}

TEST(LockinDemodulator, CtorValidatesArguments) {
  EXPECT_THROW(LockinDemodulator(0.0, 16), std::invalid_argument);
  EXPECT_THROW(LockinDemodulator(-1e9, 16), std::invalid_argument);
  EXPECT_THROW(LockinDemodulator(kF0, 1), std::invalid_argument);
  EXPECT_NO_THROW(LockinDemodulator(kF0, 2));
}

TEST(LockinDemodulator, PureToneReproducesAmplitudeAndPhase) {
  // A 2-period window over a pure tone: every window must report the
  // tone's amplitude and phase (cos convention, like the offline lockin).
  const double amplitude = 0.37;
  const double phase = 0.8;
  LockinDemodulator demod(kF0, 2 * kPerPeriod);
  const auto x = tone(6 * kPerPeriod, amplitude, phase);
  for (std::size_t i = 0; i < x.size(); ++i) {
    demod.add_sample(static_cast<double>(i) * kDt, x[i]);
  }
  ASSERT_EQ(demod.window_count(), 3u);
  for (std::size_t w = 0; w < 3; ++w) {
    EXPECT_NEAR(demod.amplitude()[w], amplitude, 1e-12) << "window " << w;
    EXPECT_NEAR(demod.phase()[w], phase, 1e-12) << "window " << w;
  }
}

TEST(LockinDemodulator, FirstWindowMatchesOfflineLockin) {
  // The incremental accumulation over one whole-period window must agree
  // with the offline single-bin DFT on the identical samples.
  LockinDemodulator demod(kF0, 2 * kPerPeriod);
  std::vector<double> x(2 * kPerPeriod);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = wiggly(i);
    demod.add_sample(static_cast<double>(i) * kDt, x[i]);
  }
  ASSERT_EQ(demod.window_count(), 1u);
  const auto offline = math::lockin(x, kDt, kF0, /*t0=*/0.0);
  EXPECT_NEAR(demod.amplitude()[0], offline.amplitude, 1e-12);
  EXPECT_NEAR(demod.phase()[0], offline.phase, 1e-12);
}

TEST(LockinDemodulator, WindowsTumbleOnTheExactSample) {
  LockinDemodulator demod(kF0, 4);
  std::size_t completions = 0;
  for (std::size_t i = 0; i < 10; ++i) {
    const double t = static_cast<double>(i) * kDt;
    const bool completed = demod.add_sample(t, wiggly(i));
    EXPECT_EQ(completed, (i + 1) % 4 == 0) << "sample " << i;
    if (completed) {
      ++completions;
      // times() holds the timestamp of each window's last sample.
      EXPECT_DOUBLE_EQ(demod.times().back(), t);
    }
  }
  EXPECT_EQ(completions, 2u);
  EXPECT_EQ(demod.window_count(), 2u);
}

TEST(LockinDemodulator, ClearDropsEverything) {
  LockinDemodulator demod(kF0, 4);
  for (std::size_t i = 0; i < 6; ++i) {
    demod.add_sample(static_cast<double>(i) * kDt, wiggly(i));
  }
  demod.clear();
  EXPECT_EQ(demod.window_count(), 0u);
  const auto cp = demod.checkpoint();
  EXPECT_EQ(cp.in_window, 0u);
  EXPECT_EQ(cp.c, 0.0);
  EXPECT_EQ(cp.s, 0.0);
}

TEST(LockinDemodulator, CheckpointRestoreReplayIsBitExact) {
  // The rewind contract: checkpoint mid-window (partial I/Q accumulators
  // live), diverge onto garbage samples past more window boundaries,
  // restore, replay the true stream — every envelope double must be
  // bit-identical to a straight-through run.
  const std::size_t kWindow = 8;
  const std::size_t kSplit = 21;  // mid-window: 21 = 2*8 + 5
  const std::size_t kTotal = 43;

  LockinDemodulator straight(kF0, kWindow);
  for (std::size_t i = 0; i < kTotal; ++i) {
    straight.add_sample(static_cast<double>(i) * kDt, wiggly(i));
  }

  LockinDemodulator rewound(kF0, kWindow);
  for (std::size_t i = 0; i < kSplit; ++i) {
    rewound.add_sample(static_cast<double>(i) * kDt, wiggly(i));
  }
  const auto cp = rewound.checkpoint();
  EXPECT_EQ(cp.windows, 2u);
  EXPECT_EQ(cp.in_window, 5u);
  for (std::size_t i = kSplit; i < kTotal; ++i) {
    rewound.add_sample(static_cast<double>(i) * kDt, 99.0);  // the bad branch
  }
  rewound.restore(cp);
  EXPECT_EQ(rewound.window_count(), 2u);
  for (std::size_t i = kSplit; i < kTotal; ++i) {
    rewound.add_sample(static_cast<double>(i) * kDt, wiggly(i));
  }

  EXPECT_EQ(rewound.times(), straight.times());
  EXPECT_EQ(rewound.amplitude(), straight.amplitude());
  EXPECT_EQ(rewound.phase(), straight.phase());
}

TEST(LockinDemodulator, RestoreAheadOfRecordThrows) {
  LockinDemodulator demod(kF0, 4);
  for (std::size_t i = 0; i < 9; ++i) {
    demod.add_sample(static_cast<double>(i) * kDt, wiggly(i));
  }
  const auto cp = demod.checkpoint();  // windows = 2
  demod.clear();
  EXPECT_THROW(demod.restore(cp), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::mag
