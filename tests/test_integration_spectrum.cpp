// Frequency-domain integration: the micromagnetic solver's resonances land
// where the analytical dispersion says they should, as seen through the
// spectrum analyzer.
#include <gtest/gtest.h>

#include <memory>

#include "mag/simulation.h"
#include "mag/thermal_field.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "math/spectrum.h"
#include "wavenet/dispersion.h"

namespace swsim {
namespace {

using namespace swsim::math;
using mag::Material;

TEST(SpectrumIntegration, RingdownPeaksAtFmr) {
  // Kick a macrospin film and let it ring down: the power spectrum of
  // m_x(t) peaks at the FMR frequency of the dispersion model.
  Material mat = Material::fecob();
  mat.alpha = 0.004;
  mag::System sys(Grid(2, 2, 1, 5e-9, 5e-9, 1e-9), mat);
  mag::Simulation sim(std::move(sys));
  sim.add_standard_terms();

  // Initial tilt (the "kick").
  VectorField m(sim.system().grid(), normalized(Vec3{0.08, 0, 1.0}));
  sim.set_magnetization(m);

  const double dt_sample = ps(2);
  Mask all(sim.system().grid(), true);
  auto& probe = sim.add_probe("all", all, dt_sample);
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.25));
  sim.run(ns(4));

  const Spectrum s = power_spectrum(probe.mx(), dt_sample);
  const wavenet::Dispersion disp(mat, 1e-9);
  const double f_fmr = disp.frequency(0.0);
  EXPECT_NEAR(s.peak_frequency(), f_fmr, f_fmr * 0.08);
}

TEST(SpectrumIntegration, DrivenStripRespondsAtDriveFrequency) {
  Material mat = Material::fecob();
  const Grid g(48, 1, 1, 5e-9, 5e-9, 1e-9);
  mag::System sys(g, mat);
  mag::Simulation sim(std::move(sys));
  sim.add_standard_terms();

  const wavenet::Dispersion disp(mat, 1e-9);
  const double f = disp.frequency(wavenet::Dispersion::k_of_lambda(nm(50)));
  Mask antenna(g);
  antenna.set_at(2, 0, true);
  sim.add_term(std::make_unique<mag::AntennaField>(antenna, 4e3,
                                                   Vec3{1, 0, 0}, f, 0.0));
  Mask probe_region(g);
  probe_region.set_at(24, 0, true);
  const double dt_sample = 1.0 / (16.0 * f);
  auto& probe = sim.add_probe("mid", probe_region, dt_sample);
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.25));
  sim.run(ns(1.5));

  const Spectrum s = power_spectrum(probe.mx(), dt_sample);
  EXPECT_NEAR(s.peak_frequency(), f, f * 0.1);
  // The drive band dominates the sub-gap band (below the FMR floor no
  // propagating magnon exists; the slowly decaying turn-on transient
  // rings near the FMR itself, so that band is excluded).
  const wavenet::Dispersion d2(mat, 1e-9);
  const double f_fmr = d2.frequency(0.0);
  const double drive_band = s.band_power(0.8 * f, 1.2 * f);
  const double sub_gap = s.band_power(0.1e9, 0.7 * f_fmr);
  EXPECT_GT(drive_band, 5.0 * sub_gap);
}

TEST(SpectrumIntegration, ThermalBackgroundSitsAboveFmr) {
  // At finite temperature an undriven film shows a magnon background whose
  // spectral weight concentrates at/above the FMR gap — the physical
  // reason thermal noise attacks the gate exactly in its operating band.
  Material mat = Material::fecob();
  mat.alpha = 0.01;
  mag::System sys(Grid(4, 4, 1, 5e-9, 5e-9, 1e-9), mat);
  mag::Simulation sim(std::move(sys));
  sim.add_standard_terms();
  sim.add_term(std::make_unique<mag::ThermalField>(300.0, 9));
  Mask all(sim.system().grid(), true);
  const double dt_sample = ps(2);
  auto& probe = sim.add_probe("all", all, dt_sample);
  sim.set_stepper(mag::StepperKind::kHeun, ps(0.1));
  sim.run(ns(4));

  const Spectrum s = power_spectrum(probe.mx(), dt_sample);
  const wavenet::Dispersion disp(mat, 1e-9);
  const double f_fmr = disp.frequency(0.0);
  const double below_gap = s.band_power(0.1e9, 0.5 * f_fmr);
  const double magnon_band = s.band_power(0.8 * f_fmr, 3.0 * f_fmr);
  EXPECT_GT(magnon_band, below_gap);
}

}  // namespace
}  // namespace swsim
