// The engine's headline guarantee: for a fixed workload the results are
// bit-identical for every job count, cold or warm cache, and identical to
// the serial reference path.
#include "engine/batch_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/triangle_gate.h"
#include "core/validator.h"
#include "core/variability.h"
#include "engine/hash.h"

namespace swsim::engine {
namespace {

BatchRunner::GateFactory maj_factory() {
  core::TriangleGateConfig cfg;
  return [cfg] { return std::make_unique<core::TriangleMajGate>(cfg); };
}

BatchRunner::GateFactory xor_factory() {
  core::TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_xor();
  return [cfg] { return std::make_unique<core::TriangleXorGate>(cfg); };
}

std::uint64_t maj_key() {
  return hash_of(core::TriangleGateConfig{});
}

TEST(EngineDeterminism, TruthTableMatchesSerialForAnyJobCount) {
  const auto factory = maj_factory();
  auto serial_gate = factory();
  const std::string serial =
      core::format_report(core::validate_gate(*serial_gate));

  for (const std::size_t jobs : {1u, 2u, 8u}) {
    EngineConfig cfg;
    cfg.jobs = jobs;
    BatchRunner runner(cfg);
    const auto report = runner.run_truth_table(factory, maj_key());
    EXPECT_EQ(core::format_report(report), serial)
        << "jobs = " << jobs;
  }
}

TEST(EngineDeterminism, XorTruthTableMatchesSerial) {
  const auto factory = xor_factory();
  auto serial_gate = factory();
  const std::string serial =
      core::format_report(core::validate_gate(*serial_gate));

  EngineConfig cfg;
  cfg.jobs = 4;
  BatchRunner runner(cfg);
  core::TriangleGateConfig gate_cfg;
  gate_cfg.params = geom::TriangleGateParams::paper_xor();
  const auto report = runner.run_truth_table(factory, hash_of(gate_cfg));
  EXPECT_EQ(core::format_report(report), serial);
}

TEST(EngineDeterminism, WarmCacheRunIsIdenticalAndAllHits) {
  EngineConfig cfg;
  cfg.jobs = 4;
  BatchRunner runner(cfg);
  const auto factory = maj_factory();

  const auto cold = runner.run_truth_table(factory, maj_key());
  const auto after_cold = runner.stats();
  EXPECT_EQ(after_cold.cache.hits, 0u);
  EXPECT_EQ(after_cold.cache.misses, cold.rows.size());

  const auto warm = runner.run_truth_table(factory, maj_key());
  const auto after_warm = runner.stats();
  EXPECT_EQ(core::format_report(warm), core::format_report(cold));
  EXPECT_EQ(after_warm.cache.hits, warm.rows.size());  // 100% warm hits
  EXPECT_EQ(after_warm.jobs_executed, after_cold.jobs_executed);
}

TEST(EngineDeterminism, NoCacheModeStillDeterministic) {
  EngineConfig cfg;
  cfg.jobs = 4;
  cfg.use_cache = false;
  BatchRunner runner(cfg);
  const auto factory = maj_factory();
  const auto a = runner.run_truth_table(factory, maj_key());
  const auto b = runner.run_truth_table(factory, maj_key());
  EXPECT_EQ(core::format_report(a), core::format_report(b));
  EXPECT_EQ(runner.stats().cache.hits, 0u);
  EXPECT_EQ(runner.stats().cache.misses, 0u);
}

TEST(EngineDeterminism, PrepareRunsBeforeEveryRowJob) {
  auto prepared = std::make_shared<std::atomic<bool>>(false);
  auto violations = std::make_shared<std::atomic<int>>(0);

  core::TriangleGateConfig gate_cfg;
  const BatchRunner::GateFactory factory = [gate_cfg, prepared, violations] {
    if (!prepared->load()) ++(*violations);
    return std::make_unique<core::TriangleMajGate>(gate_cfg);
  };

  EngineConfig cfg;
  cfg.jobs = 4;
  BatchRunner runner(cfg);
  const auto report = runner.run_truth_table(
      factory, maj_key(), [prepared] { prepared->store(true); });
  EXPECT_TRUE(report.all_pass);
  // The probe instance is constructed before the DAG runs and legitimately
  // sees prepared == false; every row job runs after the prepare job, so
  // exactly one "violation" (the probe) is expected.
  EXPECT_EQ(violations->load(), 1);
}

TEST(EngineDeterminism, YieldIdenticalForAnyJobCount) {
  core::TriangleGateConfig gate_cfg;
  const BatchRunner::TriangleFactory factory = [gate_cfg] {
    return std::make_unique<core::TriangleMajGate>(gate_cfg);
  };
  core::VariabilityModel model;
  model.sigma_phase = 0.35;
  model.sigma_amplitude = 0.08;
  model.seed = 11;

  core::YieldReport ref;
  bool have_ref = false;
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    EngineConfig cfg;
    cfg.jobs = jobs;
    BatchRunner runner(cfg);
    const auto r = runner.run_yield(factory, model, 100);
    EXPECT_EQ(r.trials, 100u);
    if (!have_ref) {
      ref = r;
      have_ref = true;
      continue;
    }
    EXPECT_EQ(r.passing, ref.passing) << "jobs = " << jobs;
    EXPECT_EQ(r.worst_row_failures, ref.worst_row_failures);
    EXPECT_EQ(r.yield, ref.yield);  // bitwise: fixed chunk fold order
    EXPECT_EQ(r.mean_worst_margin, ref.mean_worst_margin);
  }
}

TEST(EngineDeterminism, YieldRejectsBadArguments) {
  BatchRunner runner(EngineConfig{});
  core::TriangleGateConfig gate_cfg;
  const BatchRunner::TriangleFactory factory = [gate_cfg] {
    return std::make_unique<core::TriangleMajGate>(gate_cfg);
  };
  core::VariabilityModel model;
  EXPECT_THROW(runner.run_yield(factory, model, 0), std::invalid_argument);
  model.sigma_phase = -1.0;
  EXPECT_THROW(runner.run_yield(factory, model, 10), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::engine
