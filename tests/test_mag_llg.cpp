// LLG right-hand side and steppers: precession frequency, damping decay,
// convergence order, renormalization.
#include "mag/llg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "math/lockin.h"
#include "wavenet/dispersion.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

Grid one_cell() { return Grid(1, 1, 1, 2e-9, 2e-9, 2e-9); }

Material undamped_material() {
  Material m = Material::fecob();
  m.alpha = 0.0;
  return m;
}

std::vector<std::unique_ptr<FieldTerm>> zeeman_only(double hz) {
  std::vector<std::unique_ptr<FieldTerm>> terms;
  terms.push_back(std::make_unique<UniformZeemanField>(Vec3{0, 0, hz}));
  return terms;
}

// Estimates the dominant oscillation frequency of a (possibly non-uniformly)
// sampled signal from its interpolated zero crossings — very accurate for
// near-sinusoids.
double crossing_frequency(const std::vector<double>& ts,
                          const std::vector<double>& xs) {
  std::vector<double> crossings;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const double a = xs[i];
    const double b = xs[i + 1];
    if ((a <= 0.0 && b > 0.0) || (a >= 0.0 && b < 0.0)) {
      crossings.push_back(ts[i] + (ts[i + 1] - ts[i]) * a / (a - b));
    }
  }
  if (crossings.size() < 3) return 0.0;
  const double span = crossings.back() - crossings.front();
  return static_cast<double>(crossings.size() - 1) / (2.0 * span);
}

// Integrates a macrospin and measures the precession frequency.
double measured_precession_frequency(StepperKind kind, double hz,
                                     double alpha, double dt,
                                     std::size_t steps) {
  Material mat = Material::fecob();
  mat.alpha = alpha;
  const System sys(one_cell(), mat);
  auto terms = zeeman_only(hz);
  VectorField m(sys.grid());
  m[0] = normalized(Vec3{0.2, 0, 1.0});
  Stepper stepper(kind, dt);
  std::vector<double> ts, mx;
  double t = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    ts.push_back(t);
    mx.push_back(m[0].x);
    t += stepper.step(sys, terms, m, t);
  }
  return crossing_frequency(ts, mx);
}

TEST(LlgRhs, TorquePerpendicularToM) {
  const System sys(one_cell(), Material::fecob());
  VectorField m(sys.grid());
  m[0] = normalized(Vec3{0.3, 0.2, 0.9});
  VectorField h(sys.grid());
  h[0] = Vec3{0, 0, 1e5};
  VectorField dmdt(sys.grid());
  llg_rhs(sys, m, h, dmdt);
  EXPECT_NEAR(dot(dmdt[0], m[0]), 0.0, 1e-3);  // |dm/dt| ~ 1e10, rel ~ 1e-13
}

TEST(LlgRhs, AlignedStateIsStationary) {
  const System sys(one_cell(), Material::fecob());
  VectorField m(sys.grid());
  m[0] = Vec3{0, 0, 1};
  VectorField h(sys.grid());
  h[0] = Vec3{0, 0, 1e5};
  VectorField dmdt(sys.grid());
  llg_rhs(sys, m, h, dmdt);
  EXPECT_NEAR(norm(dmdt[0]), 0.0, 1e-6);
}

TEST(LlgRhs, DampingPushesTowardField) {
  Material mat = Material::fecob();
  mat.alpha = 0.1;
  const System sys(one_cell(), mat);
  VectorField m(sys.grid());
  m[0] = normalized(Vec3{1, 0, 0.1});
  VectorField h(sys.grid());
  h[0] = Vec3{0, 0, 1e5};
  VectorField dmdt(sys.grid());
  llg_rhs(sys, m, h, dmdt);
  EXPECT_GT(dmdt[0].z, 0.0);  // damping raises m_z toward the field
}

TEST(LlgRhs, MaskedCellsStayZero) {
  const Grid g(2, 1, 1, 1e-9, 1e-9, 1e-9);
  Mask mask(g);
  mask.set_at(0, 0, true);
  const System sys(g, Material::fecob(), mask);
  VectorField m(g);
  m[0] = Vec3{0, 0, 1};
  VectorField h(g, Vec3{1e5, 0, 0});
  VectorField dmdt(g);
  llg_rhs(sys, m, h, dmdt);
  EXPECT_EQ(dmdt[1], (Vec3{}));
}

TEST(Llg, LarmorFrequencyRk4) {
  const double hz = 2e5;  // A/m -> f_Larmor ~ 7 GHz, period ~ 142 ps
  const double f = measured_precession_frequency(StepperKind::kRk4, hz, 0.0,
                                                 50e-15, 20000);  // 1 ns
  const double f_larmor = kGamma * kMu0 * hz / kTwoPi;
  EXPECT_NEAR(f, f_larmor, f_larmor * 0.01);
}

TEST(Llg, LarmorFrequencyHeun) {
  const double hz = 2e5;
  const double f = measured_precession_frequency(StepperKind::kHeun, hz, 0.0,
                                                 25e-15, 40000);
  const double f_larmor = kGamma * kMu0 * hz / kTwoPi;
  EXPECT_NEAR(f, f_larmor, f_larmor * 0.01);
}

TEST(Llg, LarmorFrequencyRkf45) {
  const double hz = 2e5;
  const double f = measured_precession_frequency(StepperKind::kRkf45, hz,
                                                 0.0, 50e-15, 20000);
  const double f_larmor = kGamma * kMu0 * hz / kTwoPi;
  EXPECT_NEAR(f, f_larmor, f_larmor * 0.02);
}

TEST(Llg, FmrFrequencyMatchesDispersionAtKZero) {
  // Macrospin with PMA anisotropy + thin-film demag must precess at the
  // k = 0 frequency of the analytical FVSW dispersion.
  const Material mat = undamped_material();
  const System sys(one_cell(), mat);
  std::vector<std::unique_ptr<FieldTerm>> terms;
  terms.push_back(std::make_unique<UniaxialAnisotropyField>(Vec3{0, 0, 1}));
  terms.push_back(std::make_unique<ThinFilmDemagField>());

  VectorField m(sys.grid());
  m[0] = normalized(Vec3{0.05, 0, 1.0});
  const double dt = 50e-15;
  Stepper stepper(StepperKind::kRk4, dt);
  std::vector<double> ts, mx;
  double t = 0.0;
  for (int i = 0; i < 40000; ++i) {  // 2 ns ~ 7 FMR periods
    ts.push_back(t);
    mx.push_back(m[0].x);
    t += stepper.step(sys, terms, m, t);
  }

  const wavenet::Dispersion disp(mat, 1e-9);
  const double f_expected = disp.frequency(0.0);
  const double f_measured = crossing_frequency(ts, mx);
  EXPECT_NEAR(f_measured, f_expected, f_expected * 0.01);
}

TEST(Llg, GilbertDampingDecayRate) {
  // Transverse amplitude decays as exp(-alpha omega t) for small alpha.
  const double hz = 2e5;
  const double alpha = 0.02;
  Material mat = Material::fecob();
  mat.alpha = alpha;
  const System sys(one_cell(), mat);
  auto terms = zeeman_only(hz);
  VectorField m(sys.grid());
  m[0] = normalized(Vec3{0.1, 0, 1.0});
  const double mt0 = std::hypot(m[0].x, m[0].y);

  const double dt = 20e-15;
  Stepper stepper(StepperKind::kRk4, dt);
  double t = 0.0;
  const double t_end = 2e-9;
  while (t < t_end) t += stepper.step(sys, terms, m, t);

  const double omega = kGamma * kMu0 * hz;
  const double expected = mt0 * std::exp(-alpha * omega * t);
  const double measured = std::hypot(m[0].x, m[0].y);
  EXPECT_NEAR(measured, expected, expected * 0.05);
}

TEST(Llg, NormPreservedOverLongRun) {
  const System sys(one_cell(), Material::fecob());
  auto terms = zeeman_only(3e5);
  VectorField m(sys.grid());
  m[0] = normalized(Vec3{0.5, 0.3, 0.8});
  Stepper stepper(StepperKind::kRk4, 50e-15);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) t += stepper.step(sys, terms, m, t);
  EXPECT_NEAR(norm(m[0]), 1.0, 1e-12);
}

TEST(Llg, HeunConvergesToRk4) {
  // Same short run with both steppers at small dt agrees closely.
  auto run = [&](StepperKind kind, double dt) {
    const System sys(one_cell(), Material::fecob());
    auto terms = zeeman_only(2e5);
    VectorField m(sys.grid());
    m[0] = normalized(Vec3{0.3, 0, 1.0});
    Stepper stepper(kind, dt);
    double t = 0.0;
    while (t < 0.2e-9) t += stepper.step(sys, terms, m, t);
    return m[0];
  };
  const Vec3 heun = run(StepperKind::kHeun, 5e-15);
  const Vec3 rk4 = run(StepperKind::kRk4, 5e-15);
  EXPECT_NEAR(heun.x, rk4.x, 2e-5);
  EXPECT_NEAR(heun.y, rk4.y, 2e-5);
  EXPECT_NEAR(heun.z, rk4.z, 2e-5);
}

TEST(Llg, Rk4FourthOrderConvergence) {
  // Error vs a fine-dt reference shrinks ~16x when dt halves. The field
  // must be strong enough that truncation error dominates rounding noise.
  auto end_state = [&](double dt) {
    const System sys(one_cell(), undamped_material());
    auto terms = zeeman_only(2e6);  // omega dt ~ 0.02 at dt = 50 fs
    VectorField m(sys.grid());
    m[0] = normalized(Vec3{0.4, 0, 1.0});
    Stepper stepper(StepperKind::kRk4, dt);
    double t = 0.0;
    const double t_end = 20e-12;
    while (t < t_end - dt / 2) t += stepper.step(sys, terms, m, t);
    return m[0];
  };
  const Vec3 ref = end_state(2.5e-15);
  const double e1 = norm(end_state(80e-15) - ref);
  const double e2 = norm(end_state(40e-15) - ref);
  // Fourth order: halving dt cuts the error by ~2^4; allow slack.
  EXPECT_GT(e1 / e2, 10.0);
  EXPECT_LT(e1 / e2, 26.0);
}

TEST(Llg, Rkf45RespectsTolerance) {
  const System sys(one_cell(), undamped_material());
  auto terms = zeeman_only(5e5);
  VectorField m(sys.grid());
  m[0] = normalized(Vec3{0.4, 0, 1.0});
  Stepper stepper(StepperKind::kRkf45, 1e-12, /*tolerance=*/1e-8);
  double t = 0.0;
  while (t < 0.2e-9) t += stepper.step(sys, terms, m, t);
  EXPECT_NEAR(norm(m[0]), 1.0, 1e-10);
  EXPECT_GT(stepper.stats().steps_taken, 0u);
}

TEST(Stepper, RejectsBadConstruction) {
  EXPECT_THROW(Stepper(StepperKind::kRk4, 0.0), std::invalid_argument);
  EXPECT_THROW(Stepper(StepperKind::kRkf45, 1e-15, 0.0),
               std::invalid_argument);
}

TEST(Stepper, StatsCountEvaluations) {
  const System sys(one_cell(), Material::fecob());
  auto terms = zeeman_only(1e5);
  VectorField m(sys.grid());
  m[0] = Vec3{0.1, 0, 1};
  Stepper heun(StepperKind::kHeun, 1e-14);
  heun.step(sys, terms, m, 0.0);
  EXPECT_EQ(heun.stats().field_evaluations, 2u);
  EXPECT_EQ(heun.stats().steps_taken, 1u);

  Stepper rk4(StepperKind::kRk4, 1e-14);
  rk4.step(sys, terms, m, 0.0);
  EXPECT_EQ(rk4.stats().field_evaluations, 4u);
}

TEST(Renormalize, RestoresUnitLength) {
  const System sys(one_cell(), Material::fecob());
  VectorField m(sys.grid());
  m[0] = Vec3{0.5, 0.5, 0.5};
  renormalize(sys, m);
  EXPECT_NEAR(norm(m[0]), 1.0, 1e-15);
}

}  // namespace
}  // namespace swsim::mag
