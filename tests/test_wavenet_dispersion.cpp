#include "wavenet/dispersion.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"

namespace swsim::wavenet {
namespace {

using namespace swsim::math;
using swsim::mag::Material;

Dispersion paper_film() { return Dispersion(Material::fecob(), nm(1)); }

TEST(Dispersion, RequiresPositiveInternalField) {
  Material no_pma = Material::fecob();
  no_pma.ku = 0.0;  // no anisotropy: in-plane ground state, no FVSW
  EXPECT_THROW(Dispersion(no_pma, nm(1)), std::invalid_argument);
}

TEST(Dispersion, AppliedFieldCanRescueWeakPma) {
  Material weak = Material::fecob();
  weak.ku = 0.4e6;  // H_ani < Ms
  EXPECT_THROW(Dispersion(weak, nm(1)), std::invalid_argument);
  EXPECT_NO_THROW(Dispersion(weak, nm(1), /*applied=*/1e6));
}

TEST(Dispersion, RejectsBadThickness) {
  EXPECT_THROW(Dispersion(Material::fecob(), 0.0), std::invalid_argument);
}

TEST(Dispersion, FmrFrequencyAtKZero) {
  const Dispersion d = paper_film();
  // f(0) = (gamma mu0 / 2pi) * H_i.
  const double expected =
      kGamma * kMu0 / kTwoPi * Material::fecob().internal_field();
  EXPECT_NEAR(d.frequency(0.0), expected, expected * 1e-9);
  // ~3.6 GHz for the paper's film.
  EXPECT_NEAR(d.frequency(0.0), 3.65e9, 0.3e9);
}

TEST(Dispersion, PaperOperatingPointIsGigahertz) {
  // lambda = 55 nm: our Kalinikos-Slavin evaluation gives ~17 GHz (the
  // paper quotes 10 GHz at k = 50 rad/um, which is a different k than
  // 2 pi / 55 nm; see EXPERIMENTS.md).
  const Dispersion d = paper_film();
  const double f = d.frequency(Dispersion::k_of_lambda(nm(55)));
  EXPECT_GT(f, 5e9);
  EXPECT_LT(f, 40e9);
}

TEST(Dispersion, MonotonicallyIncreasing) {
  const Dispersion d = paper_film();
  double prev = d.frequency(0.0);
  for (double k = 1e6; k <= 3e8; k *= 1.5) {
    const double f = d.frequency(k);
    EXPECT_GT(f, prev) << "at k = " << k;
    prev = f;
  }
}

TEST(Dispersion, IsotropicInSignOfK) {
  const Dispersion d = paper_film();
  EXPECT_DOUBLE_EQ(d.frequency(5e7), d.frequency(-5e7));
}

TEST(Dispersion, GroupVelocityPositiveAndReasonable) {
  const Dispersion d = paper_film();
  const double k = Dispersion::k_of_lambda(nm(55));
  const double vg = d.group_velocity(k);
  EXPECT_GT(vg, 10.0);     // m/s
  EXPECT_LT(vg, 50000.0);  // well below any physical ceiling for SWs
}

TEST(Dispersion, WavenumberInvertsFrequency) {
  const Dispersion d = paper_film();
  for (double k : {2e7, 5e7, 1.2e8, 2e8}) {
    const double f = d.frequency(k);
    EXPECT_NEAR(d.wavenumber(f), k, k * 1e-6);
  }
}

TEST(Dispersion, WavenumberThrowsBelowFmr) {
  const Dispersion d = paper_film();
  EXPECT_THROW(d.wavenumber(d.frequency(0.0) * 0.5), std::domain_error);
}

TEST(Dispersion, WavelengthRoundTrip) {
  const Dispersion d = paper_film();
  const double lambda = nm(55);
  const double f = d.frequency(Dispersion::k_of_lambda(lambda));
  EXPECT_NEAR(d.wavelength_for(f), lambda, lambda * 1e-6);
}

TEST(Dispersion, KOfLambda) {
  EXPECT_NEAR(Dispersion::k_of_lambda(nm(55)), kTwoPi / nm(55), 1.0);
  EXPECT_THROW(Dispersion::k_of_lambda(0.0), std::invalid_argument);
}

TEST(Dispersion, LifetimeMatchesAlphaOmega) {
  const Dispersion d = paper_film();
  const double k = Dispersion::k_of_lambda(nm(55));
  const double f = d.frequency(k);
  EXPECT_NEAR(d.lifetime(k), 1.0 / (kTwoPi * 0.004 * f), 1e-12);
}

TEST(Dispersion, AttenuationLengthMicronScale) {
  // v_g ~ km/s and tau ~ ns give L_att of a few microns — the physical
  // reason the paper's sub-micron gate works at all.
  const Dispersion d = paper_film();
  const double k = Dispersion::k_of_lambda(nm(55));
  const double latt = d.attenuation_length(k);
  EXPECT_GT(latt, um(0.5));
  EXPECT_LT(latt, um(50));
}

TEST(Dispersion, AmplitudeDecay) {
  const Dispersion d = paper_film();
  const double k = Dispersion::k_of_lambda(nm(55));
  EXPECT_DOUBLE_EQ(d.amplitude_decay(k, 0.0), 1.0);
  const double latt = d.attenuation_length(k);
  EXPECT_NEAR(d.amplitude_decay(k, latt), std::exp(-1.0), 1e-12);
  EXPECT_THROW(d.amplitude_decay(k, -1.0), std::invalid_argument);
}

TEST(Dispersion, LowerDampingGivesLongerAttenuation) {
  const Dispersion fecob = paper_film();
  Material quiet = Material::fecob();
  quiet.alpha = 0.0004;
  const Dispersion low(quiet, nm(1));
  const double k = Dispersion::k_of_lambda(nm(55));
  EXPECT_GT(low.attenuation_length(k), 5.0 * fecob.attenuation_length(k));
}

// Parameterized: exchange stiffening — thinner wavelength means the
// exchange term dominates and frequency grows ~k^2.
class DispersionSweep : public ::testing::TestWithParam<double> {};

TEST_P(DispersionSweep, FrequencyFiniteAndOrdered) {
  const double lambda_nm = GetParam();
  const Dispersion d = paper_film();
  const double f = d.frequency(Dispersion::k_of_lambda(nm(lambda_nm)));
  EXPECT_TRUE(std::isfinite(f));
  EXPECT_GT(f, d.frequency(0.0));
}

INSTANTIATE_TEST_SUITE_P(Wavelengths, DispersionSweep,
                         ::testing::Values(20.0, 40.0, 55.0, 80.0, 125.0,
                                           200.0, 500.0));

}  // namespace
}  // namespace swsim::wavenet
