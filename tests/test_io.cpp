#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.h"
#include "io/render.h"
#include "io/table.h"

namespace swsim::io {
namespace {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::ScalarField;

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"a-much-longer-name", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a-much-longer-name"), std::string::npos);
  // Every line has the same width up to trailing content.
  std::istringstream is(out);
  std::string header, underline;
  std::getline(is, header);
  std::getline(is, underline);
  EXPECT_EQ(underline.find_first_not_of('-'), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(1.0, 3), "1.000");
}

TEST(Table, SciFormatting) {
  const std::string s = Table::sci(12345.0, 2);
  EXPECT_NE(s.find("1.23e"), std::string::npos);
}

TEST(Csv, EscapeRules) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "swsim_test.csv";
  {
    CsvWriter w(path);
    w.write_row({"h1", "h2"});
    w.write_row({"1", "x,y"});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "h1,h2");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(Csv, ThrowsOnUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv"), std::runtime_error);
}

TEST(Csv, ParsesPlainAndQuotedCells) {
  const auto rows = parse_csv("a,b,c\n1,\"x,y\",\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "x,y", "say \"hi\""}));
}

TEST(Csv, ParsesEmbeddedNewlinesCrlfAndBlankLines) {
  const auto rows = parse_csv("h1,h2\r\n\n\"two\nlines\",v\nlast,row");
  ASSERT_EQ(rows.size(), 3u);  // the blank line contributes nothing
  EXPECT_EQ(rows[1][0], "two\nlines");
  EXPECT_EQ(rows[2], (std::vector<std::string>{"last", "row"}));
}

TEST(Csv, BareCarriageReturnIsAPositionedErrorNotSilentlyDropped) {
  // "a\rb" must not silently parse as "ab"; a lone-CR line terminator
  // (classic Mac) must not be absorbed into the neighbouring cells.
  try {
    parse_csv("head\na\rb,c\n");
    FAIL() << "bare CR accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("carriage return"), std::string::npos);
    EXPECT_NE(msg.find("line 2"), std::string::npos);
    EXPECT_NE(msg.find("column 2"), std::string::npos);
  }
  EXPECT_THROW(parse_csv("one\rtwo\rthree\r"), std::runtime_error);
  // A quoted cell carries a CR verbatim — explicit, not a misparse.
  const auto rows = parse_csv("\"a\rb\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a\rb", "c"}));
}

TEST(Csv, ParsesEmptyCells) {
  const auto rows = parse_csv("a,,c\n,\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", ""}));
}

TEST(Csv, ErrorsArePositioned) {
  // Junk after a closing quote, on line 2.
  try {
    parse_csv("ok,row\n\"ab\"x,tail\n");
    FAIL() << "junk after closing quote accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("after closing quote"), std::string::npos);
    EXPECT_NE(msg.find("line 2"), std::string::npos);
  }
  // Quote opening mid-cell.
  EXPECT_THROW(parse_csv("ab\"cd"), std::runtime_error);
  // Unterminated quote reports where it was OPENED, not end-of-input.
  try {
    parse_csv("a,b\nc,\"never closed");
    FAIL() << "unterminated quote accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unterminated"), std::string::npos);
    EXPECT_NE(msg.find("line 2"), std::string::npos);
    EXPECT_NE(msg.find("column 3"), std::string::npos);
  }
}

TEST(Csv, ReadRoundTripsWriter) {
  const std::string path = ::testing::TempDir() + "swsim_roundtrip.csv";
  {
    CsvWriter w(path);
    w.write_row({"gate", "note"});
    w.write_row({"maj", "phase, rad"});
    w.write_row({"xor", "say \"hi\""});
  }
  const auto rows = read_csv(path);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"maj", "phase, rad"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"xor", "say \"hi\""}));
  std::remove(path.c_str());
}

TEST(Csv, ReadErrorsCarryThePath) {
  EXPECT_THROW(read_csv("/nonexistent-dir/foo.csv"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "swsim_bad.csv";
  {
    std::ofstream out(path);
    out << "a,\"open\n";
  }
  try {
    read_csv(path);
    FAIL() << "malformed file accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

ScalarField ramp_field() {
  const Grid g(8, 4, 1, 1e-9, 1e-9, 1e-9);
  ScalarField f(g);
  for (std::size_t y = 0; y < 4; ++y) {
    for (std::size_t x = 0; x < 8; ++x) {
      f.at(x, y) = (static_cast<double>(x) / 7.0) * 2.0 - 1.0;
    }
  }
  return f;
}

TEST(Render, AsciiMapHasGridShape) {
  const std::string s = ascii_map(ramp_field(), 1.0);
  std::size_t lines = 0;
  for (char c : s) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
}

TEST(Render, AsciiMapRespectsMask) {
  const auto f = ramp_field();
  Mask m(f.grid());
  const std::string s = ascii_map(f, 1.0, &m);
  for (char c : s) {
    EXPECT_TRUE(c == ' ' || c == '\n');
  }
}

TEST(Render, SignMapClassifies) {
  const auto f = ramp_field();
  const std::string s = sign_map(f, 0.5);
  EXPECT_NE(s.find('+'), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
  EXPECT_NE(s.find('0'), std::string::npos);
}

TEST(Render, PgmWritesValidHeaderAndSize) {
  const auto f = ramp_field();
  const std::string path = ::testing::TempDir() + "swsim_test.pgm";
  write_pgm(path, f, 1.0);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  std::size_t w = 0, h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 8u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::vector<char> pixels(w * h);
  in.read(pixels.data(), static_cast<long>(pixels.size()));
  EXPECT_EQ(static_cast<std::size_t>(in.gcount()), w * h);
  std::remove(path.c_str());
}

TEST(Render, PgmThrowsOnBadPath) {
  EXPECT_THROW(write_pgm("/nonexistent-dir/x.pgm", ramp_field(), 1.0),
               std::runtime_error);
}

}  // namespace
}  // namespace swsim::io
