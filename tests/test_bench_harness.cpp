// Bench harness: robust statistics, flag stripping, writer->reader JSON
// round trip, and the noise-aware comparison boundary math used by
// `swsim bench diff`/`gate`.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "obs/json.h"

namespace swsim::bench {
namespace {

TEST(BenchStats, MedianAndMad) {
  // Odd count: plain middle element.
  const SampleStats odd = compute_stats({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(odd.min, 1.0);
  EXPECT_DOUBLE_EQ(odd.median, 2.0);
  // |1-2|,|2-2|,|3-2| = {1,0,1} -> median deviation 1.
  EXPECT_DOUBLE_EQ(odd.mad, 1.0);

  // Even count: mean of the middle pair, for median and MAD alike.
  const SampleStats even = compute_stats({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(even.median, 2.5);
  // deviations {1.5, 0.5, 0.5, 1.5} -> middle pair (0.5, 1.5) -> 1.0.
  EXPECT_DOUBLE_EQ(even.mad, 1.0);

  const SampleStats one = compute_stats({7.0});
  EXPECT_DOUBLE_EQ(one.min, 7.0);
  EXPECT_DOUBLE_EQ(one.median, 7.0);
  EXPECT_DOUBLE_EQ(one.mad, 0.0);

  const SampleStats none = compute_stats({});
  EXPECT_DOUBLE_EQ(none.median, 0.0);
  EXPECT_DOUBLE_EQ(none.mad, 0.0);
}

TEST(BenchHarness, StripsOwnFlagsAndLeavesTheRest) {
  std::vector<std::string> storage = {"prog",    "--quick",   "--repeats",
                                      "7",       "--foreign", "--warmup",
                                      "2",       "--out-dir", "/tmp",
                                      "positional"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(storage.size());

  Harness h("strip_test", &argc, argv.data());
  EXPECT_TRUE(h.quick());
  EXPECT_EQ(h.repeats(), 7);  // explicit value wins over the quick default
  EXPECT_EQ(h.warmup(), 2);
  EXPECT_EQ(h.out_dir(), "/tmp");
  ASSERT_EQ(argc, 3);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "--foreign");
  EXPECT_STREQ(argv[2], "positional");
  EXPECT_EQ(argv[3], nullptr);
}

TEST(BenchHarness, QuickLowersDefaultRepeats) {
  std::vector<std::string> storage = {"prog", "--quick"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(storage.size());
  Harness h("quick_test", &argc, argv.data());
  EXPECT_TRUE(h.quick());
  EXPECT_EQ(h.repeats(), 3);
}

TEST(BenchHarness, MalformedFlagValueThrows) {
  auto make = [](std::vector<std::string> storage) {
    std::vector<char*> argv;
    for (auto& s : storage) argv.push_back(s.data());
    argv.push_back(nullptr);
    int argc = static_cast<int>(storage.size());
    Harness h("bad_flags", &argc, argv.data());
  };
  EXPECT_THROW(make({"prog", "--repeats", "abc"}), std::invalid_argument);
  EXPECT_THROW(make({"prog", "--repeats"}), std::invalid_argument);
  EXPECT_THROW(make({"prog", "--warmup", "-1"}), std::invalid_argument);
}

TEST(BenchHarness, WriterJsonRoundTripsThroughReader) {
  std::vector<std::string> storage = {"prog", "--repeats", "2", "--warmup",
                                      "0"};
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(storage.size());
  Harness h("roundtrip", &argc, argv.data());

  int calls = 0;
  h.time_case("spin", [&] { ++calls; }, /*items_per_iter=*/10.0);
  EXPECT_EQ(calls, 2);  // warmup 0 + 2 timed repeats
  h.record_samples("oneshot", "s", {1.5}, /*items_per_second=*/8.0 / 1.5);
  h.add_scalar("figure_of_merit", 42.5);

  const BenchDoc doc = parse_bench_json(obs::parse_json(h.to_json()));
  EXPECT_EQ(doc.name, "roundtrip");
  EXPECT_FALSE(doc.quick);
  EXPECT_FALSE(doc.env.compiler.empty());
  EXPECT_GT(doc.env.cores, 0u);
  ASSERT_EQ(doc.cases.size(), 2u);
  ASSERT_TRUE(doc.cases.count("spin"));
  EXPECT_EQ(doc.cases.at("spin").unit, "s");
  ASSERT_TRUE(doc.cases.count("oneshot"));
  EXPECT_DOUBLE_EQ(doc.cases.at("oneshot").median, 1.5);
  EXPECT_DOUBLE_EQ(doc.cases.at("oneshot").mad, 0.0);
  ASSERT_TRUE(doc.scalars.count("figure_of_merit"));
  EXPECT_DOUBLE_EQ(doc.scalars.at("figure_of_merit"), 42.5);
}

TEST(BenchReader, RejectsWrongSchemaOrShape) {
  EXPECT_THROW(parse_bench_json(obs::parse_json("{\"schema\": \"nope/1\"}")),
               std::runtime_error);
  EXPECT_THROW(parse_bench_json(obs::parse_json("42")), std::runtime_error);
  EXPECT_THROW(
      parse_bench_json(obs::parse_json(
          "{\"schema\": \"swsim.bench/1\", \"name\": \"x\"}")),
      std::runtime_error);
}

// --- comparison boundary math -------------------------------------------

BenchDoc doc_with_case(const std::string& name, double median, double mad) {
  BenchDoc d;
  d.name = "t";
  CaseStats c;
  c.unit = "s";
  c.min = median;
  c.median = median;
  c.mad = mad;
  d.cases[name] = c;
  return d;
}

TEST(BenchCompare, RegressionMustClearRelativeAndNoiseFloor) {
  // Binary-exact values so the boundary comparison is deterministic:
  // base median 1.0, mad 2^-6 on both sides ->
  // threshold = max(0.05 * 1.0, 3 * (0.015625 + 0.015625)) = 0.09375.
  const BenchDoc base = doc_with_case("solve", 1.0, 0.015625);

  // Exactly on the threshold: NOT a regression (strict inequality).
  auto r = compare_benches(base, doc_with_case("solve", 1.09375, 0.015625));
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kOk);
  EXPECT_NEAR(r.deltas[0].threshold, 0.09375, 1e-12);
  EXPECT_EQ(r.regressions, 0);

  // Just past it: regression.
  r = compare_benches(base, doc_with_case("solve", 1.094, 0.015625));
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kRegression);
  EXPECT_EQ(r.regressions, 1);

  // Symmetric improvement side.
  r = compare_benches(base, doc_with_case("solve", 0.906, 0.015625));
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kImprovement);
  EXPECT_EQ(r.improvements, 1);
  r = compare_benches(base, doc_with_case("solve", 0.90625, 0.015625));
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kOk);
}

TEST(BenchCompare, NoisyCasesNeedMoreThanTheRelativeFloor) {
  // Large MADs push the threshold above the 5% floor:
  // threshold = max(0.05, 3 * (0.1 + 0.1)) = 0.6 — a 40% slowdown is
  // still within the noise here.
  const BenchDoc base = doc_with_case("solve", 1.0, 0.1);
  const auto r = compare_benches(base, doc_with_case("solve", 1.4, 0.1));
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kOk);
}

TEST(BenchCompare, SingleSampleCasesFallBackToRelativeTolerance) {
  // mad 0 on both sides (one-shot heavy benches): threshold is the pure
  // relative floor.
  const BenchDoc base = doc_with_case("llg", 10.0, 0.0);
  auto r = compare_benches(base, doc_with_case("llg", 10.49, 0.0));
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kOk);
  r = compare_benches(base, doc_with_case("llg", 10.51, 0.0));
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kRegression);
}

TEST(BenchCompare, NewAndMissingCasesAreNeverRegressions) {
  BenchDoc base = doc_with_case("kept", 1.0, 0.0);
  base.cases["dropped"] = base.cases["kept"];
  BenchDoc cur = doc_with_case("kept", 1.0, 0.0);
  cur.cases["added"] = cur.cases["kept"];

  const auto r = compare_benches(base, cur);
  ASSERT_EQ(r.deltas.size(), 3u);
  // Deltas come back name-sorted.
  EXPECT_EQ(r.deltas[0].name, "added");
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kNew);
  EXPECT_EQ(r.deltas[1].name, "dropped");
  EXPECT_EQ(r.deltas[1].verdict, Verdict::kMissing);
  EXPECT_EQ(r.deltas[2].name, "kept");
  EXPECT_EQ(r.deltas[2].verdict, Verdict::kOk);
  EXPECT_EQ(r.regressions, 0);
  EXPECT_EQ(r.improvements, 0);
}

TEST(BenchCompare, CustomOptionsChangeTheThreshold) {
  const BenchDoc base = doc_with_case("solve", 1.0, 0.0);
  CompareOptions opts;
  opts.rel_tolerance = 0.5;
  opts.mad_k = 0.0;
  // 30% slower passes under a 50% tolerance...
  auto r = compare_benches(base, doc_with_case("solve", 1.3, 0.0), opts);
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kOk);
  // ...while a tightened tolerance flags it.
  opts.rel_tolerance = 0.1;
  r = compare_benches(base, doc_with_case("solve", 1.3, 0.0), opts);
  EXPECT_EQ(r.deltas[0].verdict, Verdict::kRegression);
}

TEST(BenchRegistry, NamesAreUniqueAndNonEmpty) {
  const auto& reg = bench_registry();
  EXPECT_EQ(reg.size(), 14u);
  for (std::size_t i = 0; i < reg.size(); ++i) {
    EXPECT_NE(std::string(reg[i].name), "");
    for (std::size_t j = i + 1; j < reg.size(); ++j) {
      EXPECT_NE(std::string(reg[i].name), std::string(reg[j].name));
    }
  }
}

}  // namespace
}  // namespace swsim::bench
