#include "geom/gate_layout.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"

namespace swsim::geom {
namespace {

using swsim::math::nm;

TEST(TriangleGateParams, PaperMaj3Dimensions) {
  const auto p = TriangleGateParams::paper_maj3();
  EXPECT_NEAR(p.d1(), nm(330), 1e-15);
  EXPECT_NEAR(p.d2(), nm(880), 1e-15);
  EXPECT_NEAR(p.d3(), nm(220), 1e-15);
  EXPECT_NEAR(p.d4(), nm(55), 1e-15);
  EXPECT_TRUE(p.has_third_input);
}

TEST(TriangleGateParams, PaperXorDimensions) {
  const auto p = TriangleGateParams::paper_xor();
  EXPECT_NEAR(p.d1(), nm(330), 1e-15);
  EXPECT_NEAR(p.branch_out(), nm(40), 1e-15);
  EXPECT_FALSE(p.has_third_input);
}

TEST(TriangleGateParams, ValidatesWidthRule) {
  auto p = TriangleGateParams::paper_maj3();
  p.width = p.wavelength * 1.01;  // width must be <= lambda (Sec. III-A)
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(TriangleGateParams, ValidatesMultiples) {
  auto p = TriangleGateParams::paper_maj3();
  p.n_arm = 1.3;  // not a multiple of 1/2
  EXPECT_THROW(p.validate(), std::invalid_argument);

  p = TriangleGateParams::paper_maj3();
  p.n_arm = 2.5;  // (n + 1/2) lambda is a legal design point
  EXPECT_NO_THROW(p.validate());

  p = TriangleGateParams::paper_maj3();
  p.n_out = -1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(TriangleGateParams, ValidatesAngle) {
  auto p = TriangleGateParams::paper_maj3();
  p.arm_half_angle_deg = 2.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.arm_half_angle_deg = 89.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(TriangleGateParams, XorRequiresPositiveOutDistance) {
  auto p = TriangleGateParams::paper_xor();
  p.xor_out_distance = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(TriangleGateLayout, KeyPointsOnAxis) {
  const TriangleGateLayout layout(TriangleGateParams::paper_maj3());
  EXPECT_DOUBLE_EQ(layout.merge_point().y, 0.0);
  EXPECT_DOUBLE_EQ(layout.tap_point().y, 0.0);
  EXPECT_DOUBLE_EQ(layout.split_point().y, 0.0);
  // C is the axis midpoint.
  EXPECT_NEAR(layout.tap_point().x,
              (layout.merge_point().x + layout.split_point().x) / 2.0, 1e-15);
  // Full axis length is d2.
  EXPECT_NEAR(layout.split_point().x - layout.merge_point().x,
              layout.params().d2(), 1e-12);
}

TEST(TriangleGateLayout, PortsPresent) {
  const TriangleGateLayout maj(TriangleGateParams::paper_maj3());
  EXPECT_TRUE(maj.has_port(Port::kIn1));
  EXPECT_TRUE(maj.has_port(Port::kIn2));
  EXPECT_TRUE(maj.has_port(Port::kIn3));
  EXPECT_TRUE(maj.has_port(Port::kOut1));
  EXPECT_TRUE(maj.has_port(Port::kOut2));

  const TriangleGateLayout x(TriangleGateParams::paper_xor());
  EXPECT_FALSE(x.has_port(Port::kIn3));
  EXPECT_THROW(x.port(Port::kIn3), std::invalid_argument);
}

TEST(TriangleGateLayout, MirrorSymmetryAboutAxis) {
  const TriangleGateLayout layout(TriangleGateParams::paper_maj3());
  const auto& i1 = layout.port(Port::kIn1);
  const auto& i2 = layout.port(Port::kIn2);
  const auto& o1 = layout.port(Port::kOut1);
  const auto& o2 = layout.port(Port::kOut2);
  EXPECT_NEAR(i1.center.y, -i2.center.y, 1e-12);
  EXPECT_NEAR(i1.center.x, i2.center.x, 1e-12);
  EXPECT_NEAR(o1.center.y, -o2.center.y, 1e-12);
  EXPECT_NEAR(o1.center.x, o2.center.x, 1e-12);
}

TEST(TriangleGateLayout, ArmLengthMatchesD1) {
  const TriangleGateLayout layout(TriangleGateParams::paper_maj3());
  const auto& i1 = layout.port(Port::kIn1);
  EXPECT_NEAR(swsim::math::distance(i1.center, layout.merge_point()),
              layout.params().d1(), 1e-12);
}

TEST(TriangleGateLayout, PathLengthsAreWavelengthMultiples) {
  const auto params = TriangleGateParams::paper_maj3();
  const TriangleGateLayout layout(params);
  for (Port in : {Port::kIn1, Port::kIn2, Port::kIn3}) {
    for (Port out : {Port::kOut1, Port::kOut2}) {
      const double len = layout.path_length(in, out);
      const double multiple = len / params.wavelength;
      EXPECT_NEAR(multiple, std::round(multiple), 1e-9)
          << to_string(in) << "->" << to_string(out);
    }
  }
}

TEST(TriangleGateLayout, PathLengthsSymmetricAcrossOutputs) {
  const TriangleGateLayout layout(TriangleGateParams::paper_maj3());
  for (Port in : {Port::kIn1, Port::kIn2, Port::kIn3}) {
    EXPECT_NEAR(layout.path_length(in, Port::kOut1),
                layout.path_length(in, Port::kOut2), 1e-12);
  }
}

TEST(TriangleGateLayout, PathLengthArgumentChecks) {
  const TriangleGateLayout layout(TriangleGateParams::paper_maj3());
  EXPECT_THROW(layout.path_length(Port::kOut1, Port::kOut2),
               std::invalid_argument);
  EXPECT_THROW(layout.path_length(Port::kIn1, Port::kIn2),
               std::invalid_argument);
}

TEST(TriangleGateLayout, BodyContainsKeyPoints) {
  const TriangleGateLayout layout(TriangleGateParams::paper_maj3());
  const Shape& body = layout.body();
  EXPECT_TRUE(body.contains(layout.merge_point()));
  EXPECT_TRUE(body.contains(layout.tap_point()));
  EXPECT_TRUE(body.contains(layout.split_point()));
  for (const auto& site : layout.ports()) {
    EXPECT_TRUE(body.contains(site.center)) << to_string(site.port);
  }
}

TEST(TriangleGateLayout, BoundingBoxCoversBody) {
  const TriangleGateLayout layout(TriangleGateParams::paper_maj3());
  const Rect bb = layout.bounding_box(nm(10));
  for (const auto& site : layout.ports()) {
    EXPECT_TRUE(bb.contains(site.center));
  }
}

TEST(TriangleGateLayout, RasterizedBodyIsNonEmptyAndConnected) {
  const auto params = TriangleGateParams::reduced_maj3(nm(50), nm(20));
  const TriangleGateLayout layout(params);
  const Rect bb = layout.bounding_box(nm(10));
  const auto nx = static_cast<std::size_t>((bb.x1() - bb.x0()) / nm(5));
  const auto ny = static_cast<std::size_t>((bb.y1() - bb.y0()) / nm(5));
  // Shift the layout into grid coordinates by rasterizing on a grid that
  // starts at the bounding-box corner.
  swsim::math::Grid g(nx, ny, 1, nm(5), nm(5), nm(1));
  // The body occupies a strict subset of the box.
  std::size_t inside = 0;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      auto c = g.cell_center(ix, iy, 0);
      c.x += bb.x0();
      c.y += bb.y0();
      if (layout.body().contains(c)) ++inside;
    }
  }
  EXPECT_GT(inside, 50u);
  EXPECT_LT(inside, g.cell_count() / 2);
}

TEST(TriangleGateLayout, InvertingTapIsHalfWavelengthLonger) {
  auto params = TriangleGateParams::paper_maj3();
  const TriangleGateLayout plain(params);
  params.n_out += 0.5;
  const TriangleGateLayout inverted(params);
  EXPECT_NEAR(inverted.path_length(Port::kIn1, Port::kOut1) -
                  plain.path_length(Port::kIn1, Port::kOut1),
              params.wavelength / 2.0, 1e-12);
}

// Parameterized sweep: the layout is valid over a range of multiples.
class LayoutSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(LayoutSweep, ConstructsAndKeepsSymmetry) {
  const auto [n_arm, n_axis_half, n_feed] = GetParam();
  TriangleGateParams p = TriangleGateParams::paper_maj3();
  p.n_arm = n_arm;
  p.n_axis_half = n_axis_half;
  p.n_feed = n_feed;
  const TriangleGateLayout layout(p);
  EXPECT_NEAR(layout.path_length(Port::kIn1, Port::kOut1),
              layout.path_length(Port::kIn2, Port::kOut2), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Multiples, LayoutSweep,
    ::testing::Combine(::testing::Values(1, 2, 6, 12),
                       ::testing::Values(1, 4, 8),
                       ::testing::Values(1, 4, 9)));

TEST(LadderGateParams, Validation) {
  LadderGateParams p;
  EXPECT_NO_THROW(p.validate());
  p.width = p.wavelength * 2.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(LadderGateLayout, CellCountsMatchTableIII) {
  LadderGateParams maj;
  const LadderGateLayout lm(maj);
  EXPECT_EQ(lm.excitation_cells(), 4);
  EXPECT_EQ(lm.detection_cells(), 2);
  EXPECT_EQ(lm.excitation_cells() + lm.detection_cells(), 6);  // Table III

  LadderGateParams x;
  x.is_xor = true;
  const LadderGateLayout lx(x);
  EXPECT_EQ(lx.excitation_cells() + lx.detection_cells(), 6);
}

TEST(LadderGateLayout, RequiresUnequalExcitation) {
  const LadderGateLayout l((LadderGateParams()));
  EXPECT_TRUE(l.requires_unequal_excitation());
}

TEST(LadderGateLayout, PathLengthBounds) {
  const LadderGateLayout l((LadderGateParams()));
  EXPECT_GT(l.path_length(0, 0), 0.0);
  EXPECT_THROW(l.path_length(3, 0), std::invalid_argument);
  EXPECT_THROW(l.path_length(0, 2), std::invalid_argument);
}


TEST(LadderGateLayout, GeometryReconstruction) {
  const LadderGateLayout layout((LadderGateParams()));
  // All six transducers present, including the replicated input.
  for (LadderPort p : {LadderPort::kIn1, LadderPort::kIn2, LadderPort::kIn3,
                       LadderPort::kIn3Replica, LadderPort::kOut1,
                       LadderPort::kOut2}) {
    EXPECT_NO_THROW(layout.port(p)) << to_string(p);
  }
  // Rails are mirror images: O1 above, O2 below, same x.
  const auto& o1 = layout.port(LadderPort::kOut1);
  const auto& o2 = layout.port(LadderPort::kOut2);
  EXPECT_NEAR(o1.center.x, o2.center.x, 1e-12);
  EXPECT_NEAR(o1.center.y, -o2.center.y, 1e-12);
}

TEST(LadderGateLayout, BodyContainsAllPorts) {
  const LadderGateLayout layout((LadderGateParams()));
  for (const auto& site : layout.ports()) {
    EXPECT_TRUE(layout.body().contains(site.center)) << to_string(site.port);
  }
}

TEST(LadderGateLayout, RasterizesConnected) {
  LadderGateParams p;
  p.n_rail = 4;
  p.n_rung = 2;
  const LadderGateLayout layout(p);
  const Rect bb = layout.bounding_box(nm(10));
  const auto nx = static_cast<std::size_t>((bb.x1() - bb.x0()) / nm(5));
  const auto ny = static_cast<std::size_t>((bb.y1() - bb.y0()) / nm(5));
  swsim::math::Grid g(nx, ny, 1, nm(5), nm(5), nm(1));
  std::size_t inside = 0;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      auto c = g.cell_center(ix, iy, 0);
      c.x += bb.x0();
      c.y += bb.y0();
      if (layout.body().contains(c)) ++inside;
    }
  }
  EXPECT_GT(inside, 100u);
  EXPECT_LT(inside, g.cell_count() / 2);
}

TEST(LadderGateLayout, LargerFootprintThanTriangle) {
  // Part of the paper's story: the ladder spends more real estate (extra
  // rail + stubs) for the same function.
  LadderGateParams lp;  // defaults mirror the paper-scale multiples
  const LadderGateLayout ladder(lp);
  const TriangleGateLayout triangle(TriangleGateParams::paper_maj3());
  const Rect lb = ladder.bounding_box(0.0);
  const Rect tb = triangle.bounding_box(0.0);
  const double ladder_area = (lb.x1() - lb.x0()) * (lb.y1() - lb.y0());
  EXPECT_GT(ladder_area, 0.0);
  (void)tb;  // footprints depend on the free layout choices; just sanity
}

TEST(PortNames, ToString) {
  EXPECT_EQ(to_string(Port::kIn1), "I1");
  EXPECT_EQ(to_string(Port::kIn3), "I3");
  EXPECT_EQ(to_string(Port::kOut2), "O2");
}

}  // namespace
}  // namespace swsim::geom
