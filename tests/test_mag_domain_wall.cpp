// Solver validation against textbook statics: the Bloch domain wall in a
// PMA strip relaxes to the analytic profile m_z(x) = tanh((x - x0)/Delta)
// with Delta = sqrt(A / K_eff) — a classic micromagnetic benchmark that
// exercises exchange + anisotropy + demag + the relaxation path together.
#include <gtest/gtest.h>

#include <cmath>

#include "mag/simulation.h"
#include "math/constants.h"
#include "math/stats.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

TEST(DomainWall, RelaxesToAnalyticWidth) {
  // 1D strip with a head-to-head wall seeded in the middle. The effective
  // anisotropy includes the thin-film demag: K_eff = Ku - mu0 Ms^2 / 2.
  Material mat = Material::fecob();
  const std::size_t n = 96;
  const double cell = nm(2);
  System sys(Grid(n, 1, 1, cell, cell, nm(1)), mat);
  Simulation sim(std::move(sys));
  sim.add_standard_terms();

  // Seed: sharp wall with a small transverse component to unlock the
  // dynamics.
  VectorField m(sim.system().grid());
  for (std::size_t x = 0; x < n; ++x) {
    const double mz = x < n / 2 ? -1.0 : 1.0;
    m[x] = normalized(Vec3{0.1, 0.0, mz});
  }
  sim.set_magnetization(m);
  sim.relax(ns(4), /*torque_tol=*/50.0);

  // Fit the relaxed profile: Delta from the slope at the wall center,
  // dm_z/dx = 1/Delta at m_z = 0.
  const auto& mm = sim.magnetization();
  // Locate the zero crossing of m_z.
  std::size_t x0 = 0;
  for (std::size_t x = 0; x + 1 < n; ++x) {
    if (mm[x].z <= 0.0 && mm[x + 1].z > 0.0) {
      x0 = x;
      break;
    }
  }
  ASSERT_GT(x0, 10u);
  ASSERT_LT(x0, n - 10);
  const double slope =
      (mm[x0 + 1].z - mm[x0].z) / cell;  // ~ 1/Delta at the center

  const double k_eff = mat.ku - 0.5 * kMu0 * mat.ms * mat.ms;
  ASSERT_GT(k_eff, 0.0);
  const double delta_analytic = std::sqrt(mat.aex / k_eff);
  EXPECT_NEAR(1.0 / slope, delta_analytic, delta_analytic * 0.25);

  // And the far field is fully saturated.
  EXPECT_NEAR(mm[2].z, -1.0, 1e-3);
  EXPECT_NEAR(mm[n - 3].z, 1.0, 1e-3);
}

TEST(DomainWall, ProfileMatchesTanh) {
  Material mat = Material::fecob();
  const std::size_t n = 96;
  const double cell = nm(2);
  System sys(Grid(n, 1, 1, cell, cell, nm(1)), mat);
  Simulation sim(std::move(sys));
  sim.add_standard_terms();

  VectorField m(sim.system().grid());
  for (std::size_t x = 0; x < n; ++x) {
    m[x] = normalized(Vec3{0.1, 0.0, x < n / 2 ? -1.0 : 1.0});
  }
  sim.set_magnetization(m);
  sim.relax(ns(4), 50.0);

  // Locate center by interpolation, then compare m_z to tanh over +-4
  // wall widths.
  const auto& mm = sim.magnetization();
  double x_center = 0.0;
  for (std::size_t x = 0; x + 1 < n; ++x) {
    if (mm[x].z <= 0.0 && mm[x + 1].z > 0.0) {
      const double frac = -mm[x].z / (mm[x + 1].z - mm[x].z);
      x_center = (static_cast<double>(x) + 0.5 + frac) * cell;
      break;
    }
  }
  const double k_eff = mat.ku - 0.5 * kMu0 * mat.ms * mat.ms;
  const double delta = std::sqrt(mat.aex / k_eff);

  double worst = 0.0;
  for (std::size_t x = 8; x < n - 8; ++x) {
    const double pos = (static_cast<double>(x) + 0.5) * cell;
    const double analytic = std::tanh((pos - x_center) / delta);
    worst = std::max(worst, std::fabs(mm[x].z - analytic));
  }
  EXPECT_LT(worst, 0.08);
}

}  // namespace
}  // namespace swsim::mag
