#include "core/fanout_tree.h"

#include <gtest/gtest.h>

#include "core/logic.h"

namespace swsim::core {
namespace {

TriangleGateConfig maj_design() {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  return cfg;
}

TEST(FanoutTree, RejectsBadConfig) {
  FanoutTreeConfig bad;
  bad.fanout = 1;
  EXPECT_THROW(FanoutTree(maj_design(), bad), std::invalid_argument);
  bad.fanout = 4;
  bad.n_branch = 1.3;
  EXPECT_THROW(FanoutTree(maj_design(), bad), std::invalid_argument);
}

TEST(FanoutTree, LeafCountRoundsToPowerOfTwo) {
  FanoutTreeConfig cfg;
  cfg.fanout = 3;
  FanoutTree tree(maj_design(), cfg);
  EXPECT_EQ(tree.leaf_count(), 4u);
  cfg.fanout = 8;
  FanoutTree tree8(maj_design(), cfg);
  EXPECT_EQ(tree8.leaf_count(), 8u);
}

TEST(FanoutTree, AllLeavesCarryTheMajority) {
  FanoutTreeConfig cfg;
  cfg.fanout = 4;
  FanoutTree tree(maj_design(), cfg);
  for (const auto& p : all_input_patterns(3)) {
    const auto result = tree.evaluate(p);
    EXPECT_TRUE(result.coherent);
    const bool expected = maj3(p[0], p[1], p[2]);
    for (const auto& leaf : result.leaves) {
      EXPECT_EQ(leaf.detection.logic, expected);
    }
  }
}

TEST(FanoutTree, RepeatersRestoreAmplitude) {
  FanoutTreeConfig with;
  with.fanout = 8;
  with.use_repeaters = true;
  FanoutTreeConfig without = with;
  without.use_repeaters = false;

  FanoutTree t_with(maj_design(), with);
  FanoutTree t_without(maj_design(), without);
  const std::vector<bool> inputs{true, true, true};
  const auto r_with = t_with.evaluate(inputs);
  const auto r_without = t_without.evaluate(inputs);
  // Without repeaters every coupler split halves the energy; with
  // repeaters the leaves arrive at (nearly) full strength.
  EXPECT_GT(r_with.min_relative_amplitude,
            3.0 * r_without.min_relative_amplitude);
  EXPECT_GT(r_with.min_relative_amplitude, 0.5);
}

TEST(FanoutTree, RepeaterCostScalesWithFanout) {
  FanoutTreeConfig cfg;
  cfg.fanout = 8;
  FanoutTree tree(maj_design(), cfg);
  const auto result = tree.evaluate({false, false, false});
  // 3 gate inputs + repeaters (2 + 4 + 8 = 14 for three levels).
  EXPECT_EQ(result.excitation_cells, 3 + 14);
}

TEST(FanoutTree, BeatsGateReplicationForLargeFanout) {
  // The paper's argument: couplers+repeaters scale better than replicating
  // the whole gate per pair of loads — in transducer count the tree costs
  // 3 + (2^L+1 - 2) repeaters vs 3 * fanout/2 for replication; for the
  // energy the comparison depends on repeater cost, so we report both and
  // assert the *input* transducer advantage: the tree never re-excites
  // the three inputs.
  FanoutTreeConfig cfg;
  cfg.fanout = 8;
  FanoutTree tree(maj_design(), cfg);
  EXPECT_EQ(tree.replication_excitation_cells(), 12);  // 4 gates x 3 inputs
  // The tree drives the 3 inputs exactly once regardless of fan-out.
  const auto result = tree.evaluate({true, false, false});
  EXPECT_GE(result.excitation_cells, 3);
}

TEST(FanoutTree, MirrorOutputStillWorks) {
  // O2 keeps serving as a normal output while O1 feeds the tree.
  FanoutTreeConfig cfg;
  cfg.fanout = 4;
  FanoutTree tree(maj_design(), cfg);
  const auto result = tree.evaluate({true, true, false});
  EXPECT_TRUE(result.coherent);
  EXPECT_GT(result.min_relative_amplitude, 0.0);
}

TEST(FanoutTree, WrongInputCountThrows) {
  FanoutTreeConfig cfg;
  FanoutTree tree(maj_design(), cfg);
  EXPECT_THROW(tree.evaluate({true}), std::invalid_argument);
}

// Parameterized: coherence across fan-outs and input patterns.
class FanoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(FanoutSweep, CoherentAtEveryFanout) {
  FanoutTreeConfig cfg;
  cfg.fanout = GetParam();
  FanoutTree tree(maj_design(), cfg);
  for (const auto& p : all_input_patterns(3)) {
    const auto result = tree.evaluate(p);
    EXPECT_TRUE(result.coherent) << "fanout " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, FanoutSweep, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace swsim::core
