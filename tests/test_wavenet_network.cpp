#include "wavenet/network.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"

namespace swsim::wavenet {
namespace {

using namespace swsim::math;

// A lossless model at lambda = 100 (arbitrary units): k = 2 pi / 100.
PropagationModel lossless() {
  PropagationModel m;
  m.k = kTwoPi / 100.0;
  m.attenuation_length = 0.0;  // no decay
  m.split = SplitPolicy::kLossless;
  return m;
}

PropagationModel damped(double latt = 2000.0) {
  PropagationModel m = lossless();
  m.attenuation_length = latt;
  m.split = SplitPolicy::kUnitary;
  return m;
}

TEST(WaveNetwork, SingleLinePropagatesPhase) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId det = net.add_detector("D");
  net.connect(src, det, 100.0);  // exactly one wavelength
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(lossless());
  const Complex p = r.detector_phasor.at(det);
  EXPECT_NEAR(p.real(), 1.0, 1e-9);
  EXPECT_NEAR(p.imag(), 0.0, 1e-9);
}

TEST(WaveNetwork, HalfWavelengthInvertsPhase) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId det = net.add_detector("D");
  net.connect(src, det, 150.0);  // (1 + 1/2) lambda
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_NEAR(r.detector_phasor.at(det).real(), -1.0, 1e-9);
}

TEST(WaveNetwork, QuarterWavelengthGivesQuadrature) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId det = net.add_detector("D");
  net.connect(src, det, 25.0);
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(lossless());
  const Complex p = r.detector_phasor.at(det);
  EXPECT_NEAR(p.real(), 0.0, 1e-9);
  EXPECT_NEAR(p.imag(), -1.0, 1e-9);  // e^{-ikL}
}

TEST(WaveNetwork, ConstructiveInterference) {
  // Two in-phase sources merging at a junction: amplitudes add.
  WaveNetwork net;
  const NodeId a = net.add_source("A");
  const NodeId b = net.add_source("B");
  const NodeId j = net.add_junction("J");
  const NodeId d = net.add_detector("D");
  net.connect(a, j, 100.0);
  net.connect(b, j, 100.0);
  net.connect(j, d, 100.0);
  net.excite(a, 1.0, 0.0);
  net.excite(b, 1.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(d)), 2.0, 1e-9);
}

TEST(WaveNetwork, DestructiveInterference) {
  WaveNetwork net;
  const NodeId a = net.add_source("A");
  const NodeId b = net.add_source("B");
  const NodeId j = net.add_junction("J");
  const NodeId d = net.add_detector("D");
  net.connect(a, j, 100.0);
  net.connect(b, j, 100.0);
  net.connect(j, d, 100.0);
  net.excite(a, 1.0, 0.0);
  net.excite(b, 1.0, kPi);  // antiphase
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(d)), 0.0, 1e-9);
}

TEST(WaveNetwork, PathLengthDifferenceInterference) {
  // Same phase but paths differing by lambda/2: destructive.
  WaveNetwork net;
  const NodeId a = net.add_source("A");
  const NodeId b = net.add_source("B");
  const NodeId j = net.add_junction("J");
  const NodeId d = net.add_detector("D");
  net.connect(a, j, 100.0);
  net.connect(b, j, 150.0);
  net.connect(j, d, 100.0);
  net.excite(a, 1.0, 0.0);
  net.excite(b, 1.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(d)), 0.0, 1e-9);
}

TEST(WaveNetwork, AttenuationDecaysAmplitude) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId det = net.add_detector("D");
  net.connect(src, det, 500.0);
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(damped(1000.0));
  EXPECT_NEAR(std::abs(r.detector_phasor.at(det)), std::exp(-0.5), 1e-9);
}

TEST(WaveNetwork, EdgeWeightScalesAmplitude) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId det = net.add_detector("D");
  net.connect(src, det, 100.0, /*weight=*/0.25);
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(det)), 0.25, 1e-9);
}

TEST(WaveNetwork, UnitarySplitConservesEnergy) {
  // One source feeding a symmetric 1 -> 2 splitter.
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId j = net.add_junction("J");
  const NodeId d1 = net.add_detector("D1");
  const NodeId d2 = net.add_detector("D2");
  net.connect(src, j, 100.0);
  net.connect(j, d1, 100.0);
  net.connect(j, d2, 100.0);
  net.excite(src, 1.0, 0.0);
  PropagationModel m = lossless();
  m.split = SplitPolicy::kUnitary;
  const auto r = net.solve(m);
  const double e1 = std::norm(r.detector_phasor.at(d1));
  const double e2 = std::norm(r.detector_phasor.at(d2));
  EXPECT_NEAR(e1 + e2, 1.0, 1e-9);
  EXPECT_NEAR(e1, e2, 1e-12);
}

TEST(WaveNetwork, LosslessSplitDuplicates) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId j = net.add_junction("J");
  const NodeId d1 = net.add_detector("D1");
  const NodeId d2 = net.add_detector("D2");
  net.connect(src, j, 100.0);
  net.connect(j, d1, 100.0);
  net.connect(j, d2, 100.0);
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(d1)), 1.0, 1e-9);
  EXPECT_NEAR(std::abs(r.detector_phasor.at(d2)), 1.0, 1e-9);
}

TEST(WaveNetwork, SourceAbsorbsIncomingWaves) {
  // A wave reaching another source terminates there (transducer loading);
  // nothing bounces back to the detector.
  WaveNetwork net;
  const NodeId a = net.add_source("A");
  const NodeId b = net.add_source("B");
  const NodeId j = net.add_junction("J");
  const NodeId d = net.add_detector("D");
  net.connect(a, j, 100.0);
  net.connect(b, j, 100.0);
  net.connect(j, d, 100.0);
  net.excite(a, 1.0, 0.0);
  net.excite(b, 0.0, 0.0);  // silent transducer still absorbs
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(d)), 1.0, 1e-9);
}

TEST(WaveNetwork, TapInjectsAndPassesThrough) {
  // src --- tap --- det: the tap's own wave and the source's wave both
  // arrive; with everything at integer lambda they add.
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId tap = net.add_tap("T");
  const NodeId det = net.add_detector("D");
  net.connect(src, tap, 100.0);
  net.connect(tap, det, 100.0);
  net.excite(src, 1.0, 0.0);
  net.excite(tap, 1.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(det)), 2.0, 1e-9);
}

TEST(WaveNetwork, SilentTapIsTransparent) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId tap = net.add_tap("T");
  const NodeId det = net.add_detector("D");
  net.connect(src, tap, 100.0);
  net.connect(tap, det, 100.0);
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(det)), 1.0, 1e-9);
}

TEST(WaveNetwork, RepeaterRegeneratesAmplitude) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId rep = net.add_repeater("R");
  const NodeId det = net.add_detector("D");
  net.connect(src, rep, 1000.0);
  net.connect(rep, det, 100.0);
  net.excite(src, 1.0, 0.0);
  PropagationModel m = damped(500.0);  // heavy decay before the repeater
  const auto r = net.solve(m);
  // The repeater restores unit amplitude; only the final hop decays.
  EXPECT_NEAR(std::abs(r.detector_phasor.at(det)), std::exp(-100.0 / 500.0),
              1e-6);
}

TEST(WaveNetwork, DeadEndJunctionDropsWave) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId j = net.add_junction("J");
  const NodeId det = net.add_detector("D");
  net.connect(src, j, 100.0);
  net.excite(src, 1.0, 0.0);
  (void)det;
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(det)), 0.0, 1e-12);
}

TEST(WaveNetwork, DetectorsAlwaysReported) {
  WaveNetwork net;
  const NodeId det = net.add_detector("D");
  const NodeId src = net.add_source("S");
  net.excite(src, 0.0, 0.0);
  const auto r = net.solve(lossless());
  EXPECT_EQ(r.detector_phasor.count(det), 1u);
  EXPECT_EQ(std::abs(r.detector_phasor.at(det)), 0.0);
}

TEST(WaveNetwork, ResonantLosslessLoopThrows) {
  // A lossless ring with lossless splitting never decays: the event guard
  // must fire instead of hanging.
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId a = net.add_junction("A");
  const NodeId b = net.add_junction("B");
  const NodeId c = net.add_junction("C");
  net.connect(src, a, 100.0);
  net.connect(a, b, 100.0);
  net.connect(b, c, 100.0);
  net.connect(c, a, 100.0);
  net.excite(src, 1.0, 0.0);
  PropagationModel m = lossless();
  m.max_events = 10000;
  EXPECT_THROW(net.solve(m), std::runtime_error);
}

TEST(WaveNetwork, DampedLoopConverges) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId a = net.add_junction("A");
  const NodeId b = net.add_junction("B");
  const NodeId c = net.add_junction("C");
  const NodeId d = net.add_detector("D");
  net.connect(src, a, 100.0);
  net.connect(a, b, 100.0);
  net.connect(b, c, 100.0);
  net.connect(c, a, 100.0);
  net.connect(b, d, 100.0);
  net.excite(src, 1.0, 0.0);
  const auto r = net.solve(damped(300.0));
  EXPECT_GT(std::abs(r.detector_phasor.at(d)), 0.0);
  EXPECT_LT(r.events, 100000u);
}

TEST(WaveNetwork, ExciteLogicUsesPhaseEncoding) {
  WaveNetwork net;
  const NodeId src = net.add_source("S");
  const NodeId det = net.add_detector("D");
  net.connect(src, det, 100.0);
  net.excite_logic(src, true);
  const auto r1 = net.solve(lossless());
  EXPECT_NEAR(r1.detector_phasor.at(det).real(), -1.0, 1e-9);  // phase pi
  net.excite_logic(src, false);
  const auto r0 = net.solve(lossless());
  EXPECT_NEAR(r0.detector_phasor.at(det).real(), 1.0, 1e-9);
}

TEST(WaveNetwork, ArgumentValidation) {
  WaveNetwork net;
  const NodeId a = net.add_source("A");
  const NodeId j = net.add_junction("J");
  EXPECT_THROW(net.connect(a, a, 10.0), std::invalid_argument);
  EXPECT_THROW(net.connect(a, 99, 10.0), std::out_of_range);
  EXPECT_THROW(net.connect(a, j, -1.0), std::invalid_argument);
  EXPECT_THROW(net.connect(a, j, 10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.excite(j, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.excite(a, -1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(net.find("nope"), std::invalid_argument);
  EXPECT_EQ(net.find("A"), a);
  PropagationModel bad;
  bad.k = 0.0;
  EXPECT_THROW(net.solve(bad), std::invalid_argument);
}

TEST(WaveNetwork, NodeMetadata) {
  WaveNetwork net;
  const NodeId a = net.add_source("A");
  const NodeId j = net.add_junction("J");
  EXPECT_EQ(net.kind(a), NodeKind::kSource);
  EXPECT_EQ(net.kind(j), NodeKind::kJunction);
  EXPECT_EQ(net.name(a), "A");
  EXPECT_EQ(net.node_count(), 2u);
  net.connect(a, j, 5.0);
  EXPECT_EQ(net.edge_count(), 1u);
}

// Property sweep: N equal-amplitude sources with phases 0/pi merging at a
// junction produce |sum of signs| — the physical basis of the majority gate.
class MajoritySuperposition : public ::testing::TestWithParam<int> {};

TEST_P(MajoritySuperposition, AmplitudeIsSignSum) {
  const int pattern = GetParam();
  WaveNetwork net;
  const NodeId j = net.add_junction("J");
  const NodeId d = net.add_detector("D");
  net.connect(j, d, 100.0);
  int sign_sum = 0;
  for (int i = 0; i < 3; ++i) {
    const NodeId s = net.add_source("S" + std::to_string(i));
    net.connect(s, j, 100.0);
    const bool one = (pattern >> i) & 1;
    net.excite_logic(s, one);
    sign_sum += one ? -1 : 1;
  }
  const auto r = net.solve(lossless());
  EXPECT_NEAR(std::abs(r.detector_phasor.at(d)),
              std::fabs(static_cast<double>(sign_sum)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, MajoritySuperposition,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace swsim::wavenet
