#include "perf/latency.h"

#include <gtest/gtest.h>

#include "mag/material.h"
#include "math/constants.h"
#include "perf/transducer.h"

namespace swsim::perf {
namespace {

using swsim::math::nm;
using swsim::math::ns;

wavenet::Dispersion paper_dispersion() {
  return wavenet::Dispersion(swsim::mag::Material::fecob(), nm(1));
}

TEST(Latency, PropagationDelayIsNanosecondScale) {
  const geom::TriangleGateLayout layout(
      geom::TriangleGateParams::paper_maj3());
  const double t = propagation_delay(layout, paper_dispersion());
  // Longest path ~1.5 um at v_g ~ 1.4 km/s -> ~1 ns.
  EXPECT_GT(t, ns(0.5));
  EXPECT_LT(t, ns(3.0));
}

TEST(Latency, XorIsFasterThanMaj) {
  const geom::TriangleGateLayout maj(geom::TriangleGateParams::paper_maj3());
  const geom::TriangleGateLayout x(geom::TriangleGateParams::paper_xor());
  const auto d = paper_dispersion();
  // The XOR's axis is shorter (no I3 to host) and its detectors sit at
  // 40 nm, so its longest path is shorter.
  EXPECT_LT(propagation_delay(x, d), propagation_delay(maj, d));
}

TEST(Latency, AssumptionIiiUnderestimatesDelay) {
  // The paper neglects propagation delay (assumption (iii)); for the
  // paper-scale device that misses more than half the true latency.
  const geom::TriangleGateLayout layout(
      geom::TriangleGateParams::paper_maj3());
  const LatencyBreakdown l = gate_latency(layout, paper_dispersion(),
                                          TransducerModel::me_cell().delay);
  EXPECT_GT(l.underestimate_factor(), 2.0);
  EXPECT_NEAR(l.total(), l.transducer_delay + l.propagation_delay, 1e-15);
}

TEST(Latency, ShrinksWithTheDevice) {
  auto small = geom::TriangleGateParams::paper_maj3();
  small.n_arm = 2;
  small.n_axis_half = 1;
  small.n_feed = 1;
  const auto d = paper_dispersion();
  EXPECT_LT(propagation_delay(geom::TriangleGateLayout(small), d),
            propagation_delay(
                geom::TriangleGateLayout(geom::TriangleGateParams::paper_maj3()),
                d));
}

}  // namespace
}  // namespace swsim::perf
