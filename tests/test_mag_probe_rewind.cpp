// Probe rewind under divergence recovery: a run that hits an injected NaN,
// rewinds, and re-solves at dt/2 must record the exact series — raw
// samples and demodulated envelope — that a clean dt/2 run records. Plus
// the bounded-probe (decimating) and mid-window demodulator checkpoint
// paths driven directly, without a solver in the loop.
#include "mag/probe.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <stdexcept>

#include "mag/simulation.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "robust/fault_injection.h"
#include "wavenet/dispersion.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

System small_system() {
  return System(Grid(4, 4, 1, 5e-9, 5e-9, 1e-9), Material::fecob());
}

double drive_frequency() {
  static const double f =
      wavenet::Dispersion(Material::fecob(), 1e-9).frequency(0.0) * 1.001;
  return f;
}

// Antenna-driven rig with one demodulated probe, the paper's detection
// geometry in miniature. Watchdog cadence 4 so an injected NaN is caught
// on the poisoned step itself.
RegionProbe& configure(Simulation& sim, double dt) {
  sim.add_standard_terms();
  Mask region(sim.system().grid(), true);
  const double f = drive_frequency();
  sim.add_term(
      std::make_unique<AntennaField>(region, 2e3, Vec3{1, 0, 0}, f, 0.0));
  auto& probe = sim.add_probe("port", region, 1.0 / (32.0 * f));
  probe.arm_demodulator(f, 32);
  sim.set_stepper(StepperKind::kRk4, dt);
  robust::WatchdogConfig dog;
  dog.cadence = 4;
  sim.set_watchdog(dog);
  return probe;
}

void expect_same_series(const RegionProbe& a, const RegionProbe& b) {
  EXPECT_EQ(a.times(), b.times());
  EXPECT_EQ(a.mx(), b.mx());
  EXPECT_EQ(a.my(), b.my());
  EXPECT_EQ(a.mz(), b.mz());
}

TEST(ProbeRewind, RecoveredRunMatchesCleanHalvedRunBitExact) {
  // Recovery rewinds probes (and their demodulators) to the run_guarded
  // call point and re-solves the whole interval at dt/2, so the recorded
  // series must be byte-identical to a run that used dt/2 from the start.
  Simulation recovered(small_system());
  auto& dirty = configure(recovered, ps(0.2));
  {
    robust::ScopedFaultPlan plan;
    plan->inject_nan_at_step(8);  // budget 1: only the first attempt is hit
    const auto status = recovered.run_guarded(ns(0.4));
    ASSERT_TRUE(status.is_ok()) << status.str();
  }
  EXPECT_NEAR(recovered.stepper_stats().last_dt, ps(0.1), 1e-18);

  Simulation clean(small_system());
  auto& reference = configure(clean, ps(0.1));
  const auto status = clean.run_guarded(ns(0.4));
  ASSERT_TRUE(status.is_ok()) << status.str();

  ASSERT_GT(reference.sample_count(), 0u);
  expect_same_series(dirty, reference);

  // The live lock-in envelope came through the rewind bit-exact too.
  const auto* d1 = dirty.demodulator();
  const auto* d2 = reference.demodulator();
  ASSERT_NE(d1, nullptr);
  ASSERT_NE(d2, nullptr);
  ASSERT_GT(d2->window_count(), 0u);
  EXPECT_EQ(d1->times(), d2->times());
  EXPECT_EQ(d1->amplitude(), d2->amplitude());
  EXPECT_EQ(d1->phase(), d2->phase());
}

// --- direct probe checkpointing, no solver ------------------------------

TEST(ProbeRewind, BoundedProbeValidatesMaxSamples) {
  const System sys = small_system();
  const Mask region(sys.grid(), true);
  EXPECT_THROW(RegionProbe("p", region, 1.0, 6), std::invalid_argument);
  EXPECT_THROW(RegionProbe("p", region, 1.0, 9), std::invalid_argument);
  EXPECT_NO_THROW(RegionProbe("p", region, 1.0, 8));
  EXPECT_NO_THROW(RegionProbe("p", region, 1.0, 0));  // unbounded
}

TEST(ProbeRewind, UnboundedProbeRestoreDropsTheTail) {
  const System sys = small_system();
  VectorField m(sys.grid(), Vec3{0, 0, 1});
  RegionProbe probe("p", Mask(sys.grid(), true), 1.0);
  for (std::size_t i = 0; i < 10; ++i) {
    m[0].x = std::sin(0.1 * static_cast<double>(i));
    probe.maybe_record(sys, m, static_cast<double>(i));
  }
  const auto cp = probe.checkpoint();
  EXPECT_FALSE(cp.full);  // unbounded: position only, no series snapshot
  for (std::size_t i = 10; i < 15; ++i) {
    probe.maybe_record(sys, m, static_cast<double>(i));
  }
  ASSERT_EQ(probe.sample_count(), 15u);
  probe.restore(cp);
  EXPECT_EQ(probe.sample_count(), 10u);
  EXPECT_DOUBLE_EQ(probe.times().back(), 9.0);
}

TEST(ProbeRewind, BoundedProbeCheckpointSurvivesDecimation) {
  // A decimation after the checkpoint rewrites earlier samples in place,
  // so the bounded checkpoint snapshots the series wholesale. Diverge past
  // another decimation, restore, replay — identical to a straight run.
  const System sys = small_system();
  VectorField m(sys.grid(), Vec3{0, 0, 1});
  const auto feed = [&](RegionProbe& p, std::size_t from, std::size_t to,
                        bool garbage) {
    for (std::size_t i = from; i < to; ++i) {
      m[0].x = garbage ? 99.0 : std::sin(0.1 * static_cast<double>(i));
      p.maybe_record(sys, m, static_cast<double>(i));
    }
  };

  RegionProbe straight("b", Mask(sys.grid(), true), 1.0, 8);
  feed(straight, 0, 40, false);
  // The bound held and the interval doubled along the way.
  EXPECT_LE(straight.sample_count(), 8u);
  EXPECT_GT(straight.sample_dt(), 1.0);

  RegionProbe rewound("b", Mask(sys.grid(), true), 1.0, 8);
  feed(rewound, 0, 20, false);  // already past the first decimation
  const auto cp = rewound.checkpoint();
  EXPECT_TRUE(cp.full);
  feed(rewound, 20, 40, true);  // the divergent branch
  rewound.restore(cp);
  feed(rewound, 20, 40, false);  // replay the true stream

  expect_same_series(rewound, straight);
  EXPECT_DOUBLE_EQ(rewound.sample_dt(), straight.sample_dt());
}

TEST(ProbeRewind, DemodulatorCheckpointRidesAlongMidWindow) {
  const System sys = small_system();
  VectorField m(sys.grid(), Vec3{0, 0, 1});
  const double f0 = 0.03;
  const auto feed = [&](RegionProbe& p, std::size_t from, std::size_t to,
                        bool garbage) {
    for (std::size_t i = from; i < to; ++i) {
      const double t = static_cast<double>(i);
      m[0].x = garbage ? 99.0 : std::cos(kTwoPi * f0 * t) + 0.01 * t;
      p.maybe_record(sys, m, t);
    }
  };

  RegionProbe straight("d", Mask(sys.grid(), true), 1.0);
  straight.arm_demodulator(f0, 8);
  feed(straight, 0, 32, false);

  RegionProbe rewound("d", Mask(sys.grid(), true), 1.0);
  rewound.arm_demodulator(f0, 8);
  feed(rewound, 0, 21, false);  // 2 windows + 5 samples into the third
  const auto cp = rewound.checkpoint();
  EXPECT_EQ(cp.demod.windows, 2u);
  EXPECT_EQ(cp.demod.in_window, 5u);
  feed(rewound, 21, 32, true);
  rewound.restore(cp);
  feed(rewound, 21, 32, false);

  expect_same_series(rewound, straight);
  ASSERT_NE(rewound.demodulator(), nullptr);
  EXPECT_EQ(rewound.demodulator()->times(), straight.demodulator()->times());
  EXPECT_EQ(rewound.demodulator()->amplitude(),
            straight.demodulator()->amplitude());
  EXPECT_EQ(rewound.demodulator()->phase(), straight.demodulator()->phase());
}

}  // namespace
}  // namespace swsim::mag
