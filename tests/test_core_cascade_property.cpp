// Property test: for randomly generated MAJ netlists, the wave-level
// cascade (with a normalizing repeater after every gate) computes exactly
// what the logic-level Circuit computes — the physical and logical models
// agree on arbitrary topologies, not just the hand-picked examples.
#include <gtest/gtest.h>

#include <vector>

#include "core/circuit.h"
#include "core/logic.h"
#include "core/wave_cascade.h"
#include "math/rng.h"

namespace swsim::core {
namespace {

using swsim::math::Pcg32;

struct RandomNetlist {
  Circuit circuit{2};
  WaveCascade cascade;
  std::vector<Signal> circuit_signals;
  std::vector<WaveCascade::SignalId> wave_signals;
  std::size_t primaries = 0;
  Signal out_logic = 0;
  WaveCascade::SignalId out_wave = 0;
};

// Builds the same random MAJ DAG in both models. Every gate output is
// repeatered in the wave model (normalization) and counted once in the
// fan-out budget of both models, keeping the structures legal.
RandomNetlist build_random(std::uint64_t seed, std::size_t n_primary,
                           std::size_t n_gates) {
  RandomNetlist net;
  Pcg32 rng(seed);

  for (std::size_t i = 0; i < n_primary; ++i) {
    net.circuit_signals.push_back(net.circuit.input("p" + std::to_string(i)));
    net.wave_signals.push_back(net.cascade.primary());
  }
  net.primaries = n_primary;

  // Track remaining fan-out budget per signal (primaries unlimited).
  std::vector<int> budget(n_primary, 1 << 20);

  auto pick = [&](std::size_t count) {
    // Choose among signals with remaining budget.
    for (;;) {
      const auto idx = rng.bounded(static_cast<std::uint32_t>(count));
      if (budget[idx] > 0) return static_cast<std::size_t>(idx);
    }
  };

  for (std::size_t g = 0; g < n_gates; ++g) {
    const std::size_t count = net.circuit_signals.size();
    const std::size_t a = pick(count);
    --budget[a];
    const std::size_t b = pick(count);
    --budget[b];
    const std::size_t c = pick(count);
    --budget[c];

    const Signal lo = net.circuit.add_maj3(net.circuit_signals[a],
                                           net.circuit_signals[b],
                                           net.circuit_signals[c]);
    auto [wo, wo2] = net.cascade.add_maj3(net.wave_signals[a],
                                          net.wave_signals[b],
                                          net.wave_signals[c]);
    (void)wo2;
    // Normalize so downstream gates see clean unit waves.
    const auto wr = net.cascade.add_repeater(wo);

    net.circuit_signals.push_back(lo);
    net.wave_signals.push_back(wr);
    // The logic output has budget 2, but one slot of the wave output is
    // consumed by the repeater, so advertise min(2, 2) on logic and 2 on
    // the repeater; use the smaller (2) for both to stay legal.
    budget.push_back(2);
  }

  net.out_logic = net.circuit_signals.back();
  net.out_wave = net.wave_signals.back();
  net.circuit.mark_output(net.out_logic, "y");
  return net;
}

class RandomCascade : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCascade, WaveModelMatchesLogicModel) {
  const std::uint64_t seed = GetParam();
  RandomNetlist net = build_random(seed, 4, 6);

  Pcg32 rng(seed ^ 0xabcdef);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<bool> inputs(net.primaries);
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i] = rng.bounded(2) == 1;
    }
    const bool logic = net.circuit.evaluate(inputs)[0];
    net.cascade.evaluate(inputs);
    const bool wave = net.cascade.read_phase(net.out_wave).logic;
    EXPECT_EQ(wave, logic) << "seed " << seed << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCascade,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace swsim::core
