// The cache-key contract: stable keys for identical configurations, a
// different key for ANY physics-relevant perturbation.
#include "engine/hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace swsim::engine {
namespace {

TEST(Fnv1a, DeterministicAndInputSensitive) {
  EXPECT_EQ(Fnv1a().u64(42).digest(), Fnv1a().u64(42).digest());
  EXPECT_NE(Fnv1a().u64(42).digest(), Fnv1a().u64(43).digest());
  EXPECT_NE(Fnv1a().u64(42).u64(7).digest(),
            Fnv1a().u64(7).u64(42).digest());  // order matters
}

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64 of "a" is a published constant; locks the algorithm itself.
  EXPECT_EQ(Fnv1a().bytes("a", 1).digest(), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, StringsAreLengthPrefixed) {
  EXPECT_NE(Fnv1a().str("ab").str("c").digest(),
            Fnv1a().str("a").str("bc").digest());
}

TEST(Fnv1a, BitVectorsAreSizePrefixed) {
  EXPECT_NE(Fnv1a().bits({true, false}).digest(),
            Fnv1a().bits({true, false, false}).digest());
  EXPECT_NE(Fnv1a().bits({true, false, true}).digest(),
            Fnv1a().bits({true, false, false}).digest());
}

TEST(Fnv1a, CanonicalFloats) {
  EXPECT_EQ(Fnv1a().f64(0.0).digest(), Fnv1a().f64(-0.0).digest());
  const double nan1 = std::nan("1");
  const double nan2 = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(Fnv1a().f64(nan1).digest(), Fnv1a().f64(nan2).digest());
  EXPECT_NE(Fnv1a().f64(1.0).digest(), Fnv1a().f64(std::nextafter(1.0, 2.0)).digest());
}

TEST(Fnv1a, CombineIsOrderDependent) {
  EXPECT_NE(combine(1, 2), combine(2, 1));
  EXPECT_EQ(combine(1, 2), combine(1, 2));
}

TEST(HashOf, TriangleParamsStableAndPerturbationSensitive) {
  const auto base = geom::TriangleGateParams::paper_maj3();
  const std::uint64_t key = hash_of(base);
  EXPECT_EQ(key, hash_of(base));  // same params -> same key, always

  auto p = base;
  p.wavelength *= 1.0 + 1e-12;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.width *= 1.0 + 1e-12;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.n_arm += 1;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.n_axis_half += 1;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.n_feed += 1;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.n_out += 0.5;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.arm_half_angle_deg += 1;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.has_third_input = !p.has_third_input;
  EXPECT_NE(key, hash_of(p));
  p = base;
  p.xor_out_distance *= 2;
  EXPECT_NE(key, hash_of(p));
}

TEST(HashOf, MaterialByPhysicsNotByName) {
  auto a = mag::Material::fecob();
  auto b = a;
  b.name = "renamed";
  EXPECT_EQ(hash_of(a), hash_of(b));  // same physics, same device
  b = a;
  b.ms *= 1.001;
  EXPECT_NE(hash_of(a), hash_of(b));
  b = a;
  b.aex *= 1.001;
  EXPECT_NE(hash_of(a), hash_of(b));
  b = a;
  b.alpha *= 1.001;
  EXPECT_NE(hash_of(a), hash_of(b));
  b = a;
  b.ku *= 1.001;
  EXPECT_NE(hash_of(a), hash_of(b));
}

TEST(HashOf, TriangleGateConfig) {
  core::TriangleGateConfig base;
  const std::uint64_t key = hash_of(base);
  EXPECT_EQ(key, hash_of(base));

  auto c = base;
  c.inverted = !c.inverted;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.threshold += 0.01;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.split = wavenet::SplitPolicy::kLossless;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.film_thickness *= 2;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.material = mag::Material::yig();
  EXPECT_NE(key, hash_of(c));
}

TEST(HashOf, MicromagConfigIncludesSeededPhysics) {
  core::MicromagGateConfig base;
  const std::uint64_t key = hash_of(base);
  EXPECT_EQ(key, hash_of(base));

  auto c = base;
  c.cell_size *= 1.5;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.dt *= 0.5;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.temperature = 300.0;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.thermal_seed += 1;
  EXPECT_NE(key, hash_of(c));
  c = base;
  c.roughness = geom::RoughnessParams{1e-9, 5e-9, 3};
  const std::uint64_t rough_key = hash_of(c);
  EXPECT_NE(key, rough_key);
  c.roughness->seed += 1;
  EXPECT_NE(rough_key, hash_of(c));
}

TEST(HashOf, VariabilityModel) {
  core::VariabilityModel base;
  base.sigma_phase = 0.1;
  base.sigma_amplitude = 0.05;
  const std::uint64_t key = hash_of(base);
  auto m = base;
  m.seed += 1;
  EXPECT_NE(key, hash_of(m));
  m = base;
  m.sigma_phase += 0.01;
  EXPECT_NE(key, hash_of(m));
}

}  // namespace
}  // namespace swsim::engine
