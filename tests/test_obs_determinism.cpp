// Observability must be a pure observer: arming every sink (trace,
// metrics, event log) cannot change a single byte of solver output.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/triangle_gate.h"
#include "core/validator.h"
#include "engine/batch_runner.h"
#include "engine/hash.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace swsim::engine {
namespace {

BatchRunner::GateFactory maj_factory() {
  core::TriangleGateConfig cfg;
  return [cfg] { return std::make_unique<core::TriangleMajGate>(cfg); };
}

std::string run_report(int jobs) {
  EngineConfig cfg;
  cfg.jobs = jobs;
  BatchRunner runner(cfg);
  const auto report =
      runner.run_truth_table(maj_factory(), hash_of(core::TriangleGateConfig{}));
  return core::format_report(report);
}

TEST(ObsDeterminism, ArmedSinksLeaveSolverOutputByteIdentical) {
  // Reference run: every sink off.
  obs::TraceSession::global().stop();
  obs::TraceSession::global().clear();
  obs::MetricsRegistry::disarm();
  const std::string plain = run_report(/*jobs=*/2);

  // Instrumented run: trace + metrics + debug-level event log all armed.
  std::ostringstream log_sink;
  obs::TraceSession::global().start();
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::arm();
  obs::EventLog::global().open_stream(&log_sink, obs::LogLevel::kDebug);

  const std::string traced = run_report(/*jobs=*/2);

  obs::EventLog::global().close();
  obs::MetricsRegistry::disarm();
  obs::TraceSession::global().stop();

  EXPECT_EQ(traced, plain);

  // And the instrumentation did actually observe the run: spans were
  // recorded and the engine counters moved — it was armed, just inert
  // with respect to the physics.
  EXPECT_GT(obs::TraceSession::global().event_count(), 0u);
  EXPECT_GT(
      obs::MetricsRegistry::global().counter("engine.jobs.done").value(), 0u);
  EXPECT_GT(
      obs::MetricsRegistry::global().counter("cache.misses").value(), 0u);

  obs::TraceSession::global().clear();
}

TEST(ObsDeterminism, RepeatedInstrumentedRunsAgreeAcrossJobCounts) {
  obs::TraceSession::global().start();
  obs::MetricsRegistry::arm();
  const std::string two = run_report(/*jobs=*/2);
  const std::string four = run_report(/*jobs=*/4);
  obs::MetricsRegistry::disarm();
  obs::TraceSession::global().stop();
  obs::TraceSession::global().clear();
  EXPECT_EQ(two, four);
}

}  // namespace
}  // namespace swsim::engine
