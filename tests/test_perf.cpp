// The paper's Table III cost model: ME-cell energetics, CMOS references,
// and the headline comparison numbers.
#include <gtest/gtest.h>

#include "math/constants.h"
#include "perf/cmos_ref.h"
#include "perf/comparison.h"
#include "perf/gate_cost.h"
#include "perf/transducer.h"

namespace swsim::perf {
namespace {

using namespace swsim::math;

TEST(Transducer, MeCellPulseEnergy) {
  // 34.4 nW x 100 ps = 3.44 aJ per driven cell (Sec. IV-D assumptions).
  const TransducerModel t = TransducerModel::me_cell();
  EXPECT_NEAR(to_aj(t.excitation_energy()), 3.44, 1e-9);
}

TEST(Transducer, Validation) {
  TransducerModel t = TransducerModel::me_cell();
  t.power = 0.0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(SwGateCost, TriangleMajMatchesTableIII) {
  const SwGateCost c = SwGateCost::triangle_maj3();
  EXPECT_EQ(c.total_cells(), 5);
  EXPECT_NEAR(to_aj(c.energy()), 10.32, 0.01);  // paper rounds to 10.3
  EXPECT_NEAR(to_ns(c.delay()), 0.42, 1e-9);    // paper rounds to 0.4
}

TEST(SwGateCost, TriangleXorMatchesTableIII) {
  const SwGateCost c = SwGateCost::triangle_xor();
  EXPECT_EQ(c.total_cells(), 4);
  EXPECT_NEAR(to_aj(c.energy()), 6.88, 0.01);  // paper: 6.9
}

TEST(SwGateCost, LadderMatchesTableIII) {
  const SwGateCost maj = SwGateCost::ladder_maj3();
  const SwGateCost x = SwGateCost::ladder_xor();
  EXPECT_EQ(maj.total_cells(), 6);
  EXPECT_EQ(x.total_cells(), 6);
  EXPECT_NEAR(to_aj(maj.energy()), 13.76, 0.01);  // paper: 13.7
  EXPECT_NEAR(to_aj(x.energy()), 13.76, 0.01);
  EXPECT_FALSE(maj.equal_level_excitation);
}

TEST(SwGateCost, Validation) {
  SwGateCost c = SwGateCost::triangle_maj3();
  c.excitation_cells = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(EnergySaving, PaperHeadlines) {
  // "the proposed structures provide energy reduction of 25%-50% in
  // comparison to the other 2-output spin-wave devices".
  const double maj_saving =
      energy_saving(SwGateCost::triangle_maj3(), SwGateCost::ladder_maj3());
  const double xor_saving =
      energy_saving(SwGateCost::triangle_xor(), SwGateCost::ladder_xor());
  EXPECT_NEAR(maj_saving, 0.25, 1e-9);
  EXPECT_NEAR(xor_saving, 0.50, 1e-9);
}

TEST(CmosGate, TableIIIValues) {
  const CmosGate m16 = CmosGate::reference(CmosNode::k16nm, GateFunction::kMaj3);
  EXPECT_EQ(m16.device_count, 16);
  EXPECT_NEAR(to_ns(m16.delay), 0.03, 1e-12);
  EXPECT_NEAR(to_aj(m16.energy), 466.0, 1e-9);

  const CmosGate x7 = CmosGate::reference(CmosNode::k7nm, GateFunction::kXor2);
  EXPECT_EQ(x7.device_count, 8);
  EXPECT_NEAR(to_ns(x7.delay), 0.01, 1e-12);
  EXPECT_NEAR(to_aj(x7.energy), 5.4, 1e-9);
}

TEST(CmosGate, AllReferencesPresent) {
  EXPECT_EQ(CmosGate::all_references().size(), 4u);
}

TEST(Comparison, TableHasEightRows) {
  const Comparison cmp;
  EXPECT_EQ(cmp.rows().size(), 8u);  // 4 CMOS + 2 ladder + 2 triangle
}

TEST(Comparison, HeadlineEnergyRatios) {
  const Comparison cmp;
  const HeadlineNumbers h = cmp.headlines();
  // Abstract: "energy reduction of 43x-0.8x when compared to the 16 nm and
  // 7 nm CMOS counterparts".
  EXPECT_NEAR(h.xor_energy_ratio_16nm, 44.0, 1.0);   // 303 / 6.88
  EXPECT_NEAR(h.xor_energy_ratio_7nm, 0.78, 0.02);   // 5.4 / 6.88
  EXPECT_NEAR(h.maj_energy_ratio_7nm, 1.59, 0.02);   // 16.4 / 10.32
  EXPECT_GT(h.maj_energy_ratio_16nm, 40.0);          // 466 / 10.32 = 45x
}

TEST(Comparison, HeadlineDelayOverheads) {
  const Comparison cmp;
  const HeadlineNumbers h = cmp.headlines();
  // "delay overhead of 11x-40x"; Sec. IV-D: 13x/20x (MAJ), 13x/40x (XOR).
  EXPECT_NEAR(h.maj_delay_overhead_16nm, 14.0, 0.5);  // 0.42 / 0.03
  EXPECT_NEAR(h.maj_delay_overhead_7nm, 21.0, 0.5);
  EXPECT_NEAR(h.xor_delay_overhead_16nm, 14.0, 0.5);
  EXPECT_NEAR(h.xor_delay_overhead_7nm, 42.0, 0.5);  // 0.42 / 0.01
}

TEST(Comparison, SavingsVsLadder) {
  const Comparison cmp;
  const HeadlineNumbers h = cmp.headlines();
  EXPECT_NEAR(h.maj_saving_vs_ladder, 0.25, 1e-9);
  EXPECT_NEAR(h.xor_saving_vs_ladder, 0.50, 1e-9);
}

TEST(Comparison, CustomTransducerScalesSwRowsOnly) {
  TransducerModel cheap = TransducerModel::me_cell();
  cheap.power = cheap.power / 2.0;
  const Comparison base;
  const Comparison improved(cheap);
  EXPECT_NEAR(improved.triangle_maj().energy(),
              base.triangle_maj().energy() / 2.0, 1e-30);
  // CMOS rows unchanged.
  EXPECT_DOUBLE_EQ(improved.rows()[0].energy, base.rows()[0].energy);
  // Savings vs ladder are scale-invariant.
  EXPECT_NEAR(improved.headlines().maj_saving_vs_ladder, 0.25, 1e-9);
}

TEST(Comparison, SwGatesSlowerButCheaperThan16nm) {
  // The qualitative shape of Table III: SW loses on delay, wins on energy
  // at 16 nm.
  const Comparison cmp;
  const HeadlineNumbers h = cmp.headlines();
  EXPECT_GT(h.maj_delay_overhead_16nm, 1.0);
  EXPECT_GT(h.maj_energy_ratio_16nm, 1.0);
  EXPECT_GT(h.xor_delay_overhead_7nm, 1.0);
  EXPECT_LT(h.xor_energy_ratio_7nm, 1.0);  // 7 nm CMOS XOR wins on energy
}

}  // namespace
}  // namespace swsim::perf
