// Event log: every line is standalone parseable JSON even with hostile
// strings, level filtering works, and shared timestamps flow through.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/json.h"

namespace swsim::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventLog::global().open_stream(&sink_, LogLevel::kDebug);
  }
  void TearDown() override { EventLog::global().close(); }
  std::ostringstream sink_;
};

TEST_F(EventLogTest, HostileStringsStayParseable) {
  auto& log = EventLog::global();
  const std::string hostile =
      "quote \" backslash \\ newline \n tab \t bell \x07 end";
  log.event(LogLevel::kWarn, "hostile")
      .str("message", hostile)
      .str("empty", "")
      .emit();

  const auto lines = lines_of(sink_.str());
  ASSERT_EQ(lines.size(), 1u);  // the embedded \n must have been escaped
  const JsonValue root = parse_json(lines[0]);
  EXPECT_EQ(root.find("event")->str(), "hostile");
  EXPECT_EQ(root.find("level")->str(), "warn");
  // Round-trip: the parsed value equals the original raw string.
  EXPECT_EQ(root.find("message")->str(), hostile);
  EXPECT_EQ(root.find("empty")->str(), "");
  EXPECT_GT(root.find("t_us")->number(), 0.0);
  ASSERT_NE(root.find("ts"), nullptr);
  EXPECT_NE(root.find("ts")->str().find("T"), std::string::npos);
}

TEST_F(EventLogTest, FieldTypesSerializeAsExpected) {
  EventLog::global()
      .event(LogLevel::kInfo, "typed")
      .num("ratio", 0.25)
      .uint("attempts", 3)
      .hex("key", 0x9e3779b97f4a7c15ULL)
      .boolean("spilled", true)
      .boolean("quarantined", false)
      .emit();

  const auto lines = lines_of(sink_.str());
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue root = parse_json(lines[0]);
  EXPECT_DOUBLE_EQ(root.find("ratio")->number(), 0.25);
  EXPECT_DOUBLE_EQ(root.find("attempts")->number(), 3.0);
  EXPECT_EQ(root.find("key")->str(), "0x9e3779b97f4a7c15");
  EXPECT_TRUE(root.find("spilled")->boolean());
  ASSERT_TRUE(root.find("quarantined")->is_bool());
  EXPECT_FALSE(root.find("quarantined")->boolean());
}

TEST_F(EventLogTest, MinLevelFiltersLowerSeverities) {
  auto& log = EventLog::global();
  log.open_stream(&sink_, LogLevel::kWarn);
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kWarn));
  EXPECT_TRUE(log.enabled(LogLevel::kError));

  log.event(LogLevel::kInfo, "dropped").emit();
  log.event(LogLevel::kError, "kept").emit();
  const auto lines = lines_of(sink_.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(parse_json(lines[0]).find("event")->str(), "kept");
}

TEST_F(EventLogTest, ClosedLogIsDisabledAndDropsEvents) {
  auto& log = EventLog::global();
  log.close();
  EXPECT_FALSE(log.enabled(LogLevel::kError));
  log.event(LogLevel::kError, "lost").emit();
  EXPECT_TRUE(sink_.str().empty());
}

TEST_F(EventLogTest, ExplicitTimestampOverridesTheStamp) {
  // Callers that share a timestamp with another record (FailureReport)
  // pass it explicitly; the line must carry exactly that stamp.
  const std::uint64_t t = 1754450000123456ULL;
  EventLog::global().event(LogLevel::kError, "job_failed", t).emit();
  const auto lines = lines_of(sink_.str());
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue root = parse_json(lines[0]);
  EXPECT_EQ(root.find("ts")->str(), "2025-08-06T03:13:20.123456Z");
  // Note: t_us is parsed as double; 1.75e15 is still exactly representable.
  EXPECT_DOUBLE_EQ(root.find("t_us")->number(),
                   static_cast<double>(t));
}

TEST(EventLogLevels, ParseAndPrintRoundTrip) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_STREQ(to_string(LogLevel::kWarn), "warn");
  EXPECT_THROW(parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW(parse_log_level(""), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::obs
