#include "math/field.h"

#include <gtest/gtest.h>

namespace swsim::math {
namespace {

Grid small_grid() { return Grid(3, 2, 1, 1e-9, 1e-9, 1e-9); }

TEST(ScalarField, InitialValue) {
  const ScalarField f(small_grid(), 2.5);
  EXPECT_EQ(f.size(), 6u);
  for (double v : f) EXPECT_DOUBLE_EQ(v, 2.5);
}

TEST(ScalarField, IndexedAccess) {
  ScalarField f(small_grid());
  f.at(2, 1) = 7.0;
  EXPECT_DOUBLE_EQ(f[f.grid().index(2, 1, 0)], 7.0);
}

TEST(VectorField, Fill) {
  VectorField f(small_grid());
  f.fill(Vec3{1, 2, 3});
  for (const Vec3& v : f) EXPECT_EQ(v, (Vec3{1, 2, 3}));
}

TEST(VectorField, PlusEquals) {
  VectorField a(small_grid(), Vec3{1, 0, 0});
  const VectorField b(small_grid(), Vec3{0, 2, 0});
  a += b;
  for (const Vec3& v : a) EXPECT_EQ(v, (Vec3{1, 2, 0}));
}

TEST(VectorField, MinusEquals) {
  VectorField a(small_grid(), Vec3{1, 1, 1});
  const VectorField b(small_grid(), Vec3{1, 0, 0});
  a -= b;
  for (const Vec3& v : a) EXPECT_EQ(v, (Vec3{0, 1, 1}));
}

TEST(VectorField, ScaleInPlace) {
  VectorField a(small_grid(), Vec3{1, -2, 0.5});
  a *= 2.0;
  for (const Vec3& v : a) EXPECT_EQ(v, (Vec3{2, -4, 1}));
}

TEST(VectorField, GridMismatchThrows) {
  VectorField a(small_grid());
  const VectorField b(Grid(2, 2, 1, 1e-9, 1e-9, 1e-9));
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(ScalarField, CopyIsDeep) {
  ScalarField a(small_grid(), 1.0);
  ScalarField b = a;
  b[0] = 42.0;
  EXPECT_DOUBLE_EQ(a[0], 1.0);
}

TEST(Mask, DefaultAllFalse) {
  const Mask m(small_grid());
  EXPECT_EQ(m.count(), 0u);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_FALSE(m[i]);
}

TEST(Mask, InitTrue) {
  const Mask m(small_grid(), true);
  EXPECT_EQ(m.count(), 6u);
}

TEST(Mask, SetAndAt) {
  Mask m(small_grid());
  m.set_at(1, 1, true);
  EXPECT_TRUE(m.at(1, 1));
  EXPECT_FALSE(m.at(0, 0));
  EXPECT_EQ(m.count(), 1u);
}

TEST(Mask, UnionIntersectionDifference) {
  Mask a(small_grid());
  Mask b(small_grid());
  a.set(0, true);
  a.set(1, true);
  b.set(1, true);
  b.set(2, true);

  Mask u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);

  Mask i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i[1]);

  Mask d = a;
  d.subtract(b);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d[0]);
}

TEST(Mask, GridMismatchThrows) {
  Mask a(small_grid());
  Mask b(Grid(4, 4, 1, 1e-9, 1e-9, 1e-9));
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::math
