// The probe.subscribe stream: ack-then-frames over a live daemon socket,
// bounded delivery, per-port filtering, drain rejection, and the healthz
// "probe" section — with synthetic frames pushed through the process-global
// ProbeHub, so no solver runs in these tests.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/physics.h"
#include "serve/client.h"
#include "serve/codec.h"
#include "serve/protocol.h"

namespace swsim::serve {
namespace {

namespace fs = std::filesystem;

ServerConfig test_config(const std::string& name) {
  ServerConfig cfg;
  const fs::path dir = fs::path(::testing::TempDir()) / "swsim_probe_test";
  fs::create_directories(dir);
  cfg.socket_path = (dir / (name + ".sock")).string();
  fs::remove(cfg.socket_path);
  cfg.dispatchers = 2;
  cfg.engine.jobs = 2;
  return cfg;
}

Request subscribe_request(std::uint64_t max_frames,
                          const std::string& filter = "",
                          std::uint64_t id = 1) {
  Request r;
  r.type = RequestType::kProbeSubscribe;
  r.id = id;
  r.client = "probe-test";
  r.probe_max_frames = max_frames;
  r.probe_filter = filter;
  return r;
}

obs::ProbeHub::Frame frame(const std::string& probe, std::uint64_t window,
                           double amplitude) {
  obs::ProbeHub::Frame f;
  f.job = "micromag MAJ3 101";
  f.probe = probe;
  f.window = window;
  f.t = 1e-9 * static_cast<double>(window);
  f.amplitude = amplitude;
  f.phase = 0.5;
  return f;
}

// Reads one raw stream frame off the subscribed socket and parses it.
obs::JsonValue next_stream_doc(int fd) {
  std::string payload, error;
  EXPECT_EQ(read_frame(fd, &payload, &error, IoDeadlines{10.0, 10.0}),
            ReadResult::kFrame)
      << error;
  return obs::parse_json(payload);
}

obs::JsonValue healthz(Client& client) {
  Request req;
  req.type = RequestType::kHealthz;
  Response resp;
  EXPECT_TRUE(client.call(req, &resp).is_ok());
  EXPECT_TRUE(resp.status.is_ok());
  return obs::parse_json(resp.payload_json);
}

TEST(ServeProbeStream, AckThenFramesThenEndAndTheSessionSurvives) {
  auto cfg = test_config("stream");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  // call() writes the request and reads exactly one response frame — the
  // ack. The hub subscription is live before the ack is written, so every
  // frame published after this point is delivered.
  Response ack;
  ASSERT_TRUE(client.call(subscribe_request(2), &ack).is_ok());
  ASSERT_TRUE(ack.status.is_ok()) << ack.status.str();
  EXPECT_EQ(ack.id, 1u);
  const auto granted = obs::parse_json(ack.payload_json);
  ASSERT_NE(granted.find("subscribed"), nullptr);
  EXPECT_TRUE(granted.find("subscribed")->boolean());

  auto& hub = obs::ProbeHub::global();
  ASSERT_TRUE(hub.active());
  hub.publish(frame("O1", 7, 0.25));
  auto converged = frame("O1", 8, 0.26);
  converged.converged = true;
  converged.converged_at = 6e-9;
  hub.publish(converged);

  const auto first = next_stream_doc(client.fd());
  EXPECT_EQ(first.find("type")->str(), "probe.frame");
  EXPECT_EQ(first.find("job")->str(), "micromag MAJ3 101");
  EXPECT_EQ(first.find("probe")->str(), "O1");
  EXPECT_EQ(first.find("window")->number(), 7.0);
  EXPECT_NEAR(first.find("t")->number(), 7e-9, 1e-14);
  EXPECT_NEAR(first.find("amplitude")->number(), 0.25, 1e-7);
  EXPECT_FALSE(first.find("converged")->boolean());
  EXPECT_EQ(first.find("converged_at"), nullptr);  // only present once set
  EXPECT_EQ(first.find("dropped")->number(), 0.0);

  const auto second = next_stream_doc(client.fd());
  EXPECT_TRUE(second.find("converged")->boolean());
  ASSERT_NE(second.find("converged_at"), nullptr);
  EXPECT_NEAR(second.find("converged_at")->number(), 6e-9, 1e-14);

  // max_frames reached: the stream closes with a terminal marker...
  const auto fin = next_stream_doc(client.fd());
  EXPECT_EQ(fin.find("type")->str(), "probe.end");
  EXPECT_EQ(fin.find("reason")->str(), "done");
  EXPECT_EQ(fin.find("frames")->number(), 2.0);

  // ...the server side unsubscribed...
  EXPECT_FALSE(hub.active());

  // ...and the socket is handed back to the request loop: the same
  // connection keeps answering, and healthz accounts for the stream.
  const auto health = healthz(client);
  const auto* probe = health.find("probe");
  ASSERT_NE(probe, nullptr);
  EXPECT_GE(probe->find("streams")->number(), 1.0);
  EXPECT_GE(probe->find("frames")->number(), 2.0);
  EXPECT_EQ(probe->find("active")->number(), 0.0);

  server.shutdown();
}

TEST(ServeProbeStream, FilterDeliversOnlyTheNamedPort) {
  auto cfg = test_config("filter");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response ack;
  ASSERT_TRUE(client.call(subscribe_request(1, "O2"), &ack).is_ok());
  ASSERT_TRUE(ack.status.is_ok());

  auto& hub = obs::ProbeHub::global();
  hub.publish(frame("O1", 1, 0.1));  // filtered out server-side
  hub.publish(frame("O2", 2, 0.2));

  const auto doc = next_stream_doc(client.fd());
  EXPECT_EQ(doc.find("type")->str(), "probe.frame");
  EXPECT_EQ(doc.find("probe")->str(), "O2");
  const auto fin = next_stream_doc(client.fd());
  EXPECT_EQ(fin.find("type")->str(), "probe.end");
  EXPECT_EQ(fin.find("frames")->number(), 1.0);

  server.shutdown();
}

TEST(ServeProbeStream, DrainingRejectsTheSubscriptionButKeepsTheSession) {
  auto cfg = test_config("drain");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  healthz(client);  // ensure the session is accepted before the drain
  server.begin_drain();

  Response rejected;
  ASSERT_TRUE(client.call(subscribe_request(1), &rejected).is_ok());
  EXPECT_EQ(rejected.status.code(), robust::StatusCode::kDraining);
  EXPECT_GT(rejected.retry_after_s, 0.0);
  EXPECT_FALSE(obs::ProbeHub::global().active());

  // No raw frames followed the rejection: built-ins still answer in order.
  const auto health = healthz(client);
  EXPECT_EQ(health.find("status")->str(), "draining");

  server.shutdown();
}

TEST(ServeProbeStream, ClientHangupEndsTheStreamWithoutHangingTheServer) {
  auto cfg = test_config("hangup");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  {
    Client client;
    ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
    // Unbounded stream (no max_frames, no duration)...
    Response ack;
    ASSERT_TRUE(client.call(subscribe_request(0), &ack).is_ok());
    ASSERT_TRUE(ack.status.is_ok());
    client.close();  // ...abandoned by the client.
  }

  // The stream notices the dead socket and unsubscribes; shutdown() would
  // hang (or TSan would flag the leaked session) if it did not. Poll
  // briefly: the server detects the hangup on its next 0.25 s tick.
  for (int i = 0; i < 40 && obs::ProbeHub::global().active(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_FALSE(obs::ProbeHub::global().active());
  server.shutdown();
}

}  // namespace
}  // namespace swsim::serve
