// Numerical health watchdogs: state scans, energy divergence, and the
// step-halving recovery loop in Simulation::run_guarded.
#include "robust/watchdog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "mag/simulation.h"
#include "math/constants.h"
#include "robust/cancel.h"
#include "robust/fault_injection.h"

namespace swsim::robust {
namespace {

using swsim::math::Grid;
using swsim::math::Mask;
using swsim::math::Vec3;
using swsim::math::VectorField;
using swsim::math::ps;

Grid tiny_grid() { return Grid(3, 2, 1, 5e-9, 5e-9, 1e-9); }

TEST(ScanMagnetization, CleanFieldPasses) {
  const VectorField m(tiny_grid(), Vec3{0, 0, 1});
  const Mask mask(tiny_grid(), true);
  EXPECT_TRUE(scan_magnetization(m, mask, 0.25).is_ok());
}

TEST(ScanMagnetization, FlagsNanWithCellIndex) {
  VectorField m(tiny_grid(), Vec3{0, 0, 1});
  m[4].y = std::numeric_limits<double>::quiet_NaN();
  const Mask mask(tiny_grid(), true);
  const Status s = scan_magnetization(m, mask, 0.25);
  EXPECT_EQ(s.code(), StatusCode::kNumericalDivergence);
  EXPECT_NE(s.message().find("cell 4"), std::string::npos);
}

TEST(ScanMagnetization, FlagsInf) {
  VectorField m(tiny_grid(), Vec3{0, 0, 1});
  m[0].z = std::numeric_limits<double>::infinity();
  const Mask mask(tiny_grid(), true);
  EXPECT_EQ(scan_magnetization(m, mask, 0.25).code(),
            StatusCode::kNumericalDivergence);
}

TEST(ScanMagnetization, IgnoresUnmaskedCells) {
  VectorField m(tiny_grid(), Vec3{0, 0, 1});
  m[2].x = std::numeric_limits<double>::quiet_NaN();
  Mask mask(tiny_grid(), true);
  mask.set(2, false);  // poisoned cell is outside the magnet
  EXPECT_TRUE(scan_magnetization(m, mask, 0.25).is_ok());
}

TEST(ScanMagnetization, FlagsNormDrift) {
  VectorField m(tiny_grid(), Vec3{0, 0, 1});
  m[1] = Vec3{0, 0, 1.5};  // |m| drifted by 0.5 > 0.25
  const Mask mask(tiny_grid(), true);
  const Status s = scan_magnetization(m, mask, 0.25);
  EXPECT_EQ(s.code(), StatusCode::kNumericalDivergence);
  EXPECT_NE(s.message().find("drift"), std::string::npos);
  // Drift check disabled: the same field passes (NaN scan only).
  EXPECT_TRUE(scan_magnetization(m, mask, 0.0).is_ok());
}

TEST(EnergyWatchdog, FirstCheckArmsReference) {
  EnergyWatchdog dog;
  EXPECT_TRUE(dog.check(1e-18, 1e3).is_ok());   // arms
  EXPECT_TRUE(dog.check(5e-16, 1e3).is_ok());   // 500x — under 1e3
  const Status s = dog.check(2e-15, 1e3);       // 2000x — over
  EXPECT_EQ(s.code(), StatusCode::kNumericalDivergence);
  EXPECT_NE(s.message().find("energy grew"), std::string::npos);
}

TEST(EnergyWatchdog, ResetRearms) {
  EnergyWatchdog dog;
  EXPECT_TRUE(dog.check(1e-18, 1e3).is_ok());
  dog.reset();
  // New reference: what previously looked like 1e6x growth is now baseline.
  EXPECT_TRUE(dog.check(1e-12, 1e3).is_ok());
  EXPECT_TRUE(dog.check(2e-12, 1e3).is_ok());
}

TEST(EnergyWatchdog, ZeroEnergyStartToleratesFirstRealEnergy) {
  EnergyWatchdog dog;
  EXPECT_TRUE(dog.check(0.0, 1e3).is_ok());    // ~zero: no signal yet
  EXPECT_TRUE(dog.check(1e-31, 1e3).is_ok());  // numerical noise: ratchets
  // The first physically meaningful energy (the drive ramping up) is a
  // healthy baseline, not "nine orders of magnitude of growth" over a
  // noise-level reference.
  EXPECT_TRUE(dog.check(1e-18, 1e3).is_ok());
  EXPECT_TRUE(dog.check(5e-16, 1e3).is_ok());   // 500x — under 1e3
  EXPECT_FALSE(dog.check(2e-15, 1e3).is_ok());  // 2000x — enforced
}

TEST(EnergyWatchdog, WarmupChecksOnlyRatchetTheReference) {
  EnergyWatchdog dog;
  EXPECT_TRUE(dog.check(1e-18, 10.0, 3).is_ok());
  EXPECT_TRUE(dog.check(1e-16, 10.0, 3).is_ok());  // 100x: still warming up
  EXPECT_TRUE(dog.check(5e-16, 10.0, 3).is_ok());  // ratchets the reference
  EXPECT_TRUE(dog.check(1e-15, 10.0, 3).is_ok());  // 2x the ratcheted max
  const Status s = dog.check(6e-15, 10.0, 3);      // 12x: now enforced
  EXPECT_EQ(s.code(), StatusCode::kNumericalDivergence);
}

TEST(EnergyWatchdog, NonFiniteEnergyFails) {
  EnergyWatchdog dog;
  EXPECT_EQ(dog.check(std::numeric_limits<double>::quiet_NaN(), 1e3).code(),
            StatusCode::kNumericalDivergence);
}

// --- run_guarded recovery ------------------------------------------------

mag::System small_system() {
  return mag::System(Grid(4, 4, 1, 5e-9, 5e-9, 1e-9),
                     mag::Material::fecob());
}

TEST(RunGuarded, RecoversFromInjectedNanByHalvingStep) {
  ScopedFaultPlan plan;
  plan->inject_nan_at_step(8);  // budget 1: only the first attempt is hit

  mag::Simulation sim(small_system());
  sim.add_standard_terms();
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.1));
  WatchdogConfig dog;
  dog.cadence = 4;  // detection lands on the poisoned step itself
  sim.set_watchdog(dog);

  const Status s = sim.run_guarded(ps(5));
  EXPECT_TRUE(s.is_ok()) << s.str();
  // The interval was re-solved end to end after the rewind.
  EXPECT_NEAR(sim.time(), ps(5), ps(0.2));
  // Recovery halved the step: the active stepper now runs at dt/2.
  EXPECT_NEAR(sim.stepper_stats().last_dt, ps(0.05), 1e-18);
}

TEST(RunGuarded, ExhaustsHalvingBudgetOnPersistentDivergence) {
  ScopedFaultPlan plan;
  // Enough budget that every retry (attempt 1 + 3 halvings) is poisoned.
  plan->inject_nan_at_step(8, /*times=*/10);

  mag::Simulation sim(small_system());
  sim.add_standard_terms();
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.1));
  WatchdogConfig dog;
  dog.cadence = 4;
  dog.max_step_halvings = 3;
  sim.set_watchdog(dog);

  const Status s = sim.run_guarded(ps(5));
  EXPECT_EQ(s.code(), StatusCode::kNumericalDivergence);
  EXPECT_NE(s.message().find("non-finite"), std::string::npos);
}

TEST(RunGuarded, CancellationIsReturnedNotRetried) {
  mag::Simulation sim(small_system());
  sim.add_standard_terms();
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.1));
  CancelToken token;
  token.request_cancel();  // cancelled before the first step
  sim.set_cancel_token(token);

  const Status s = sim.run_guarded(ps(5));
  EXPECT_EQ(s.code(), StatusCode::kCancelled);
  // No forward progress and no step-halving attempts were made.
  EXPECT_DOUBLE_EQ(sim.time(), 0.0);
}

TEST(RunGuarded, PlainRunThrowsWhereGuardedReturns) {
  ScopedFaultPlan plan;
  plan->inject_nan_at_step(8);

  mag::Simulation sim(small_system());
  sim.add_standard_terms();
  sim.set_stepper(mag::StepperKind::kRk4, ps(0.1));
  WatchdogConfig dog;
  dog.cadence = 4;
  sim.set_watchdog(dog);

  EXPECT_THROW(sim.run(ps(5)), SolveError);
}

}  // namespace
}  // namespace swsim::robust
