// Property fuzz: on randomly generated loop-free networks with unitary
// splitting and no damping, the total energy collected by the detectors
// never exceeds the energy injected by the sources — and with damping it
// strictly decreases with every added path length. Guards the propagation
// engine against amplitude-accounting regressions on arbitrary topologies.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "math/constants.h"
#include "math/rng.h"
#include "wavenet/network.h"

namespace swsim::wavenet {
namespace {

using swsim::math::Pcg32;

struct RandomNet {
  WaveNetwork net;
  std::vector<NodeId> sources;
  std::vector<NodeId> detectors;
  double injected_energy = 0.0;
};

// Builds a random tree: sources at the leaves of one side, detectors at
// the leaves of the other, junctions in between. Trees are loop-free so
// every ray terminates and the unitary-split energy bound is exact.
RandomNet build_tree(std::uint64_t seed) {
  RandomNet rn;
  Pcg32 rng(seed);
  const int n_sources = 1 + static_cast<int>(rng.bounded(4));
  const int n_detectors = 1 + static_cast<int>(rng.bounded(4));

  const NodeId hub = rn.net.add_junction("hub");
  for (int i = 0; i < n_sources; ++i) {
    NodeId attach = hub;
    // Optionally insert an intermediate junction chain.
    const int hops = static_cast<int>(rng.bounded(3));
    for (int h = 0; h < hops; ++h) {
      const NodeId j = rn.net.add_junction("j");
      rn.net.connect(j, attach, 10.0 + rng.next_double() * 100.0);
      attach = j;
    }
    const NodeId s = rn.net.add_source("s");
    rn.net.connect(s, attach, 10.0 + rng.next_double() * 100.0);
    const double amp = 0.2 + rng.next_double();
    rn.net.excite(s, amp, rng.uniform(0.0, swsim::math::kTwoPi));
    // Each source radiates into exactly one edge here, so it injects
    // amp^2 of energy into the network once.
    rn.injected_energy += amp * amp;
    rn.sources.push_back(s);
  }
  for (int i = 0; i < n_detectors; ++i) {
    NodeId attach = hub;
    const int hops = static_cast<int>(rng.bounded(3));
    for (int h = 0; h < hops; ++h) {
      const NodeId j = rn.net.add_junction("j");
      rn.net.connect(attach, j, 10.0 + rng.next_double() * 100.0);
      attach = j;
    }
    const NodeId d = rn.net.add_detector("d");
    rn.net.connect(attach, d, 10.0 + rng.next_double() * 100.0);
    rn.detectors.push_back(d);
  }
  return rn;
}

double detected_energy(const RandomNet& rn,
                       const WaveNetwork::SolveResult& result) {
  double acc = 0.0;
  for (const NodeId d : rn.detectors) {
    acc += std::norm(result.detector_phasor.at(d));
  }
  return acc;
}

class EnergyFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnergyFuzz, UnitaryLosslessNeverAmplifiesPerSource) {
  // The bound must be checked per source: with several coherent sources
  // lit, constructive interference at a sampled detector can legitimately
  // exceed the incoherent energy sum (the destructive counterparts are at
  // ports nobody samples). For a SINGLE source on a tree, every
  // source->detector path is unique and unitary splitting guarantees the
  // detectors collect at most what was injected.
  RandomNet rn = build_tree(GetParam());
  PropagationModel model;
  model.k = swsim::math::kTwoPi / 50.0;
  model.attenuation_length = 0.0;  // lossless
  model.split = SplitPolicy::kUnitary;
  model.amplitude_cutoff = 1e-9;

  Pcg32 rng(GetParam() * 977 + 5);
  for (std::size_t lit = 0; lit < rn.sources.size(); ++lit) {
    const double amp = 0.2 + rng.next_double();
    for (std::size_t i = 0; i < rn.sources.size(); ++i) {
      rn.net.excite(rn.sources[i], i == lit ? amp : 0.0, 0.3);
    }
    const auto result = rn.net.solve(model);
    EXPECT_LE(detected_energy(rn, result), amp * amp * (1.0 + 1e-9))
        << "source " << lit;
  }
}

TEST_P(EnergyFuzz, DampingOnlyReducesPerSource) {
  // Per source for the same reason as above: with several coherent
  // sources, damping can *break a destructive cancellation* at a sampled
  // detector and raise its reading. With one source on a tree (unique
  // paths), every detector amplitude strictly decreases under damping.
  RandomNet rn = build_tree(GetParam() ^ 0x5555);
  PropagationModel lossless;
  lossless.k = swsim::math::kTwoPi / 50.0;
  lossless.attenuation_length = 0.0;
  lossless.split = SplitPolicy::kUnitary;
  lossless.amplitude_cutoff = 1e-9;

  PropagationModel damped = lossless;
  damped.attenuation_length = 500.0;

  for (std::size_t lit = 0; lit < rn.sources.size(); ++lit) {
    for (std::size_t i = 0; i < rn.sources.size(); ++i) {
      rn.net.excite(rn.sources[i], i == lit ? 1.0 : 0.0, 0.0);
    }
    const double e_lossless = detected_energy(rn, rn.net.solve(lossless));
    const double e_damped = detected_energy(rn, rn.net.solve(damped));
    EXPECT_LE(e_damped, e_lossless * (1.0 + 1e-9)) << "source " << lit;
  }
}

TEST_P(EnergyFuzz, SolveIsDeterministic) {
  RandomNet rn = build_tree(GetParam() ^ 0xabcd);
  PropagationModel model;
  model.k = swsim::math::kTwoPi / 73.0;
  model.attenuation_length = 800.0;
  model.split = SplitPolicy::kUnitary;
  const auto a = rn.net.solve(model);
  const auto b = rn.net.solve(model);
  for (const NodeId d : rn.detectors) {
    EXPECT_EQ(a.detector_phasor.at(d), b.detector_phasor.at(d));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

}  // namespace
}  // namespace swsim::wavenet
