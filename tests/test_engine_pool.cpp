// ThreadPool and Scheduler: completion, work stealing under load,
// dependency ordering, failure propagation and cancellation cascades.
// These are the tests scripts/check.sh also runs under ThreadSanitizer.
#include "engine/scheduler.h"
#include "engine/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

namespace swsim::engine {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, TasksMaySubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      for (int j = 0; j < 5; ++j) {
        pool.submit([&count] { ++count; });
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, WaitIdleOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, UnevenTasksAreStolen) {
  // Many slow tasks land round-robin on 4 deques; with stealing, total
  // wall time approaches work/threads even though submission order is
  // unbalanced in task cost.
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&count, i] {
      std::this_thread::sleep_for(std::chrono::milliseconds(i % 4 == 0 ? 20 : 1));
      ++count;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, DefaultThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(hits.size(), 256, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForChunksDependOnlyOnSizeAndGrain) {
  // The kernel layer's determinism contract rests on this: the same
  // (n, grain) must produce the same chunk boundaries for ANY pool size,
  // so disjoint-write callers emit identical bytes regardless of threads.
  auto chunks_of = [](std::size_t threads, std::size_t n, std::size_t grain) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for(n, grain, [&](std::size_t b, std::size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(b, e);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  for (const std::size_t n :
       std::vector<std::size_t>{0, 1, 255, 256, 1000, 4096}) {
    const auto one = chunks_of(1, n, 256);
    EXPECT_EQ(one, chunks_of(2, n, 256)) << "n = " << n;
    EXPECT_EQ(one, chunks_of(7, n, 256)) << "n = " << n;
    // Chunks tile [0, n) in order with no gap or overlap.
    std::size_t pos = 0;
    for (const auto& [b, e] : one) {
      EXPECT_EQ(b, pos);
      EXPECT_LT(b, e);
      pos = e;
    }
    EXPECT_EQ(pos, n);
  }
}

TEST(ThreadPool, ParallelForCallerParticipates) {
  // parallel_for must make progress even when every worker is busy — the
  // calling thread runs chunks itself, which is what keeps the shared
  // engine-pool + intra-solve arrangement deadlock-free.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);  // backstop, never reached
  for (int i = 0; i < 2; ++i) {
    pool.submit([&release, deadline] {
      while (!release.load() && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::atomic<int> covered{0};
  pool.parallel_for(512, 64, [&](std::size_t b, std::size_t e) {
    covered += static_cast<int>(e - b);
  });
  EXPECT_EQ(covered.load(), 512);
  release = true;
  pool.wait_idle();
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(1024, 64,
                                 [&](std::size_t b, std::size_t) {
                                   if (b == 512) {
                                     throw std::runtime_error("chunk failed");
                                   }
                                 }),
               std::runtime_error);
  pool.wait_idle();  // pool stays usable after a throwing sweep
}

TEST(Scheduler, RunsIndependentJobs) {
  ThreadPool pool(4);
  Scheduler sched(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    sched.add("job", [&count] { ++count; });
  }
  sched.run();
  EXPECT_EQ(count.load(), 20);
  EXPECT_EQ(sched.count(JobState::kDone), 20u);
}

TEST(Scheduler, DependencyOrdering) {
  ThreadPool pool(4);
  Scheduler sched(pool);
  std::mutex mu;
  std::vector<int> order;
  const auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(id);
  };
  // Diamond: 0 -> {1, 2} -> 3.
  const JobId a = sched.add("a", [&] { record(0); });
  const JobId b = sched.add("b", [&] { record(1); }, {a});
  const JobId c = sched.add("c", [&] { record(2); }, {a});
  sched.add("d", [&] { record(3); }, {b, c});
  sched.run();

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0);
  EXPECT_EQ(order.back(), 3);
}

TEST(Scheduler, RecordsTimings) {
  ThreadPool pool(2);
  Scheduler sched(pool);
  const JobId a = sched.add("sleepy", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  sched.run();
  EXPECT_GE(sched.job(a).seconds, 0.005);
  EXPECT_GE(sched.total_job_seconds(), 0.005);
  EXPECT_EQ(sched.job(a).state, JobState::kDone);
}

TEST(Scheduler, FailureCancelsDependentsAndThrows) {
  ThreadPool pool(2);
  Scheduler sched(pool);
  std::atomic<bool> downstream_ran{false};
  const JobId bad = sched.add("bad", [] {
    throw std::runtime_error("boom");
  });
  const JobId dep =
      sched.add("dep", [&] { downstream_ran = true; }, {bad});
  const JobId dep2 =
      sched.add("dep2", [&] { downstream_ran = true; }, {dep});
  const JobId ok = sched.add("ok", [] {});

  EXPECT_THROW(sched.run(), std::runtime_error);
  EXPECT_FALSE(downstream_ran.load());
  EXPECT_EQ(sched.job(bad).state, JobState::kFailed);
  EXPECT_EQ(sched.job(bad).error, "boom");
  EXPECT_EQ(sched.job(dep).state, JobState::kCancelled);
  EXPECT_EQ(sched.job(dep2).state, JobState::kCancelled);
  EXPECT_EQ(sched.job(ok).state, JobState::kDone);
}

TEST(Scheduler, CancelBeforeRunCascades) {
  ThreadPool pool(2);
  Scheduler sched(pool);
  std::atomic<int> count{0};
  const JobId a = sched.add("a", [&] { ++count; });
  const JobId b = sched.add("b", [&] { ++count; }, {a});
  const JobId c = sched.add("c", [&] { ++count; }, {b});
  const JobId free_job = sched.add("free", [&] { ++count; });
  sched.cancel(a);
  sched.run();

  EXPECT_EQ(count.load(), 1);  // only the free job ran
  EXPECT_EQ(sched.job(a).state, JobState::kCancelled);
  EXPECT_EQ(sched.job(b).state, JobState::kCancelled);
  EXPECT_EQ(sched.job(c).state, JobState::kCancelled);
  EXPECT_EQ(sched.job(free_job).state, JobState::kDone);
}

TEST(Scheduler, DependingOnDeadJobIsDeadOnArrival) {
  ThreadPool pool(2);
  Scheduler sched(pool);
  std::atomic<bool> ran{false};
  const JobId a = sched.add("a", [] {});
  sched.cancel(a);
  const JobId b = sched.add("b", [&] { ran = true; }, {a});
  sched.run();
  EXPECT_EQ(sched.job(b).state, JobState::kCancelled);
  EXPECT_FALSE(ran.load());
}

TEST(Scheduler, RejectsUnknownDependencyAndDoubleRun) {
  ThreadPool pool(1);
  Scheduler sched(pool);
  EXPECT_THROW(sched.add("x", [] {}, {42}), std::invalid_argument);
  sched.add("ok", [] {});
  sched.run();
  EXPECT_THROW(sched.run(), std::logic_error);
  EXPECT_THROW(sched.add("late", [] {}), std::logic_error);
}

}  // namespace
}  // namespace swsim::engine
