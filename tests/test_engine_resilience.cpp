// Fault-tolerant engine behavior, one test per failure class: a job that
// throws, a divergence that retry absorbs, a deadline expiry, a corrupted
// cache spill, a quarantined configuration — plus the determinism of
// partial batches across job counts.
#include "engine/batch_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/triangle_gate.h"
#include "core/validator.h"
#include "core/variability.h"
#include "engine/hash.h"
#include "engine/result_cache.h"
#include "engine/scheduler.h"
#include "engine/thread_pool.h"
#include "robust/fault_injection.h"

namespace swsim::engine {
namespace {

using robust::ScopedFaultPlan;
using robust::StatusCode;

BatchRunner::GateFactory maj_factory() {
  core::TriangleGateConfig cfg;
  return [cfg] { return std::make_unique<core::TriangleMajGate>(cfg); };
}

std::uint64_t maj_key() { return hash_of(core::TriangleGateConfig{}); }

// --- failure class 1: a job throws mid-batch -----------------------------

TEST(EngineResilience, ThrownJobYieldsPartialBatchWithReport) {
  ScopedFaultPlan plan;
  plan->inject_throw_in_job("row 2");

  const auto factory = maj_factory();
  auto serial_gate = factory();
  const auto serial = core::validate_gate(*serial_gate);

  EngineConfig cfg;
  cfg.jobs = 4;
  BatchRunner runner(cfg);
  const TruthTableOutcome outcome =
      runner.run_truth_table_checked(factory, maj_key());

  EXPECT_FALSE(outcome.ok());
  EXPECT_FALSE(outcome.report.all_pass);
  ASSERT_EQ(outcome.report.rows.size(), serial.rows.size());

  // Every healthy row matches the serial reference exactly.
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const auto& row = outcome.report.rows[i];
    if (i == 2) {
      EXPECT_EQ(row.status.code(), StatusCode::kInternal);
      EXPECT_FALSE(row.pass_o1);
      continue;
    }
    EXPECT_TRUE(row.status.is_ok()) << "row " << i;
    EXPECT_EQ(row.pass_o1, serial.rows[i].pass_o1);
    EXPECT_EQ(row.pass_o2, serial.rows[i].pass_o2);
    EXPECT_EQ(row.outputs.o1.amplitude, serial.rows[i].outputs.o1.amplitude);
    EXPECT_EQ(row.outputs.o1.phase, serial.rows[i].outputs.o1.phase);
  }

  // The report names the job and its cause.
  ASSERT_EQ(outcome.failures.size(), 1u);
  const auto& f = outcome.failures.failures()[0];
  EXPECT_NE(f.job.find("row 2"), std::string::npos);
  EXPECT_EQ(f.status.code(), StatusCode::kInternal);
  EXPECT_NE(f.status.message().find("injected fault"), std::string::npos);
  EXPECT_EQ(runner.stats().jobs_failed, 1u);
}

TEST(EngineResilience, UncheckedEntryPointStillThrows) {
  ScopedFaultPlan plan;
  plan->inject_throw_in_job("row 0");
  BatchRunner runner(EngineConfig{});
  EXPECT_THROW(runner.run_truth_table(maj_factory(), maj_key()),
               robust::SolveError);
}

// --- failure class 2: transient divergence absorbed by retry -------------

TEST(EngineResilience, RetryRecoversTransientDivergence) {
  ScopedFaultPlan plan;
  plan->inject_divergence_in_job("row 1");  // budget 1: retry runs clean

  EngineConfig cfg;
  cfg.jobs = 2;
  cfg.max_retries = 1;
  BatchRunner runner(cfg);
  const TruthTableOutcome outcome =
      runner.run_truth_table_checked(maj_factory(), maj_key());

  EXPECT_TRUE(outcome.ok()) << outcome.failures.str();
  EXPECT_TRUE(outcome.report.all_pass);
  EXPECT_EQ(runner.stats().jobs_retried, 1u);
  EXPECT_EQ(runner.stats().jobs_failed, 0u);
}

TEST(EngineResilience, YieldRetryDoesNotDoubleCountPartialChunks) {
  core::TriangleGateConfig gate_cfg;
  const BatchRunner::TriangleFactory factory = [gate_cfg] {
    return std::make_unique<core::TriangleMajGate>(gate_cfg);
  };
  core::VariabilityModel model;
  model.sigma_phase = 0.35;
  model.sigma_amplitude = 0.08;
  model.seed = 11;

  EngineConfig cfg;
  cfg.jobs = 2;
  cfg.max_retries = 1;
  cfg.retry_backoff_seconds = 0.01;
  BatchRunner clean_runner(cfg);
  const YieldOutcome clean = clean_runner.run_yield_checked(factory, model, 32);
  ASSERT_TRUE(clean.ok());

  // Divergence at trial 5 — *mid-chunk*, after trials 0..4 of chunk 0
  // already accumulated. The retried attempt re-runs the chunk from trial
  // 0; its statistics must replace the aborted attempt's partial sums,
  // not add to them (the double-count would inflate passing and margins).
  ScopedFaultPlan plan;
  plan->inject_divergence_at_trial(5);
  BatchRunner runner(cfg);
  const YieldOutcome retried = runner.run_yield_checked(factory, model, 32);

  EXPECT_TRUE(retried.ok()) << retried.failures.str();
  EXPECT_EQ(runner.stats().jobs_retried, 1u);
  EXPECT_EQ(retried.report.trials, 32u);
  EXPECT_EQ(retried.report.passing, clean.report.passing);
  EXPECT_EQ(retried.report.worst_row_failures, clean.report.worst_row_failures);
  EXPECT_EQ(retried.report.yield, clean.report.yield);
  EXPECT_EQ(retried.report.mean_worst_margin, clean.report.mean_worst_margin);
  EXPECT_LE(retried.report.yield, 1.0);
}

TEST(EngineResilience, RetryBudgetExhaustionIsTerminal) {
  ScopedFaultPlan plan;
  plan->inject_divergence_in_job("row 1", /*times=*/3);

  EngineConfig cfg;
  cfg.max_retries = 1;  // 2 attempts < 3 armed faults
  cfg.quarantine_threshold = 0;
  BatchRunner runner(cfg);
  const TruthTableOutcome outcome =
      runner.run_truth_table_checked(maj_factory(), maj_key());

  EXPECT_FALSE(outcome.ok());
  ASSERT_EQ(outcome.failures.size(), 1u);
  EXPECT_EQ(outcome.failures.failures()[0].status.code(),
            StatusCode::kNumericalDivergence);
  EXPECT_EQ(outcome.failures.failures()[0].attempts, 2u);
}

TEST(EngineResilience, BackoffWaitsOffThePoolSoReadyJobsProceed) {
  // One worker, one flaky job with a long backoff, and quick jobs that
  // become ready during the wait. The backoff must be served by the
  // run_all() timer loop, not by the worker sleeping in the pool queue —
  // otherwise "late" (dependency-released) jobs stall behind the sleep.
  ThreadPool pool(1);
  Scheduler sched(pool);

  JobOptions retry;
  retry.max_retries = 1;
  retry.backoff_seconds = 0.4;
  std::atomic<int> flaky_attempts{0};
  std::chrono::steady_clock::time_point retry_started{};
  std::chrono::steady_clock::time_point late_done{};
  const JobId flaky = sched.add(
      "flaky",
      [&](const robust::CancelToken&) {
        if (flaky_attempts.fetch_add(1) == 0) {
          throw robust::SolveError(robust::Status::error(
              StatusCode::kNumericalDivergence, "transient"));
        }
        retry_started = std::chrono::steady_clock::now();
      },
      retry);
  const JobId quick = sched.add("quick", [] {});
  // Released only after "quick" finishes — i.e. queued behind any worker
  // that a sleeping backoff would have parked.
  const JobId late = sched.add(
      "late", [&] { late_done = std::chrono::steady_clock::now(); },
      {quick});

  EXPECT_TRUE(sched.run_all().is_ok());
  EXPECT_EQ(sched.job(flaky).state, JobState::kDone);
  EXPECT_EQ(sched.job(flaky).attempts, 2u);
  EXPECT_EQ(sched.job(late).state, JobState::kDone);
  // "late" ran during the 0.4 s backoff, well before the retry attempt.
  EXPECT_LT(late_done, retry_started);
}

// --- failure class 3: deadline expiry ------------------------------------

TEST(EngineResilience, TimedOutJobIsTerminalAndDependentsCancelled) {
  ThreadPool pool(2);
  Scheduler sched(pool);

  JobOptions timed;
  timed.timeout_seconds = 0.1;
  std::atomic<bool> observed_cancel{false};
  const JobId slow = sched.add(
      "stalled",
      [&observed_cancel](const robust::CancelToken& token) {
        // Cooperative stall: holds the worker until the deadline watchdog
        // trips the token, then returns (result would be discarded).
        const auto give_up =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (!token.cancelled() &&
               std::chrono::steady_clock::now() < give_up) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        observed_cancel = token.cancelled();
      },
      timed);
  const JobId dependent =
      sched.add("downstream", [] {}, {slow});

  const robust::Status status = sched.run_all();
  EXPECT_EQ(status.code(), StatusCode::kTimeout);
  EXPECT_EQ(sched.job(slow).state, JobState::kTimedOut);
  EXPECT_EQ(sched.job(slow).status.code(), StatusCode::kTimeout);
  EXPECT_NE(sched.job(slow).status.message().find("deadline"),
            std::string::npos);
  EXPECT_EQ(sched.job(dependent).state, JobState::kCancelled);
  EXPECT_TRUE(observed_cancel.load());  // the token really was tripped
}

TEST(EngineResilience, ExpiredDeadlineShedsJobBeforeItRuns) {
  // not_after already in the past at pickup: the job must be shed without
  // its closure ever running — the serve layer's "don't burn engine work
  // for a client that stopped waiting" contract.
  ThreadPool pool(2);
  Scheduler sched(pool);
  JobOptions expired;
  expired.not_after =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  std::atomic<bool> ran{false};
  const JobId doomed = sched.add("doomed", [&ran] { ran = true; }, expired);
  const JobId dependent = sched.add("downstream", [] {}, JobOptions{},
                                    {doomed});

  const robust::Status status = sched.run_all();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(sched.job(doomed).state, JobState::kTimedOut);
  EXPECT_EQ(sched.job(doomed).status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(sched.job(doomed).status.message().find("before the job"),
            std::string::npos);
  EXPECT_EQ(sched.job(dependent).state, JobState::kCancelled);
}

TEST(EngineResilience, MidRunDeadlineTripsTheRunningJob) {
  ThreadPool pool(2);
  Scheduler sched(pool);
  JobOptions opts;
  opts.not_after =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  std::atomic<bool> observed_cancel{false};
  const JobId slow = sched.add(
      "slow",
      [&observed_cancel](const robust::CancelToken& token) {
        const auto give_up =
            std::chrono::steady_clock::now() + std::chrono::seconds(10);
        while (!token.cancelled() &&
               std::chrono::steady_clock::now() < give_up) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        observed_cancel = token.cancelled();
      },
      opts);

  const robust::Status status = sched.run_all();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(sched.job(slow).state, JobState::kTimedOut);
  EXPECT_EQ(sched.job(slow).status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(observed_cancel.load());
}

TEST(EngineResilience, DeadlineShedsDoNotQuarantineTheConfig) {
  // Three whole batches shed on an expired deadline — far past the strike
  // threshold if sheds counted. They must not: the config is healthy, the
  // *client's budget* was the problem, and the next funded run solves.
  EngineConfig cfg;
  cfg.jobs = 2;
  BatchRunner runner(cfg);
  for (int i = 0; i < 3; ++i) {
    const TruthTableOutcome shed = runner.run_truth_table_checked(
        maj_factory(), maj_key(), {}, "budgetless", /*deadline_seconds=*/1e-9);
    EXPECT_FALSE(shed.ok());
    ASSERT_FALSE(shed.failures.failures().empty());
    EXPECT_EQ(shed.failures.failures().front().status.code(),
              StatusCode::kDeadlineExceeded);
  }
  const TruthTableOutcome healthy =
      runner.run_truth_table_checked(maj_factory(), maj_key());
  EXPECT_TRUE(healthy.ok()) << healthy.failures.str();
  EXPECT_TRUE(healthy.report.all_pass);
}

TEST(EngineResilience, BatchTimeoutLandsInFailureReport) {
  ScopedFaultPlan plan;
  plan->inject_stall_in_job("row 3", /*seconds=*/2.0);

  EngineConfig cfg;
  cfg.jobs = 4;
  cfg.job_timeout_seconds = 0.15;
  BatchRunner runner(cfg);
  const TruthTableOutcome outcome =
      runner.run_truth_table_checked(maj_factory(), maj_key());

  EXPECT_FALSE(outcome.ok());
  ASSERT_EQ(outcome.failures.size(), 1u);
  const auto& f = outcome.failures.failures()[0];
  EXPECT_NE(f.job.find("row 3"), std::string::npos);
  EXPECT_EQ(f.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(runner.stats().jobs_timed_out, 1u);
  // Healthy rows still came back.
  EXPECT_EQ(outcome.report.rows.size(), 8u);
  EXPECT_TRUE(outcome.report.rows[0].status.is_ok());
}

// --- failure class 4: corrupted cache spill ------------------------------

TEST(EngineResilience, CorruptSpillIsDetectedEvictedAndMissed) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "swsim_corrupt_test";
  std::filesystem::remove_all(dir);

  ResultCache cache(1, dir.string());
  cache.insert(1, {1.5, 2.5, 3.5});
  cache.insert(2, {9.0});  // evicts key 1 -> spilled
  const auto spill = dir / ResultCache::spill_filename(1);
  ASSERT_TRUE(std::filesystem::exists(spill));

  robust::FaultPlan::flip_bytes(spill.string(), /*seed=*/7);

  // The checksum catches the corruption: miss, counter bumped, file gone.
  EXPECT_FALSE(cache.lookup(1).has_value());
  EXPECT_EQ(cache.stats().spill_corrupt, 1u);
  EXPECT_FALSE(std::filesystem::exists(spill));

  // Recompute-and-reinsert makes the entry healthy again.
  cache.insert(1, {1.5, 2.5, 3.5});
  cache.insert(3, {4.0});  // spill key 1 again, uncorrupted this time
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (std::vector<double>{1.5, 2.5, 3.5}));

  std::filesystem::remove_all(dir);
}

TEST(EngineResilience, CorruptSpillRecomputesByteIdenticalReport) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "swsim_corrupt_batch";
  std::filesystem::remove_all(dir);

  const auto factory = maj_factory();
  auto cold_gate = factory();
  const std::string cold =
      core::format_report(core::validate_gate(*cold_gate));

  EngineConfig cfg;
  cfg.jobs = 2;
  cfg.cache_capacity = 1;  // force rows out to disk
  cfg.spill_dir = dir.string();
  {
    BatchRunner warmup(cfg);
    warmup.run_truth_table(factory, maj_key());
  }

  // Corrupt every spilled row deterministically.
  std::size_t corrupted = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    robust::FaultPlan::flip_bytes(entry.path().string(), /*seed=*/13);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  // A fresh runner over the same spill dir detects the corruption, evicts,
  // recomputes — and the result is byte-identical to the cold run.
  BatchRunner runner(cfg);
  const auto report = runner.run_truth_table(factory, maj_key());
  EXPECT_EQ(core::format_report(report), cold);
  EXPECT_GE(runner.stats().cache.spill_corrupt, 1u);
  EXPECT_EQ(runner.stats().cache.hits, 0u);  // nothing corrupt was served

  std::filesystem::remove_all(dir);
}

// --- failure class 5: quarantine of poison configurations ----------------

TEST(EngineResilience, RepeatOffenderConfigIsQuarantined) {
  ScopedFaultPlan plan;
  // Two failed jobs in one batch reach the default threshold of 2.
  plan->inject_throw_in_job("row 1");
  plan->inject_throw_in_job("row 5");

  EngineConfig cfg;
  cfg.jobs = 2;
  cfg.use_cache = false;
  BatchRunner runner(cfg);

  const auto first = runner.run_truth_table_checked(maj_factory(), maj_key());
  EXPECT_EQ(first.failures.size(), 2u);
  EXPECT_TRUE(runner.is_quarantined(maj_key()));
  EXPECT_EQ(runner.stats().quarantined_configs, 1u);
  // The batch that crossed the threshold flags its failures as quarantining.
  EXPECT_TRUE(first.failures.failures()[0].quarantined);

  // A later call with the same key is refused outright: no jobs run.
  const auto before = runner.stats().jobs_executed;
  const auto second = runner.run_truth_table_checked(maj_factory(), maj_key());
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(runner.stats().jobs_executed, before);
  ASSERT_FALSE(second.failures.empty());
  EXPECT_EQ(second.failures.failures()[0].status.code(),
            StatusCode::kQuarantined);
  for (const auto& row : second.report.rows) {
    EXPECT_EQ(row.status.code(), StatusCode::kQuarantined);
  }

  // Other configurations are unaffected.
  core::TriangleGateConfig xor_cfg;
  xor_cfg.params = geom::TriangleGateParams::paper_xor();
  const BatchRunner::GateFactory xor_factory = [xor_cfg] {
    return std::make_unique<core::TriangleXorGate>(xor_cfg);
  };
  const auto other =
      runner.run_truth_table_checked(xor_factory, hash_of(xor_cfg));
  EXPECT_TRUE(other.ok());
}

// --- partial-batch determinism -------------------------------------------

TEST(EngineResilience, PartialBatchIsDeterministicAcrossJobCounts) {
  std::string ref;
  for (const std::size_t jobs : {1u, 4u}) {
    ScopedFaultPlan plan;
    plan->inject_throw_in_job("row 2");
    EngineConfig cfg;
    cfg.jobs = jobs;
    cfg.use_cache = false;
    cfg.quarantine_threshold = 0;
    BatchRunner runner(cfg);
    const auto outcome =
        runner.run_truth_table_checked(maj_factory(), maj_key());
    std::string rendered = core::format_report(outcome.report);
    for (auto row : outcome.failures.csv_rows()) {
      // Wall-clock columns (time, t_us, wall_s) legitimately differ
      // between runs; everything else must be byte-identical.
      row[5] = row[6] = row[8] = "";
      for (const auto& cell : row) rendered += cell + "|";
    }
    if (ref.empty()) {
      ref = rendered;
    } else {
      EXPECT_EQ(rendered, ref) << "jobs = " << jobs;
    }
  }
}

TEST(EngineResilience, YieldSurvivesLostChunkWithHonestStatistics) {
  core::TriangleGateConfig gate_cfg;
  const BatchRunner::TriangleFactory factory = [gate_cfg] {
    return std::make_unique<core::TriangleMajGate>(gate_cfg);
  };
  core::VariabilityModel model;
  model.sigma_phase = 0.35;
  model.sigma_amplitude = 0.08;
  model.seed = 11;

  double ref_yield = -1.0;
  for (const std::size_t jobs : {1u, 4u}) {
    ScopedFaultPlan plan;
    plan->inject_divergence_in_job("trials 16");  // loses trials 16..31

    EngineConfig cfg;
    cfg.jobs = jobs;
    BatchRunner runner(cfg);
    const YieldOutcome outcome =
        runner.run_yield_checked(factory, model, 100);

    EXPECT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.requested_trials, 100u);
    EXPECT_EQ(outcome.report.trials, 84u);  // 100 minus the lost chunk
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_NE(outcome.failures.failures()[0].job.find("trials 16"),
              std::string::npos);
    EXPECT_GE(outcome.report.yield, 0.0);
    EXPECT_LE(outcome.report.yield, 1.0);
    // Per-trial RNG streams: the surviving trials are bit-identical for
    // any job count, so the partial yield is too.
    if (ref_yield < 0.0) {
      ref_yield = outcome.report.yield;
    } else {
      EXPECT_EQ(outcome.report.yield, ref_yield);
    }
  }
}

}  // namespace
}  // namespace swsim::engine
