#include "mag/thermal_field.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mag/llg.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"
#include "math/stats.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

Grid tiny() { return Grid(4, 4, 1, 5e-9, 5e-9, 1e-9); }

TEST(ThermalField, RejectsNegativeTemperature) {
  EXPECT_THROW(ThermalField(-1.0), std::invalid_argument);
}

TEST(ThermalField, ZeroTemperatureAddsNothing) {
  const System sys(tiny(), Material::fecob());
  ThermalField th(0.0);
  th.advance_step(1e-13);
  VectorField h(sys.grid());
  th.accumulate(sys, sys.uniform_magnetization({0, 0, 1}), 0.0, h);
  for (const Vec3& v : h) EXPECT_EQ(v, (Vec3{}));
}

TEST(ThermalField, NoFieldBeforeFirstStep) {
  // Until advance_step provides a dt, sigma is undefined and the term must
  // stay silent instead of injecting unscaled noise.
  const System sys(tiny(), Material::fecob());
  ThermalField th(300.0);
  VectorField h(sys.grid());
  th.accumulate(sys, sys.uniform_magnetization({0, 0, 1}), 0.0, h);
  for (const Vec3& v : h) EXPECT_EQ(v, (Vec3{}));
}

TEST(ThermalField, SigmaScalesAsSqrtTOverDt) {
  const System sys(tiny(), Material::fecob());
  ThermalField t300(300.0);
  ThermalField t75(75.0);
  const double dt = 1e-13;
  EXPECT_NEAR(t300.sigma(sys, dt) / t75.sigma(sys, dt), 2.0, 1e-12);
  EXPECT_NEAR(t300.sigma(sys, dt) / t300.sigma(sys, 4.0 * dt), 2.0, 1e-12);
}

TEST(ThermalField, SigmaMatchesBrownFormula) {
  const System sys(tiny(), Material::fecob());
  ThermalField th(300.0);
  const double dt = 1e-13;
  const Material& m = sys.material();
  const double expected =
      std::sqrt(2.0 * m.alpha * kBoltzmann * 300.0 /
                (kMu0 * kGamma * m.ms * sys.grid().cell_volume() * dt));
  EXPECT_NEAR(th.sigma(sys, dt), expected, expected * 1e-12);
}

TEST(ThermalField, NoiseStatisticsMatchSigma) {
  const System sys(tiny(), Material::fecob());
  ThermalField th(300.0, 11);
  const double dt = 1e-13;
  const auto m = sys.uniform_magnetization({0, 0, 1});
  std::vector<double> samples;
  for (int step = 0; step < 500; ++step) {
    th.advance_step(dt);
    VectorField h(sys.grid());
    th.accumulate(sys, m, 0.0, h);
    for (const Vec3& v : h) {
      samples.push_back(v.x);
      samples.push_back(v.y);
      samples.push_back(v.z);
    }
  }
  const Summary s = summarize(samples);
  const double sigma = th.sigma(sys, dt);
  EXPECT_NEAR(s.mean, 0.0, sigma * 0.05);
  EXPECT_NEAR(s.stddev, sigma, sigma * 0.05);
}

TEST(ThermalField, NoiseHeldWithinStepRedrawnAcrossSteps) {
  const System sys(tiny(), Material::fecob());
  ThermalField th(300.0, 3);
  const auto m = sys.uniform_magnetization({0, 0, 1});
  th.advance_step(1e-13);
  VectorField h1(sys.grid()), h2(sys.grid()), h3(sys.grid());
  th.accumulate(sys, m, 0.0, h1);
  th.accumulate(sys, m, 0.0, h2);  // same step: identical realization
  EXPECT_EQ(h1[0], h2[0]);
  th.advance_step(1e-13);
  th.accumulate(sys, m, 0.0, h3);  // new step: fresh draw
  EXPECT_NE(h1[0], h3[0]);
}

TEST(ThermalField, EnergyIsNaN) {
  const System sys(tiny(), Material::fecob());
  ThermalField th(300.0);
  EXPECT_TRUE(std::isnan(th.energy(sys, sys.uniform_magnetization({0, 0, 1}))));
}

TEST(ThermalField, EquilibriumTiltGrowsWithTemperature) {
  // Integrate a strongly damped macrospin in a field at two temperatures;
  // the average transverse fluctuation must grow with T.
  auto fluctuation = [&](double temperature) {
    Material mat = Material::fecob();
    mat.alpha = 0.1;
    const Grid g(1, 1, 1, 5e-9, 5e-9, 5e-9);
    const System sys(g, mat);
    std::vector<std::unique_ptr<FieldTerm>> terms;
    terms.push_back(std::make_unique<UniformZeemanField>(Vec3{0, 0, 8e5}));
    terms.push_back(std::make_unique<ThermalField>(temperature, 17));
    VectorField m(g);
    m[0] = Vec3{0, 0, 1};
    Stepper stepper(StepperKind::kHeun, 5e-14);
    double t = 0.0;
    double acc = 0.0;
    std::size_t n = 0;
    for (int i = 0; i < 4000; ++i) {
      t += stepper.step(sys, terms, m, t);
      if (i > 500) {
        acc += m[0].x * m[0].x + m[0].y * m[0].y;
        ++n;
      }
    }
    return acc / static_cast<double>(n);
  };
  const double cold = fluctuation(30.0);
  const double hot = fluctuation(300.0);
  EXPECT_GT(hot, 3.0 * cold);
  EXPECT_LT(hot, 1e-2);  // still a small perturbation
}

}  // namespace
}  // namespace swsim::mag
