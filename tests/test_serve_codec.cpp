// Wire framing: whole frames or clean failures, never half a document.
// Exercised over real socketpairs so partial reads/writes follow the same
// kernel paths the daemon sees.
#include "serve/codec.h"

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>

namespace swsim::serve {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a != -1) ::close(a);
    if (b != -1) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
};

TEST(ServeCodec, RoundTripsPayloadsOfManySizes) {
  SocketPair sp;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{4096}}) {
    const std::string sent(n, 'x');
    std::string error;
    ASSERT_TRUE(write_frame(sp.a, sent, &error)) << error;
    std::string got;
    ASSERT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame) << error;
    EXPECT_EQ(got, sent);
  }
}

TEST(ServeCodec, LargePayloadRoundTripsAcrossSmallSocketBuffers) {
  // 512 KiB exceeds any default socket buffer, so both ends must loop over
  // partial transfers; a writer thread keeps the pipe moving.
  SocketPair sp;
  std::string sent(512u * 1024u, '\0');
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>(i * 131u % 251u);
  }
  std::thread writer([&] {
    std::string error;
    EXPECT_TRUE(write_frame(sp.a, sent, &error)) << error;
  });
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame) << error;
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(ServeCodec, BackToBackFramesStayDelimited) {
  SocketPair sp;
  std::string error;
  ASSERT_TRUE(write_frame(sp.a, "first", &error));
  ASSERT_TRUE(write_frame(sp.a, "", &error));
  ASSERT_TRUE(write_frame(sp.a, "third", &error));
  std::string got;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "first");
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "");
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "third");
}

TEST(ServeCodec, EofOnFrameBoundaryIsOrderlyClose) {
  SocketPair sp;
  std::string error;
  ASSERT_TRUE(write_frame(sp.a, "bye", &error));
  sp.close_a();
  std::string got;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "bye");
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kEof);
}

TEST(ServeCodec, EofMidFrameIsAnErrorNotAHangup) {
  // A length prefix promising 100 bytes followed by a close: the reader
  // must report a torn frame, not pretend the peer hung up cleanly.
  SocketPair sp;
  const unsigned char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  ASSERT_EQ(::send(sp.a, "short", 5, 0), 5);
  sp.close_a();
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kError);
  EXPECT_FALSE(error.empty());
}

TEST(ServeCodec, EofInsideLengthPrefixIsAnError) {
  SocketPair sp;
  const unsigned char half[2] = {0, 0};
  ASSERT_EQ(::send(sp.a, half, 2, 0), 2);
  sp.close_a();
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kError);
}

TEST(ServeCodec, OversizeLengthFailsFastWithoutAllocating) {
  // A garbage prefix (e.g. an HTTP request aimed at our port) decodes to a
  // huge length; the reader rejects it instead of allocating gigabytes.
  SocketPair sp;
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kError);
  EXPECT_NE(error.find("frame"), std::string::npos) << error;
}

TEST(ServeCodec, WriteToClosedPeerFails) {
  SocketPair sp;
  ::close(sp.b);
  sp.b = -1;
  // The first write may succeed into the buffer; keep writing until the
  // kernel reports the broken pipe (write_frame must not crash on EPIPE —
  // the daemon masks SIGPIPE via MSG_NOSIGNAL / per-write flags).
  std::string error;
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !write_frame(sp.a, std::string(4096, 'x'), &error);
  }
  EXPECT_TRUE(failed);
}

TEST(ServeCodec, MaxFrameBoundaryIsExact) {
  SocketPair sp;
  std::string error;
  std::thread writer([&] {
    std::string payload(kMaxFrameBytes, 'm');
    std::string werr;
    EXPECT_TRUE(write_frame(sp.a, payload, &werr)) << werr;
  });
  std::string got;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame) << error;
  EXPECT_EQ(got.size(), kMaxFrameBytes);
  writer.join();

  // One byte over is refused by the writer before anything hits the wire.
  std::string over(kMaxFrameBytes + 1, 'o');
  EXPECT_FALSE(write_frame(sp.a, over, &error));
}

TEST(ServeCodec, PrefixSplitAtEveryByteBoundaryStillFrames) {
  // The 4-byte length prefix can arrive fragmented at any point — a
  // kernel quirk or a deliberately torn sender. Every split must produce
  // the same whole frame.
  const std::string payload = "split-me";
  for (std::size_t split = 0; split <= 4; ++split) {
    SocketPair sp;
    const auto n = static_cast<std::uint32_t>(payload.size());
    const unsigned char prefix[4] = {
        static_cast<unsigned char>(n >> 24),
        static_cast<unsigned char>(n >> 16),
        static_cast<unsigned char>(n >> 8),
        static_cast<unsigned char>(n),
    };
    std::thread writer([&] {
      if (split > 0) ASSERT_EQ(::send(sp.a, prefix, split, 0), (ssize_t)split);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      if (split < 4) {
        ASSERT_EQ(::send(sp.a, prefix + split, 4 - split,
                         0),
                  (ssize_t)(4 - split));
      }
      ASSERT_EQ(::send(sp.a, payload.data(), payload.size(), 0),
                (ssize_t)payload.size());
    });
    std::string got;
    std::string error;
    EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame)
        << "split=" << split << ": " << error;
    EXPECT_EQ(got, payload) << "split=" << split;
    writer.join();
  }
}

namespace {
void noop_handler(int) {}
}  // namespace

TEST(ServeCodec, EintrMidFrameIsInvisibleToTheReader) {
  // Signals without SA_RESTART make blocking reads fail EINTR mid-frame;
  // the read loop must resume, not report a torn frame.
  struct sigaction sa{};
  struct sigaction old{};
  sa.sa_handler = noop_handler;
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  SocketPair sp;
  const std::string payload(64u * 1024u, 'e');
  std::atomic<bool> done{false};
  std::string got;
  std::string error;
  ReadResult result = ReadResult::kError;
  std::thread reader([&] {
    result = read_frame(sp.b, &got, &error);
    done.store(true);
  });
  const pthread_t handle = reader.native_handle();

  // Trickle the frame while peppering the reader with signals so some
  // land inside read()/poll().
  const auto n = static_cast<std::uint32_t>(payload.size());
  const unsigned char prefix[4] = {
      static_cast<unsigned char>(n >> 24), static_cast<unsigned char>(n >> 16),
      static_cast<unsigned char>(n >> 8), static_cast<unsigned char>(n)};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  std::size_t off = 0;
  while (off < payload.size()) {
    pthread_kill(handle, SIGUSR1);
    const std::size_t chunk = std::min<std::size_t>(4096, payload.size() - off);
    const ssize_t rc = ::send(sp.a, payload.data() + off, chunk, 0);
    ASSERT_GT(rc, 0);
    off += static_cast<std::size_t>(rc);
  }
  for (int i = 0; i < 16 && !done.load(); ++i) {
    pthread_kill(handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reader.join();
  ::sigaction(SIGUSR1, &old, nullptr);
  EXPECT_EQ(result, ReadResult::kFrame) << error;
  EXPECT_EQ(got, payload);
}

TEST(ServeCodec, TimedReadReportsIdleTimeoutOnSilence) {
  SocketPair sp;
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error, IoDeadlines{0.05, 1.0}),
            ReadResult::kTimeout);
  EXPECT_NE(error.find("idle"), std::string::npos) << error;
  // The session is still usable afterwards: a frame sent now reads fine.
  ASSERT_TRUE(write_frame(sp.a, "late", &error)) << error;
  EXPECT_EQ(read_frame(sp.b, &got, &error, IoDeadlines{1.0, 1.0}),
            ReadResult::kFrame);
  EXPECT_EQ(got, "late");
}

TEST(ServeCodec, TimedReadCutsOffASlowLorisMidFrame) {
  // Header promising 100 bytes, then one byte and silence: the frame
  // budget (not the idle budget) must trip.
  SocketPair sp;
  const unsigned char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  ASSERT_EQ(::send(sp.a, "x", 1, 0), 1);
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error, IoDeadlines{5.0, 0.05}),
            ReadResult::kTimeout);
  EXPECT_NE(error.find("mid-frame"), std::string::npos) << error;
}

TEST(ServeCodec, TimedWriteFailsWhenThePeerStopsReading) {
  // Fill the socket buffers against a non-reading peer; the timed write
  // must fail with a timeout instead of blocking forever.
  SocketPair sp;
  std::string error;
  bool timed_out = false;
  for (int i = 0; i < 64 && !timed_out; ++i) {
    if (!write_frame(sp.a, std::string(256u * 1024u, 'w'), &error,
                     IoDeadlines{0.0, 0.05})) {
      timed_out = error.find("timed out") != std::string::npos;
      break;
    }
  }
  EXPECT_TRUE(timed_out) << error;
}

TEST(ServeCodec, UntimedSignatureStillWaitsOutASlowStart) {
  // Zero deadlines reproduce the untimed behaviour: a frame that begins
  // after a pause still arrives.
  SocketPair sp;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    std::string werr;
    EXPECT_TRUE(write_frame(sp.a, "patience", &werr)) << werr;
  });
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error, IoDeadlines{}), ReadResult::kFrame)
      << error;
  EXPECT_EQ(got, "patience");
  writer.join();
}

}  // namespace
}  // namespace swsim::serve
