// Wire framing: whole frames or clean failures, never half a document.
// Exercised over real socketpairs so partial reads/writes follow the same
// kernel paths the daemon sees.
#include "serve/codec.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>
#include <thread>

namespace swsim::serve {
namespace {

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a != -1) ::close(a);
    if (b != -1) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
};

TEST(ServeCodec, RoundTripsPayloadsOfManySizes) {
  SocketPair sp;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{4096}}) {
    const std::string sent(n, 'x');
    std::string error;
    ASSERT_TRUE(write_frame(sp.a, sent, &error)) << error;
    std::string got;
    ASSERT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame) << error;
    EXPECT_EQ(got, sent);
  }
}

TEST(ServeCodec, LargePayloadRoundTripsAcrossSmallSocketBuffers) {
  // 512 KiB exceeds any default socket buffer, so both ends must loop over
  // partial transfers; a writer thread keeps the pipe moving.
  SocketPair sp;
  std::string sent(512u * 1024u, '\0');
  for (std::size_t i = 0; i < sent.size(); ++i) {
    sent[i] = static_cast<char>(i * 131u % 251u);
  }
  std::thread writer([&] {
    std::string error;
    EXPECT_TRUE(write_frame(sp.a, sent, &error)) << error;
  });
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame) << error;
  writer.join();
  EXPECT_EQ(got, sent);
}

TEST(ServeCodec, BackToBackFramesStayDelimited) {
  SocketPair sp;
  std::string error;
  ASSERT_TRUE(write_frame(sp.a, "first", &error));
  ASSERT_TRUE(write_frame(sp.a, "", &error));
  ASSERT_TRUE(write_frame(sp.a, "third", &error));
  std::string got;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "first");
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "");
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "third");
}

TEST(ServeCodec, EofOnFrameBoundaryIsOrderlyClose) {
  SocketPair sp;
  std::string error;
  ASSERT_TRUE(write_frame(sp.a, "bye", &error));
  sp.close_a();
  std::string got;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame);
  EXPECT_EQ(got, "bye");
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kEof);
}

TEST(ServeCodec, EofMidFrameIsAnErrorNotAHangup) {
  // A length prefix promising 100 bytes followed by a close: the reader
  // must report a torn frame, not pretend the peer hung up cleanly.
  SocketPair sp;
  const unsigned char prefix[4] = {0, 0, 0, 100};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  ASSERT_EQ(::send(sp.a, "short", 5, 0), 5);
  sp.close_a();
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kError);
  EXPECT_FALSE(error.empty());
}

TEST(ServeCodec, EofInsideLengthPrefixIsAnError) {
  SocketPair sp;
  const unsigned char half[2] = {0, 0};
  ASSERT_EQ(::send(sp.a, half, 2, 0), 2);
  sp.close_a();
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kError);
}

TEST(ServeCodec, OversizeLengthFailsFastWithoutAllocating) {
  // A garbage prefix (e.g. an HTTP request aimed at our port) decodes to a
  // huge length; the reader rejects it instead of allocating gigabytes.
  SocketPair sp;
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(sp.a, prefix, 4, 0), 4);
  std::string got;
  std::string error;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kError);
  EXPECT_NE(error.find("frame"), std::string::npos) << error;
}

TEST(ServeCodec, WriteToClosedPeerFails) {
  SocketPair sp;
  ::close(sp.b);
  sp.b = -1;
  // The first write may succeed into the buffer; keep writing until the
  // kernel reports the broken pipe (write_frame must not crash on EPIPE —
  // the daemon masks SIGPIPE via MSG_NOSIGNAL / per-write flags).
  std::string error;
  bool failed = false;
  for (int i = 0; i < 64 && !failed; ++i) {
    failed = !write_frame(sp.a, std::string(4096, 'x'), &error);
  }
  EXPECT_TRUE(failed);
}

TEST(ServeCodec, MaxFrameBoundaryIsExact) {
  SocketPair sp;
  std::string error;
  std::thread writer([&] {
    std::string payload(kMaxFrameBytes, 'm');
    std::string werr;
    EXPECT_TRUE(write_frame(sp.a, payload, &werr)) << werr;
  });
  std::string got;
  EXPECT_EQ(read_frame(sp.b, &got, &error), ReadResult::kFrame) << error;
  EXPECT_EQ(got.size(), kMaxFrameBytes);
  writer.join();

  // One byte over is refused by the writer before anything hits the wire.
  std::string over(kMaxFrameBytes + 1, 'o');
  EXPECT_FALSE(write_frame(sp.a, over, &error));
}

}  // namespace
}  // namespace swsim::serve
