#include "mag/material.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

TEST(Material, FecobMatchesPaperParameters) {
  const Material m = Material::fecob();
  EXPECT_DOUBLE_EQ(m.ms, 1.1e6);        // 1100 kA/m
  EXPECT_DOUBLE_EQ(m.aex, 18.5e-12);    // 18.5 pJ/m
  EXPECT_DOUBLE_EQ(m.alpha, 0.004);
  EXPECT_DOUBLE_EQ(m.ku, 0.832e6);      // 0.832 MJ/m^3
  EXPECT_NO_THROW(m.validate());
}

TEST(Material, ExchangeLength) {
  const Material m = Material::fecob();
  // l_ex = sqrt(2 A / (mu0 Ms^2)) ~ 4.93 nm for FeCoB.
  EXPECT_NEAR(m.exchange_length(), 4.93e-9, 0.1e-9);
}

TEST(Material, AnisotropyField) {
  const Material m = Material::fecob();
  // H_ani = 2 Ku / (mu0 Ms) ~ 1.204e6 A/m.
  EXPECT_NEAR(m.anisotropy_field(), 2.0 * m.ku / (kMu0 * m.ms), 1.0);
  EXPECT_NEAR(m.anisotropy_field(), 1.204e6, 0.01e6);
}

TEST(Material, InternalFieldPositiveForFecob) {
  // The paper's film has PMA strong enough to overcome the thin-film demag:
  // H_ani - Ms > 0, which is what makes forward-volume waves possible.
  const Material m = Material::fecob();
  EXPECT_GT(m.internal_field(), 0.0);
  EXPECT_NEAR(m.internal_field(), m.anisotropy_field() - m.ms, 1.0);
}

TEST(Material, InternalFieldWithAppliedField) {
  const Material m = Material::fecob();
  EXPECT_NEAR(m.internal_field(1e5) - m.internal_field(0.0), 1e5, 1e-6);
}

TEST(Material, YigHasLowDamping) {
  const Material y = Material::yig();
  EXPECT_LT(y.alpha, 1e-3);
  EXPECT_NO_THROW(y.validate());
}

TEST(Material, PermalloyValidates) {
  EXPECT_NO_THROW(Material::permalloy().validate());
}

TEST(Material, ValidationRejectsBadValues) {
  Material m = Material::fecob();
  m.ms = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = Material::fecob();
  m.aex = -1e-12;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = Material::fecob();
  m.alpha = 1.5;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = Material::fecob();
  m.alpha = -0.1;
  EXPECT_THROW(m.validate(), std::invalid_argument);

  m = Material::fecob();
  m.ku = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace swsim::mag
