#include "math/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "math/stats.h"

namespace swsim::math {
namespace {

TEST(Pcg32, Deterministic) {
  Pcg32 a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Pcg32, NextDoubleInRange) {
  Pcg32 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Pcg32, UniformRespectsBounds) {
  Pcg32 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Pcg32, UniformMeanIsCentered) {
  Pcg32 rng(11);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.uniform(0.0, 1.0);
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.5, 0.01);
  EXPECT_NEAR(s.stddev, std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Pcg32, NormalMomentsMatch) {
  Pcg32 rng(13);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = rng.normal();
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.0, 0.02);
  EXPECT_NEAR(s.stddev, 1.0, 0.02);
}

TEST(Pcg32, NormalWithMeanAndSigma) {
  Pcg32 rng(17);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal(10.0, 2.0);
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 10.0, 0.05);
  EXPECT_NEAR(s.stddev, 2.0, 0.05);
}

TEST(Pcg32, NormalTailsExist) {
  // ~0.27% of samples should exceed 3 sigma; check we get some but not many.
  Pcg32 rng(19);
  int beyond = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (std::fabs(rng.normal()) > 3.0) ++beyond;
  }
  EXPECT_GT(beyond, 100);
  EXPECT_LT(beyond, 600);
}

TEST(Pcg32, BoundedStaysInBound) {
  Pcg32 rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(7), 7u);
  }
}

TEST(Pcg32, BoundedZeroReturnsZero) {
  Pcg32 rng(29);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Pcg32, BoundedIsRoughlyUniform) {
  Pcg32 rng(31);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 5.0, n * 0.01);
  }
}

}  // namespace
}  // namespace swsim::math
