// Multilayer (nz > 1) coverage: the solver's field terms and steppers are
// written for 3D grids; these tests exercise the z-axis paths that the
// single-layer device runs never touch.
#include <gtest/gtest.h>

#include <memory>

#include "mag/anisotropy_field.h"
#include "mag/demag_field.h"
#include "mag/exchange_field.h"
#include "mag/simulation.h"
#include "mag/zeeman_field.h"
#include "math/constants.h"

namespace swsim::mag {
namespace {

using namespace swsim::math;

TEST(Multilayer, ExchangeCouplesAcrossZ) {
  // Two stacked layers twisted against each other feel a restoring
  // exchange field along z.
  const Grid g(2, 2, 2, 4e-9, 4e-9, 2e-9);
  const System sys(g, Material::fecob());
  VectorField m(g);
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 2; ++x) {
      m.at(x, y, 0) = Vec3{0, 0, 1};
      m.at(x, y, 1) = normalized(Vec3{0.5, 0, 1});
    }
  }
  VectorField h(g);
  ExchangeField ex;
  ex.accumulate(sys, m, 0.0, h);
  // Bottom layer is pulled toward the tilted top layer (+x component).
  EXPECT_GT(h.at(0, 0, 0).x, 0.0);
  // Top layer is pulled back toward +z alignment (-x component).
  EXPECT_LT(h.at(0, 0, 1).x, 0.0);
}

TEST(Multilayer, UniformThickFilmStaysUniform) {
  // A 4-layer PMA film in its ground state must be stationary under the
  // full term set including the Newell demag.
  const Grid g(8, 8, 4, 4e-9, 4e-9, 1e-9);
  System sys(g, Material::fecob());
  Simulation sim(std::move(sys));
  sim.add_term(std::make_unique<ExchangeField>());
  sim.add_term(std::make_unique<UniaxialAnisotropyField>(Vec3{0, 0, 1}));
  sim.add_term(std::make_unique<NewellDemagField>(sim.system()));
  sim.set_stepper(StepperKind::kRk4, ps(0.1));
  sim.run(ps(20));
  for (std::size_t i = 0; i < sim.magnetization().size(); ++i) {
    EXPECT_NEAR(sim.magnetization()[i].z, 1.0, 1e-4);
  }
}

TEST(Multilayer, NewellDemagThickerFilmSmallerNzz) {
  // As the film thickens (same in-plane size), the out-of-plane demag
  // factor drops below the ultrathin limit of 1.
  auto center_hz = [](std::size_t nz) {
    const Grid g(16, 16, nz, 4e-9, 4e-9, 4e-9);
    const System sys(g, Material::fecob());
    NewellDemagField demag(sys);
    const auto m = sys.uniform_magnetization({0, 0, 1});
    const VectorField h = demag.compute(sys, m);
    return h.at(8, 8, nz / 2).z;
  };
  const double thin = center_hz(1);
  const double thick = center_hz(4);
  // Both negative; the thick film's |H| is larger? No: for fixed in-plane
  // extent, thickening reduces the aspect ratio so N_zz (and |H_z|)
  // decreases.
  EXPECT_LT(thin, 0.0);
  EXPECT_GT(thick, thin);  // less negative
}

TEST(Multilayer, MaskedLayerIsInert) {
  // Mask out the top layer: it must stay zero while the bottom precesses.
  const Grid g(2, 2, 2, 4e-9, 4e-9, 2e-9);
  Mask mask(g);
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 2; ++x) {
      mask.set(g.index(x, y, 0), true);
    }
  }
  System sys(g, Material::fecob(), mask);
  Simulation sim(std::move(sys));
  sim.add_term(std::make_unique<UniformZeemanField>(Vec3{1e5, 0, 0}));
  sim.set_stepper(StepperKind::kRk4, ps(0.05));
  sim.run(ps(10));
  for (std::size_t y = 0; y < 2; ++y) {
    for (std::size_t x = 0; x < 2; ++x) {
      EXPECT_EQ(sim.magnetization().at(x, y, 1), (Vec3{}));
      EXPECT_NE(sim.magnetization().at(x, y, 0), (Vec3{0, 0, 1}));
    }
  }
}

}  // namespace
}  // namespace swsim::mag
