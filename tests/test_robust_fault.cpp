// Deterministic fault-injection harness: budgets, label matching, seeded
// byte corruption, and scoped arming.
#include "robust/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace swsim::robust {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = std::string(::testing::TempDir()) + "swsim_fault_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)) + ".bin";
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(FaultPlan, UnarmedHooksAreNoOps) {
  ScopedFaultPlan plan;
  EXPECT_FALSE(plan->armed());
  EXPECT_FALSE(plan->consume_nan(0));
  EXPECT_NO_THROW(plan->on_job_enter("anything"));
  EXPECT_NO_THROW(plan->on_trial_enter(0));
}

TEST(FaultPlan, NanBudgetFiresExactlyOncePerUnit) {
  ScopedFaultPlan plan;
  plan->inject_nan_at_step(8, /*times=*/2);
  EXPECT_TRUE(plan->armed());
  EXPECT_FALSE(plan->consume_nan(7));  // wrong step: budget untouched
  EXPECT_TRUE(plan->consume_nan(8));
  EXPECT_TRUE(plan->consume_nan(8));
  EXPECT_FALSE(plan->consume_nan(8));  // budget spent
  EXPECT_FALSE(plan->armed());
}

TEST(FaultPlan, ThrowFaultFiresOnMatchThenDisarms) {
  ScopedFaultPlan plan;
  plan->inject_throw_in_job("row 3");
  EXPECT_NO_THROW(plan->on_job_enter("row 1"));
  EXPECT_THROW(plan->on_job_enter("gate / row 3"), std::runtime_error);
  // Budget of 1 spent: the same label is now clean.
  EXPECT_NO_THROW(plan->on_job_enter("gate / row 3"));
}

TEST(FaultPlan, DivergenceFaultThrowsClassifiedSolveError) {
  ScopedFaultPlan plan;
  plan->inject_divergence_in_job("row 2");
  try {
    plan->on_job_enter("row 2");
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kNumericalDivergence);
  }
}

TEST(FaultPlan, TrialFaultFiresAtItsIndexThenDisarms) {
  ScopedFaultPlan plan;
  plan->inject_divergence_at_trial(5, /*times=*/2);
  EXPECT_NO_THROW(plan->on_trial_enter(4));  // wrong trial: budget untouched
  try {
    plan->on_trial_enter(5);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kNumericalDivergence);
  }
  EXPECT_THROW(plan->on_trial_enter(5), SolveError);
  EXPECT_NO_THROW(plan->on_trial_enter(5));  // budget spent
  EXPECT_FALSE(plan->armed());
}

TEST(FaultPlan, IndependentFaultsKeepIndependentBudgets) {
  ScopedFaultPlan plan;
  plan->inject_throw_in_job("alpha");
  plan->inject_divergence_in_job("beta");
  EXPECT_THROW(plan->on_job_enter("alpha"), std::runtime_error);
  EXPECT_TRUE(plan->armed());  // beta still armed
  EXPECT_THROW(plan->on_job_enter("beta"), SolveError);
  EXPECT_FALSE(plan->armed());
}

TEST(FaultPlan, ClearDisarmsEverything) {
  ScopedFaultPlan plan;
  plan->inject_nan_at_step(1);
  plan->inject_throw_in_job("x");
  plan->clear();
  EXPECT_FALSE(plan->armed());
  EXPECT_FALSE(plan->consume_nan(1));
  EXPECT_NO_THROW(plan->on_job_enter("x"));
}

TEST(ScopedFaultPlan, ClearsOnScopeExit) {
  {
    ScopedFaultPlan plan;
    plan->inject_throw_in_job("leaky");
    EXPECT_TRUE(FaultPlan::global().armed());
  }
  // A failing test must not leak armed faults into the next one.
  EXPECT_FALSE(FaultPlan::global().armed());
}

TEST(FlipBytes, SameSeedSameCorruption) {
  const std::string payload(256, '\0');
  TempFile a(payload), b(payload);
  FaultPlan::flip_bytes(a.path(), 42, 8);
  FaultPlan::flip_bytes(b.path(), 42, 8);
  const std::string ca = slurp(a.path());
  const std::string cb = slurp(b.path());
  EXPECT_EQ(ca, cb);
  EXPECT_NE(ca, payload);  // it did corrupt something
  EXPECT_EQ(ca.size(), payload.size());
}

TEST(FlipBytes, DifferentSeedDifferentCorruption) {
  const std::string payload(256, '\0');
  TempFile a(payload), b(payload);
  FaultPlan::flip_bytes(a.path(), 1, 8);
  FaultPlan::flip_bytes(b.path(), 2, 8);
  EXPECT_NE(slurp(a.path()), slurp(b.path()));
}

TEST(FlipBytes, RejectsMissingAndEmptyFiles) {
  EXPECT_THROW(FaultPlan::flip_bytes("/nonexistent/nope.bin", 1),
               std::runtime_error);
  TempFile empty("");
  EXPECT_THROW(FaultPlan::flip_bytes(empty.path(), 1), std::runtime_error);
}

}  // namespace
}  // namespace swsim::robust
