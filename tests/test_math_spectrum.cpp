#include "math/spectrum.h"

#include <gtest/gtest.h>

#include <cmath>

#include "math/constants.h"
#include "math/rng.h"

namespace swsim::math {
namespace {

std::vector<double> tone(double amp, double f, double dt, std::size_t n) {
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = amp * std::sin(kTwoPi * f * static_cast<double>(i) * dt);
  }
  return xs;
}

TEST(Spectrum, PeakAtToneFrequency) {
  const double f = 12e9;
  const double dt = 1e-12;  // Nyquist 500 GHz
  const auto s = power_spectrum(tone(1.0, f, dt, 4096), dt);
  EXPECT_NEAR(s.peak_frequency(), f, 0.5e9);
}

TEST(Spectrum, ResolvesTwoTones) {
  const double dt = 1e-12;
  auto xs = tone(1.0, 10e9, dt, 8192);
  const auto x2 = tone(0.5, 40e9, dt, 8192);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] += x2[i];
  const auto s = power_spectrum(xs, dt);
  const double p10 = s.band_power(8e9, 12e9);
  const double p40 = s.band_power(38e9, 42e9);
  const double p25 = s.band_power(20e9, 30e9);
  EXPECT_GT(p10, 2.0 * p40);   // amplitude ratio 2 -> power ratio 4 (leakage
  EXPECT_GT(p40, 20.0 * p25);  // spreads a little, hence the slack)
}

TEST(Spectrum, DcRemoved) {
  const double dt = 1e-12;
  std::vector<double> xs(1024, 5.0);  // pure DC
  const auto s = power_spectrum(xs, dt);
  for (double p : s.power) EXPECT_NEAR(p, 0.0, 1e-12);
}

TEST(Spectrum, WhiteNoiseIsBroadband) {
  Pcg32 rng(4);
  const double dt = 1e-12;
  std::vector<double> xs(8192);
  for (auto& x : xs) x = rng.normal();
  const auto s = power_spectrum(xs, dt);
  // No band should dominate: the strongest quarter-band holds less than
  // half the total power.
  const double total = s.band_power(0.0, 1e30);
  const double nyquist = 0.5 / dt;
  double max_quarter = 0.0;
  for (int q = 0; q < 4; ++q) {
    max_quarter = std::max(
        max_quarter, s.band_power(q * nyquist / 4.0, (q + 1) * nyquist / 4.0));
  }
  EXPECT_LT(max_quarter, 0.5 * total);
}

TEST(Spectrum, FrequencyAxis) {
  const double dt = 2e-12;
  const auto s = power_spectrum(tone(1.0, 5e9, dt, 1024), dt);
  EXPECT_DOUBLE_EQ(s.frequency.front(), 0.0);
  EXPECT_NEAR(s.frequency.back(), 0.5 / dt, 1.0);
  // Uniform spacing.
  const double df = s.frequency[1] - s.frequency[0];
  for (std::size_t i = 1; i < s.frequency.size(); ++i) {
    EXPECT_NEAR(s.frequency[i] - s.frequency[i - 1], df, 1e-3);
  }
}

TEST(Spectrum, Validation) {
  EXPECT_THROW(power_spectrum({1.0, 2.0}, 1e-12), std::invalid_argument);
  EXPECT_THROW(power_spectrum({1, 2, 3, 4, 5}, 0.0), std::invalid_argument);
}

TEST(Spectrum, BandPowerSumsBins) {
  const double dt = 1e-12;
  const auto s = power_spectrum(tone(1.0, 10e9, dt, 2048), dt);
  const double all = s.band_power(0.0, 1e30);
  const double split = s.band_power(0.0, 20e9) + s.band_power(20e9 + 1, 1e30);
  EXPECT_NEAR(split, all, all * 1e-9);
}

}  // namespace
}  // namespace swsim::math
