// End-to-end daemon tests: an in-process Server on a Unix socket, real
// Client connections, and the three contracts the serve layer exists for —
// wire-level determinism (served bytes == CLI bytes), a shared warm cache
// across clients, and the graceful drain protocol.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/validator.h"
#include "engine/batch_runner.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/codec.h"
#include "serve/protocol.h"
#include "serve/workload.h"

namespace swsim::serve {
namespace {

namespace fs = std::filesystem;

ServerConfig test_config(const std::string& name) {
  ServerConfig cfg;
  const fs::path dir = fs::path(::testing::TempDir()) / "swsim_serve_test";
  fs::create_directories(dir);
  cfg.socket_path = (dir / (name + ".sock")).string();
  fs::remove(cfg.socket_path);
  cfg.dispatchers = 2;
  cfg.engine.jobs = 2;
  return cfg;
}

Request truth_table_request(const std::string& kind, std::uint64_t id = 0,
                            const std::string& client = "anon") {
  Request r;
  r.type = RequestType::kTruthTable;
  r.id = id;
  r.client = client;
  r.gate.kind = kind;
  return r;
}

// The reference bytes: what `swsim truthtable <kind>` prints, computed
// through the same shared workload spec the CLI uses.
std::string local_truth_table_bytes(const std::string& kind) {
  engine::EngineConfig cfg;
  cfg.jobs = 2;
  engine::BatchRunner runner(cfg);
  GateParams p;
  p.kind = kind;
  const auto spec = make_truth_table_spec(p);
  EXPECT_TRUE(spec.has_value());
  const auto outcome =
      runner.run_truth_table_checked(spec->factory, spec->key, {}, "local");
  EXPECT_TRUE(outcome.ok());
  return core::format_report(outcome.report);
}

TEST(ServeServer, HelloEchoesTheBuildFingerprint) {
  auto cfg = test_config("hello");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Request req;
  req.type = RequestType::kHello;
  req.id = 11;
  Response resp;
  ASSERT_TRUE(client.call(req, &resp).is_ok());
  EXPECT_EQ(resp.id, 11u);
  EXPECT_TRUE(resp.status.is_ok());

  const auto payload = obs::parse_json(resp.payload_json);
  ASSERT_TRUE(payload.is_object());
  EXPECT_EQ(payload.find("protocol")->str(), kProtocol);
  ASSERT_NE(payload.find("git_sha"), nullptr);
  ASSERT_NE(payload.find("compiler"), nullptr);
  EXPECT_EQ(payload.find("endpoint")->str(), server.endpoint());

  client.close();
  server.shutdown();
}

TEST(ServeServer, TruthTableMatchesCliBytesExactly) {
  auto cfg = test_config("bytes");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(client.call(truth_table_request("maj", 1), &resp).is_ok());
  ASSERT_TRUE(resp.status.is_ok()) << resp.status.str();

  EXPECT_EQ(resp.text, local_truth_table_bytes("maj"));
  ASSERT_TRUE(Response::set(resp.all_pass));
  EXPECT_DOUBLE_EQ(resp.all_pass, 1.0);
  EXPECT_TRUE(Response::set(resp.min_margin));

  server.shutdown();
}

TEST(ServeServer, EightConcurrentClientsGetIdenticalBytes) {
  auto cfg = test_config("concurrent");
  cfg.dispatchers = 4;
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kClients = 8;
  std::vector<std::string> texts(kClients);
  std::vector<robust::Status> statuses(kClients, robust::Status::ok());
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client;
      const auto connected = client.connect_unix(cfg.socket_path);
      if (!connected.is_ok()) {
        statuses[i] = connected;
        return;
      }
      Response resp;
      const auto called = client.call(
          truth_table_request("xor", static_cast<std::uint64_t>(i),
                              "tenant" + std::to_string(i)),
          &resp);
      statuses[i] = called.is_ok() ? resp.status : called;
      texts[i] = resp.text;
    });
  }
  for (auto& t : threads) t.join();

  const std::string expected = local_truth_table_bytes("xor");
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(statuses[i].is_ok()) << "client " << i << ": "
                                     << statuses[i].str();
    EXPECT_EQ(texts[i], expected) << "client " << i;
  }
  server.shutdown();
}

// Reads healthz through an open client and returns the parsed payload.
obs::JsonValue healthz(Client& client) {
  Request req;
  req.type = RequestType::kHealthz;
  Response resp;
  EXPECT_TRUE(client.call(req, &resp).is_ok());
  EXPECT_TRUE(resp.status.is_ok());
  return obs::parse_json(resp.payload_json);
}

TEST(ServeServer, WarmCacheAnswersRepeatWithoutResolving) {
  auto cfg = test_config("warmcache");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client first;
  ASSERT_TRUE(first.connect_unix(cfg.socket_path).is_ok());
  Response cold;
  ASSERT_TRUE(first.call(truth_table_request("maj", 1, "alice"), &cold)
                  .is_ok());
  ASSERT_TRUE(cold.status.is_ok());

  const auto after_cold = healthz(first);
  const double jobs_cold =
      after_cold.find("engine")->find("jobs_executed")->number();
  const double hits_cold = after_cold.find("cache")->find("hits")->number();
  EXPECT_GT(jobs_cold, 0.0);

  // A *different* client repeats the request: byte-identical answer, cache
  // hits rise, jobs_executed does not — the solve was never re-run.
  Client second;
  ASSERT_TRUE(second.connect_unix(cfg.socket_path).is_ok());
  Response warm;
  ASSERT_TRUE(second.call(truth_table_request("maj", 2, "bob"), &warm)
                  .is_ok());
  ASSERT_TRUE(warm.status.is_ok());
  EXPECT_EQ(warm.text, cold.text);

  const auto after_warm = healthz(first);
  EXPECT_EQ(after_warm.find("engine")->find("jobs_executed")->number(),
            jobs_cold);
  EXPECT_GT(after_warm.find("cache")->find("hits")->number(), hits_cold);

  server.shutdown();
}

TEST(ServeServer, UnknownGateAnswersInvalidConfigNotDisconnect) {
  auto cfg = test_config("badgate");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(client.call(truth_table_request("warpdrive", 9), &resp).is_ok());
  EXPECT_EQ(resp.status.code(), robust::StatusCode::kInvalidConfig);
  EXPECT_EQ(resp.id, 9u);

  // The session survives a rejected request.
  Response again;
  ASSERT_TRUE(client.call(truth_table_request("maj", 10), &again).is_ok());
  EXPECT_TRUE(again.status.is_ok());
  server.shutdown();
}

TEST(ServeServer, MalformedFrameAnswersInvalidConfigAndKeepsSession) {
  auto cfg = test_config("badframe");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  std::string error;
  ASSERT_TRUE(write_frame(client.fd(), "this is not json", &error));
  std::string payload;
  ASSERT_EQ(read_frame(client.fd(), &payload, &error), ReadResult::kFrame);
  Response resp;
  ASSERT_TRUE(parse_response_text(payload, &resp).is_ok());
  EXPECT_EQ(resp.status.code(), robust::StatusCode::kInvalidConfig);

  // Still connected: a well-formed request goes through.
  Response ok;
  ASSERT_TRUE(client.call(truth_table_request("maj"), &ok).is_ok());
  EXPECT_TRUE(ok.status.is_ok());
  server.shutdown();
}

TEST(ServeServer, DrainCompletesAdmittedRejectsNewKeepsBuiltins) {
  auto cfg = test_config("drain");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  // Pay for one request first so the drain-time healthz has history.
  Response before;
  ASSERT_TRUE(client.call(truth_table_request("maj", 1), &before).is_ok());
  ASSERT_TRUE(before.status.is_ok());

  server.begin_drain();

  // A new workload request on the existing connection: retryable
  // kDraining with a retry hint, not a dropped connection.
  Response rejected;
  ASSERT_TRUE(client.call(truth_table_request("maj", 2), &rejected).is_ok());
  EXPECT_EQ(rejected.status.code(), robust::StatusCode::kDraining);
  EXPECT_TRUE(robust::is_retryable(rejected.status.code()));
  EXPECT_GT(rejected.retry_after_s, 0.0);

  // Built-ins keep answering so an orchestrator can watch the drain.
  const auto health = healthz(client);
  EXPECT_EQ(health.find("status")->str(), "draining");
  EXPECT_GE(health.find("requests")->find("rejected_draining")->number(),
            1.0);

  client.close();
  server.shutdown();
  // The endpoint is gone after shutdown.
  Client late;
  EXPECT_FALSE(late.connect_unix(cfg.socket_path).is_ok());
}

TEST(ServeServer, RequestLogRecordsEveryRequest) {
  auto cfg = test_config("reqlog");
  const fs::path log =
      fs::path(::testing::TempDir()) / "swsim_serve_test" / "requests.jsonl";
  fs::remove(log);
  cfg.request_log = log.string();
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(client.call(truth_table_request("maj", 5, "logged"), &resp)
                  .is_ok());
  healthz(client);
  client.close();
  server.shutdown();

  // One JSONL line per request, each a valid document naming the client.
  std::ifstream in(log);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_truthtable = false;
  while (std::getline(in, line)) {
    ++lines;
    const auto doc = obs::parse_json(line);
    ASSERT_TRUE(doc.is_object());
    if (doc.find("type")->str() == "truthtable") {
      saw_truthtable = true;
      EXPECT_EQ(doc.find("client")->str(), "logged");
      EXPECT_EQ(doc.find("code")->str(), "ok");
    }
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_TRUE(saw_truthtable);
}

Request yield_request(std::size_t trials, std::uint64_t id = 0,
                      double deadline_s = 0.0,
                      const std::string& client = "anon") {
  Request r;
  r.type = RequestType::kYield;
  r.id = id;
  r.client = client;
  r.yield.kind = "maj";
  r.yield.trials = trials;
  r.deadline_s = deadline_s;
  return r;
}

TEST(ServeServer, QueuedDeadlineIsShedWithoutEngineWork) {
  auto cfg = test_config("dlqueue");
  cfg.dispatchers = 1;  // one lane, so a slow request blocks the queue
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  // Occupy the only dispatcher with a ~1 s yield sweep.
  std::thread blocker([&] {
    Client c;
    ASSERT_TRUE(c.connect_unix(cfg.socket_path).is_ok());
    Response r;
    ASSERT_TRUE(c.call(yield_request(50000, 1), &r).is_ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A deadline far shorter than the blocker: by the time the dispatcher
  // frees up, this request's budget is gone — it must be answered
  // kDeadlineExceeded without the engine touching it.
  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Request doomed = truth_table_request("maj", 2);
  doomed.deadline_s = 0.05;
  Response shed;
  ASSERT_TRUE(client.call(doomed, &shed).is_ok());
  blocker.join();
  EXPECT_EQ(shed.status.code(), robust::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(robust::is_retryable(shed.status.code()));
  EXPECT_GT(shed.retry_after_s, 0.0);

  // The shed request never reached the engine: solving the same gate now
  // executes fresh jobs (a cache hit here would mean it HAD been solved).
  const auto before = healthz(client);
  const double jobs_before =
      before.find("engine")->find("jobs_executed")->number();
  EXPECT_GE(before.find("requests")->find("rejected_deadline")->number(), 1.0);
  Response solved;
  ASSERT_TRUE(client.call(truth_table_request("maj", 3), &solved).is_ok());
  EXPECT_TRUE(solved.status.is_ok());
  const auto after = healthz(client);
  EXPECT_GT(after.find("engine")->find("jobs_executed")->number(),
            jobs_before);
  // Deadline sheds are tracked apart from failures.
  EXPECT_EQ(after.find("requests")->find("failed")->number(),
            before.find("requests")->find("failed")->number());
  server.shutdown();
}

TEST(ServeServer, MidSolveDeadlineTripsToDeadlineExceeded) {
  auto cfg = test_config("dlsolve");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  // A ~1 s sweep with a 0.2 s budget: the engine must abandon it mid-run
  // and the client gets the structured, retryable deadline status.
  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(client.call(yield_request(50000, 7, 0.2), &resp).is_ok());
  EXPECT_EQ(resp.status.code(), robust::StatusCode::kDeadlineExceeded)
      << resp.status.str();
  EXPECT_GT(resp.retry_after_s, 0.0);

  // The daemon is healthy afterwards: a request with room to breathe runs.
  Response ok;
  ASSERT_TRUE(client.call(truth_table_request("maj", 8), &ok).is_ok());
  EXPECT_TRUE(ok.status.is_ok()) << ok.status.str();
  server.shutdown();
}

TEST(ServeServer, IdleSessionIsTimedOutAndReclaimed) {
  auto cfg = test_config("idle");
  cfg.idle_timeout_s = 0.1;
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client silent;
  ASSERT_TRUE(silent.connect_unix(cfg.socket_path).is_ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // The server hung up on the silent session...
  std::string payload, error;
  EXPECT_EQ(read_frame(silent.fd(), &payload, &error, IoDeadlines{1.0, 1.0}),
            ReadResult::kEof);

  // ...and accounted for it; only the fresh healthz session is live.
  Client fresh;
  ASSERT_TRUE(fresh.connect_unix(cfg.socket_path).is_ok());
  const auto health = healthz(fresh);
  EXPECT_GE(health.find("sessions_timed_out")->number(), 1.0);
  EXPECT_EQ(health.find("sessions")->number(), 1.0);
  server.shutdown();
}

TEST(ServeServer, HealthzExposesQueueAgeTunablesAndRecovery) {
  auto cfg = test_config("healthfields");
  cfg.queue_capacity = 17;
  cfg.retry_after_s = 0.75;
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  const auto health = healthz(client);
  ASSERT_NE(health.find("queue"), nullptr);
  ASSERT_NE(health.find("queue")->find("oldest_wait_s"), nullptr);
  EXPECT_EQ(health.find("queue")->find("oldest_wait_s")->number(), 0.0);
  const auto* tun = health.find("tunables");
  ASSERT_NE(tun, nullptr);
  EXPECT_EQ(tun->find("queue_capacity")->number(), 17.0);
  EXPECT_DOUBLE_EQ(tun->find("retry_after_s")->number(), 0.75);
  const auto* rec = health.find("recovery");
  ASSERT_NE(rec, nullptr);  // no spill dir: present, all zeros
  EXPECT_EQ(rec->find("scanned")->number(), 0.0);
  EXPECT_EQ(health.find("requests")->find("rejected_deadline")->number(),
            0.0);
  server.shutdown();
}

TEST(ServeServer, ReloadAppliesTunablesFileAndKeepsOldOnParseFailure) {
  auto cfg = test_config("reload");
  const fs::path tunables =
      fs::path(::testing::TempDir()) / "swsim_serve_test" / "tunables.conf";
  {
    std::ofstream out(tunables);
    out << "queue_capacity = 5\n# comment\nretry_after_s = 0.25\n";
  }
  cfg.tunables_file = tunables.string();
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  auto health = healthz(client);
  EXPECT_EQ(health.find("tunables")->find("queue_capacity")->number(), 5.0);

  // SIGHUP semantics: rewrite + reload → new values live without restart.
  {
    std::ofstream out(tunables);
    out << "queue_capacity = 9\nretry_after_s = 1.5\nidle_timeout_s = 60\n";
  }
  server.reload();
  health = healthz(client);
  EXPECT_EQ(health.find("tunables")->find("queue_capacity")->number(), 9.0);
  EXPECT_DOUBLE_EQ(health.find("tunables")->find("retry_after_s")->number(),
                   1.5);

  // A broken file must not take the daemon down or change anything.
  {
    std::ofstream out(tunables);
    out << "queue_capacity = not-a-number\n";
  }
  server.reload();
  health = healthz(client);
  EXPECT_EQ(health.find("tunables")->find("queue_capacity")->number(), 9.0);
  server.shutdown();
}

TEST(ServeServer, StartRefusesABrokenTunablesFile) {
  auto cfg = test_config("badtunables");
  const fs::path tunables =
      fs::path(::testing::TempDir()) / "swsim_serve_test" / "bad.conf";
  {
    std::ofstream out(tunables);
    out << "bogus_knob = 1\n";
  }
  cfg.tunables_file = tunables.string();
  Server server(cfg);
  EXPECT_EQ(server.start().code(), robust::StatusCode::kInvalidConfig);
}

TEST(ServeServer, StartupRecoveryQuarantinesCorruptSpillEntries) {
  auto cfg = test_config("recovery");
  const fs::path spill =
      fs::path(::testing::TempDir()) / "swsim_serve_test" / "spill_recovery";
  fs::remove_all(spill);
  fs::create_directories(spill);
  {
    std::ofstream out(spill / "00ff.swc", std::ios::binary);
    out << "definitely not a spill file";
  }
  {
    std::ofstream out(spill / "1234.swc.tmp.777", std::ios::binary);
    out << "partial write from a crashed daemon";
  }
  cfg.engine.spill_dir = spill.string();
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  const auto rec = server.recovery_report();
  EXPECT_EQ(rec.scanned, 1u);
  EXPECT_EQ(rec.healthy, 0u);
  EXPECT_EQ(rec.quarantined, 1u);
  EXPECT_EQ(rec.removed_tmp, 1u);
  // The corrupt entry moved aside (inspectable), the tmp litter is gone.
  EXPECT_TRUE(fs::exists(spill / "quarantine" / "00ff.swc"));
  EXPECT_FALSE(fs::exists(spill / "00ff.swc"));
  EXPECT_FALSE(fs::exists(spill / "1234.swc.tmp.777"));

  // And healthz agrees.
  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  const auto health = healthz(client);
  EXPECT_EQ(health.find("recovery")->find("quarantined")->number(), 1.0);
  EXPECT_EQ(health.find("recovery")->find("removed_tmp")->number(), 1.0);
  server.shutdown();
}

TEST(ServeServer, ClientRetriesRideOutADeadlineAndReportStats) {
  auto cfg = test_config("retries");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  // Deadline generous, server healthy: one attempt, success.
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.deadline_s = 30.0;
  Response resp;
  RetryStats stats;
  const auto status = call_with_retries(cfg.socket_path, 0,
                                        truth_table_request("maj", 1), policy,
                                        &resp, &stats);
  EXPECT_TRUE(status.is_ok()) << status.str();
  EXPECT_TRUE(resp.status.is_ok());
  EXPECT_EQ(stats.attempts, 1);
  EXPECT_EQ(stats.retries, 0);
  server.shutdown();

  // Endpoint gone: retries burn the budget, then the deadline reports.
  RetryPolicy doomed;
  doomed.max_attempts = 50;
  doomed.deadline_s = 0.3;
  doomed.base_backoff_s = 0.02;
  Response none;
  RetryStats burned;
  const auto failed = call_with_retries(cfg.socket_path, 0,
                                        truth_table_request("maj", 2), doomed,
                                        &none, &burned);
  EXPECT_EQ(failed.code(), robust::StatusCode::kDeadlineExceeded);
  EXPECT_GT(burned.attempts, 1);
  EXPECT_EQ(burned.last_error.code(), robust::StatusCode::kIoError);
}

TEST(ServeServer, StartRefusesAmbiguousEndpoints) {
  ServerConfig cfg;  // neither socket nor port
  Server none(cfg);
  EXPECT_EQ(none.start().code(), robust::StatusCode::kInvalidConfig);

  auto both_cfg = test_config("both");
  both_cfg.tcp_port = 39999;
  Server both(both_cfg);
  EXPECT_EQ(both.start().code(), robust::StatusCode::kInvalidConfig);
}

}  // namespace
}  // namespace swsim::serve
