// End-to-end daemon tests: an in-process Server on a Unix socket, real
// Client connections, and the three contracts the serve layer exists for —
// wire-level determinism (served bytes == CLI bytes), a shared warm cache
// across clients, and the graceful drain protocol.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/validator.h"
#include "engine/batch_runner.h"
#include "obs/json.h"
#include "serve/client.h"
#include "serve/codec.h"
#include "serve/protocol.h"
#include "serve/workload.h"

namespace swsim::serve {
namespace {

namespace fs = std::filesystem;

ServerConfig test_config(const std::string& name) {
  ServerConfig cfg;
  const fs::path dir = fs::path(::testing::TempDir()) / "swsim_serve_test";
  fs::create_directories(dir);
  cfg.socket_path = (dir / (name + ".sock")).string();
  fs::remove(cfg.socket_path);
  cfg.dispatchers = 2;
  cfg.engine.jobs = 2;
  return cfg;
}

Request truth_table_request(const std::string& kind, std::uint64_t id = 0,
                            const std::string& client = "anon") {
  Request r;
  r.type = RequestType::kTruthTable;
  r.id = id;
  r.client = client;
  r.gate.kind = kind;
  return r;
}

// The reference bytes: what `swsim truthtable <kind>` prints, computed
// through the same shared workload spec the CLI uses.
std::string local_truth_table_bytes(const std::string& kind) {
  engine::EngineConfig cfg;
  cfg.jobs = 2;
  engine::BatchRunner runner(cfg);
  GateParams p;
  p.kind = kind;
  const auto spec = make_truth_table_spec(p);
  EXPECT_TRUE(spec.has_value());
  const auto outcome =
      runner.run_truth_table_checked(spec->factory, spec->key, {}, "local");
  EXPECT_TRUE(outcome.ok());
  return core::format_report(outcome.report);
}

TEST(ServeServer, HelloEchoesTheBuildFingerprint) {
  auto cfg = test_config("hello");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Request req;
  req.type = RequestType::kHello;
  req.id = 11;
  Response resp;
  ASSERT_TRUE(client.call(req, &resp).is_ok());
  EXPECT_EQ(resp.id, 11u);
  EXPECT_TRUE(resp.status.is_ok());

  const auto payload = obs::parse_json(resp.payload_json);
  ASSERT_TRUE(payload.is_object());
  EXPECT_EQ(payload.find("protocol")->str(), kProtocol);
  ASSERT_NE(payload.find("git_sha"), nullptr);
  ASSERT_NE(payload.find("compiler"), nullptr);
  EXPECT_EQ(payload.find("endpoint")->str(), server.endpoint());

  client.close();
  server.shutdown();
}

TEST(ServeServer, TruthTableMatchesCliBytesExactly) {
  auto cfg = test_config("bytes");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(client.call(truth_table_request("maj", 1), &resp).is_ok());
  ASSERT_TRUE(resp.status.is_ok()) << resp.status.str();

  EXPECT_EQ(resp.text, local_truth_table_bytes("maj"));
  ASSERT_TRUE(Response::set(resp.all_pass));
  EXPECT_DOUBLE_EQ(resp.all_pass, 1.0);
  EXPECT_TRUE(Response::set(resp.min_margin));

  server.shutdown();
}

TEST(ServeServer, EightConcurrentClientsGetIdenticalBytes) {
  auto cfg = test_config("concurrent");
  cfg.dispatchers = 4;
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  constexpr int kClients = 8;
  std::vector<std::string> texts(kClients);
  std::vector<robust::Status> statuses(kClients, robust::Status::ok());
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client;
      const auto connected = client.connect_unix(cfg.socket_path);
      if (!connected.is_ok()) {
        statuses[i] = connected;
        return;
      }
      Response resp;
      const auto called = client.call(
          truth_table_request("xor", static_cast<std::uint64_t>(i),
                              "tenant" + std::to_string(i)),
          &resp);
      statuses[i] = called.is_ok() ? resp.status : called;
      texts[i] = resp.text;
    });
  }
  for (auto& t : threads) t.join();

  const std::string expected = local_truth_table_bytes("xor");
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(statuses[i].is_ok()) << "client " << i << ": "
                                     << statuses[i].str();
    EXPECT_EQ(texts[i], expected) << "client " << i;
  }
  server.shutdown();
}

// Reads healthz through an open client and returns the parsed payload.
obs::JsonValue healthz(Client& client) {
  Request req;
  req.type = RequestType::kHealthz;
  Response resp;
  EXPECT_TRUE(client.call(req, &resp).is_ok());
  EXPECT_TRUE(resp.status.is_ok());
  return obs::parse_json(resp.payload_json);
}

TEST(ServeServer, WarmCacheAnswersRepeatWithoutResolving) {
  auto cfg = test_config("warmcache");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client first;
  ASSERT_TRUE(first.connect_unix(cfg.socket_path).is_ok());
  Response cold;
  ASSERT_TRUE(first.call(truth_table_request("maj", 1, "alice"), &cold)
                  .is_ok());
  ASSERT_TRUE(cold.status.is_ok());

  const auto after_cold = healthz(first);
  const double jobs_cold =
      after_cold.find("engine")->find("jobs_executed")->number();
  const double hits_cold = after_cold.find("cache")->find("hits")->number();
  EXPECT_GT(jobs_cold, 0.0);

  // A *different* client repeats the request: byte-identical answer, cache
  // hits rise, jobs_executed does not — the solve was never re-run.
  Client second;
  ASSERT_TRUE(second.connect_unix(cfg.socket_path).is_ok());
  Response warm;
  ASSERT_TRUE(second.call(truth_table_request("maj", 2, "bob"), &warm)
                  .is_ok());
  ASSERT_TRUE(warm.status.is_ok());
  EXPECT_EQ(warm.text, cold.text);

  const auto after_warm = healthz(first);
  EXPECT_EQ(after_warm.find("engine")->find("jobs_executed")->number(),
            jobs_cold);
  EXPECT_GT(after_warm.find("cache")->find("hits")->number(), hits_cold);

  server.shutdown();
}

TEST(ServeServer, UnknownGateAnswersInvalidConfigNotDisconnect) {
  auto cfg = test_config("badgate");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(client.call(truth_table_request("warpdrive", 9), &resp).is_ok());
  EXPECT_EQ(resp.status.code(), robust::StatusCode::kInvalidConfig);
  EXPECT_EQ(resp.id, 9u);

  // The session survives a rejected request.
  Response again;
  ASSERT_TRUE(client.call(truth_table_request("maj", 10), &again).is_ok());
  EXPECT_TRUE(again.status.is_ok());
  server.shutdown();
}

TEST(ServeServer, MalformedFrameAnswersInvalidConfigAndKeepsSession) {
  auto cfg = test_config("badframe");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  std::string error;
  ASSERT_TRUE(write_frame(client.fd(), "this is not json", &error));
  std::string payload;
  ASSERT_EQ(read_frame(client.fd(), &payload, &error), ReadResult::kFrame);
  Response resp;
  ASSERT_TRUE(parse_response_text(payload, &resp).is_ok());
  EXPECT_EQ(resp.status.code(), robust::StatusCode::kInvalidConfig);

  // Still connected: a well-formed request goes through.
  Response ok;
  ASSERT_TRUE(client.call(truth_table_request("maj"), &ok).is_ok());
  EXPECT_TRUE(ok.status.is_ok());
  server.shutdown();
}

TEST(ServeServer, DrainCompletesAdmittedRejectsNewKeepsBuiltins) {
  auto cfg = test_config("drain");
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  // Pay for one request first so the drain-time healthz has history.
  Response before;
  ASSERT_TRUE(client.call(truth_table_request("maj", 1), &before).is_ok());
  ASSERT_TRUE(before.status.is_ok());

  server.begin_drain();

  // A new workload request on the existing connection: retryable
  // kDraining with a retry hint, not a dropped connection.
  Response rejected;
  ASSERT_TRUE(client.call(truth_table_request("maj", 2), &rejected).is_ok());
  EXPECT_EQ(rejected.status.code(), robust::StatusCode::kDraining);
  EXPECT_TRUE(robust::is_retryable(rejected.status.code()));
  EXPECT_GT(rejected.retry_after_s, 0.0);

  // Built-ins keep answering so an orchestrator can watch the drain.
  const auto health = healthz(client);
  EXPECT_EQ(health.find("status")->str(), "draining");
  EXPECT_GE(health.find("requests")->find("rejected_draining")->number(),
            1.0);

  client.close();
  server.shutdown();
  // The endpoint is gone after shutdown.
  Client late;
  EXPECT_FALSE(late.connect_unix(cfg.socket_path).is_ok());
}

TEST(ServeServer, RequestLogRecordsEveryRequest) {
  auto cfg = test_config("reqlog");
  const fs::path log =
      fs::path(::testing::TempDir()) / "swsim_serve_test" / "requests.jsonl";
  fs::remove(log);
  cfg.request_log = log.string();
  Server server(cfg);
  ASSERT_TRUE(server.start().is_ok());

  Client client;
  ASSERT_TRUE(client.connect_unix(cfg.socket_path).is_ok());
  Response resp;
  ASSERT_TRUE(client.call(truth_table_request("maj", 5, "logged"), &resp)
                  .is_ok());
  healthz(client);
  client.close();
  server.shutdown();

  // One JSONL line per request, each a valid document naming the client.
  std::ifstream in(log);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_truthtable = false;
  while (std::getline(in, line)) {
    ++lines;
    const auto doc = obs::parse_json(line);
    ASSERT_TRUE(doc.is_object());
    if (doc.find("type")->str() == "truthtable") {
      saw_truthtable = true;
      EXPECT_EQ(doc.find("client")->str(), "logged");
      EXPECT_EQ(doc.find("code")->str(), "ok");
    }
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_TRUE(saw_truthtable);
}

TEST(ServeServer, StartRefusesAmbiguousEndpoints) {
  ServerConfig cfg;  // neither socket nor port
  Server none(cfg);
  EXPECT_EQ(none.start().code(), robust::StatusCode::kInvalidConfig);

  auto both_cfg = test_config("both");
  both_cfg.tcp_port = 39999;
  Server both(both_cfg);
  EXPECT_EQ(both.start().code(), robust::StatusCode::kInvalidConfig);
}

}  // namespace
}  // namespace swsim::serve
