#include "geom/shape.h"

#include <gtest/gtest.h>

#include <memory>

namespace swsim::geom {
namespace {

using swsim::math::Grid;
using swsim::math::Mask;

TEST(Rect, ContainsInterior) {
  const Rect r(0, 0, 2, 1);
  EXPECT_TRUE(r.contains({1, 0.5, 0}));
  EXPECT_TRUE(r.contains({0, 0, 0}));  // boundary inclusive
  EXPECT_FALSE(r.contains({3, 0.5, 0}));
  EXPECT_FALSE(r.contains({1, 2, 0}));
}

TEST(Rect, RejectsDegenerate) {
  EXPECT_THROW(Rect(0, 0, 0, 1), std::invalid_argument);
  EXPECT_THROW(Rect(0, 1, 1, 0), std::invalid_argument);
}

TEST(Rect, Center) {
  const Rect r(0, 0, 4, 2);
  EXPECT_EQ(r.center(), (swsim::math::Vec3{2, 1, 0}));
}

TEST(Segment, AxisAligned) {
  const Segment s({0, 0, 0}, {10, 0, 0}, 2.0);
  EXPECT_TRUE(s.contains({5, 0.9, 0}));
  EXPECT_TRUE(s.contains({5, -0.9, 0}));
  EXPECT_FALSE(s.contains({5, 1.1, 0}));
  EXPECT_FALSE(s.contains({-1, 0, 0}));
  EXPECT_FALSE(s.contains({11, 0, 0}));
  EXPECT_DOUBLE_EQ(s.length(), 10.0);
}

TEST(Segment, Diagonal45) {
  const Segment s({0, 0, 0}, {10, 10, 0}, 1.0);
  EXPECT_TRUE(s.contains({5, 5, 0}));
  // Point 1.0 away perpendicular from the axis: outside half-width 0.5.
  EXPECT_FALSE(s.contains({5.0 + 0.71, 5.0 - 0.71, 0}));
  // Point ~0.35 away perpendicular: inside.
  EXPECT_TRUE(s.contains({5.25, 4.75, 0}));
}

TEST(Segment, RejectsBadConstruction) {
  EXPECT_THROW(Segment({0, 0, 0}, {1, 0, 0}, 0.0), std::invalid_argument);
  EXPECT_THROW(Segment({1, 1, 0}, {1, 1, 0}, 1.0), std::invalid_argument);
}

TEST(Circle, Contains) {
  const Circle c({1, 1, 0}, 2.0);
  EXPECT_TRUE(c.contains({1, 1, 0}));
  EXPECT_TRUE(c.contains({3, 1, 0}));  // on the rim
  EXPECT_FALSE(c.contains({3.1, 1, 0}));
}

TEST(Circle, RejectsBadRadius) {
  EXPECT_THROW(Circle({0, 0, 0}, 0.0), std::invalid_argument);
}

TEST(Polygon, Triangle) {
  const Polygon tri({{0, 0, 0}, {4, 0, 0}, {0, 4, 0}});
  EXPECT_TRUE(tri.contains({1, 1, 0}));
  EXPECT_FALSE(tri.contains({3, 3, 0}));
  EXPECT_FALSE(tri.contains({-1, 1, 0}));
}

TEST(Polygon, NonConvex) {
  // L-shaped polygon.
  const Polygon ell(
      {{0, 0, 0}, {4, 0, 0}, {4, 2, 0}, {2, 2, 0}, {2, 4, 0}, {0, 4, 0}});
  EXPECT_TRUE(ell.contains({1, 3, 0}));
  EXPECT_TRUE(ell.contains({3, 1, 0}));
  EXPECT_FALSE(ell.contains({3, 3, 0}));  // the notch
}

TEST(Polygon, RejectsTooFewVertices) {
  EXPECT_THROW(Polygon({{0, 0, 0}, {1, 0, 0}}), std::invalid_argument);
}

TEST(Union, CombinesShapes) {
  Union u;
  u.add(std::make_unique<Rect>(0, 0, 1, 1));
  u.add(std::make_unique<Rect>(2, 0, 3, 1));
  EXPECT_TRUE(u.contains({0.5, 0.5, 0}));
  EXPECT_TRUE(u.contains({2.5, 0.5, 0}));
  EXPECT_FALSE(u.contains({1.5, 0.5, 0}));
  EXPECT_EQ(u.size(), 2u);
}

TEST(Difference, Subtracts) {
  const Difference d(std::make_unique<Rect>(0, 0, 4, 4),
                     std::make_unique<Rect>(1, 1, 2, 2));
  EXPECT_TRUE(d.contains({3, 3, 0}));
  EXPECT_FALSE(d.contains({1.5, 1.5, 0}));
}

TEST(Difference, RejectsNull) {
  EXPECT_THROW(Difference(nullptr, std::make_unique<Rect>(0, 0, 1, 1)),
               std::invalid_argument);
}

TEST(Rasterize, CountsCellCenters) {
  const Grid g(10, 10, 1, 1.0, 1.0, 1.0);
  // Rect covering the left half: x in [0, 5] contains centers 0.5..4.5.
  const Rect r(0, 0, 5, 10);
  const Mask m = rasterize(g, r);
  EXPECT_EQ(m.count(), 50u);
  EXPECT_TRUE(m.at(0, 0));
  EXPECT_TRUE(m.at(4, 9));
  EXPECT_FALSE(m.at(5, 0));
}

TEST(Rasterize, AllZLayersShareFootprint) {
  const Grid g(4, 4, 3, 1.0, 1.0, 1.0);
  const Rect r(0, 0, 2, 2);
  const Mask m = rasterize(g, r);
  for (std::size_t z = 0; z < 3; ++z) {
    EXPECT_TRUE(m.at(0, 0, z));
    EXPECT_TRUE(m.at(1, 1, z));
    EXPECT_FALSE(m.at(3, 3, z));
  }
}

TEST(Rasterize, NarrowSegmentIsConnected) {
  // A diagonal waveguide should rasterize into a 4-connected-ish band
  // without gaps along its length.
  const Grid g(40, 40, 1, 1.0, 1.0, 1.0);
  const Segment s({2, 2, 0}, {38, 38, 0}, 4.0);
  const Mask m = rasterize(g, s);
  EXPECT_GT(m.count(), 100u);
  // Every x-column between 4 and 36 must contain at least one cell.
  for (std::size_t x = 4; x <= 36; ++x) {
    bool any = false;
    for (std::size_t y = 0; y < 40; ++y) any = any || m.at(x, y);
    EXPECT_TRUE(any) << "gap at column " << x;
  }
}

}  // namespace
}  // namespace swsim::geom
