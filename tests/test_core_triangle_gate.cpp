// The paper's core claim, on the analytical backend: triangle FO2 MAJ3 and
// X(N)OR gates evaluate correctly for every input pattern, with identical
// outputs (fan-out of 2), and the design rules behave as stated.
#include "core/triangle_gate.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/derived_gates.h"
#include "core/logic.h"
#include "core/validator.h"
#include "math/constants.h"

namespace swsim::core {
namespace {

using swsim::math::kPi;
using swsim::math::nm;

TEST(TriangleMajGate, PaperDeviceTruthTable) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
}

TEST(TriangleMajGate, FanOutOutputsIdentical) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  const auto report = validate_gate(gate);
  // The bowtie splits one wave symmetrically: O1 == O2 exactly.
  EXPECT_LT(report.max_output_asymmetry, 1e-9);
}

TEST(TriangleMajGate, UnanimousInputsGiveFullAmplitude) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  const auto all0 = gate.evaluate({false, false, false});
  const auto all1 = gate.evaluate({true, true, true});
  EXPECT_NEAR(all0.normalized_o1, 1.0, 1e-9);
  EXPECT_NEAR(all1.normalized_o1, 1.0, 1e-9);
}

TEST(TriangleMajGate, MixedInputsGiveReducedAmplitude) {
  // Phase detection: the mixed rows of Table I have much lower normalized
  // magnetization (paper: 0.083 - 0.164 in energy units) because two of the
  // three waves cancel.
  TriangleMajGate gate = TriangleMajGate::paper_device();
  for (const auto& p : all_input_patterns(3)) {
    const int ones = static_cast<int>(p[0]) + p[1] + p[2];
    const auto out = gate.evaluate(p);
    if (ones == 0 || ones == 3) continue;
    EXPECT_LT(out.normalized_o1, 0.6) << format_report(validate_gate(gate));
    EXPECT_GT(out.normalized_o1, 0.05);
  }
}

TEST(TriangleMajGate, MinorityInputDeterminesAmplitudeClass) {
  // Minority = I1 and minority = I2 give identical amplitudes (equal arms);
  // minority = I3 differs (different path / attenuation).
  TriangleMajGate gate = TriangleMajGate::paper_device();
  const double m1 = gate.evaluate({true, false, false}).normalized_o1;
  const double m2 = gate.evaluate({false, true, false}).normalized_o1;
  const double m3 = gate.evaluate({false, false, true}).normalized_o1;
  EXPECT_NEAR(m1, m2, 1e-9);
  EXPECT_GT(std::fabs(m3 - m1), 1e-4);
}

TEST(TriangleMajGate, ComplementSymmetry) {
  // Flipping all inputs flips the output but keeps the amplitude.
  TriangleMajGate gate = TriangleMajGate::paper_device();
  for (const auto& p : all_input_patterns(3)) {
    const std::vector<bool> q{!p[0], !p[1], !p[2]};
    const auto a = gate.evaluate(p);
    const auto b = gate.evaluate(q);
    EXPECT_NE(a.o1.logic, b.o1.logic);
    EXPECT_NEAR(a.normalized_o1, b.normalized_o1, 1e-9);
  }
}

TEST(TriangleMajGate, InvertedOutputComputesMinority) {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  cfg.inverted = true;
  TriangleMajGate gate(cfg);
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
  EXPECT_TRUE(gate.evaluate({false, false, false}).o1.logic);   // NOT(MAJ)=1
  EXPECT_FALSE(gate.evaluate({true, true, true}).o1.logic);
}

TEST(TriangleMajGate, HalfWavelengthDesignRuleBreaksGate) {
  // d1 = (n + 1/2) lambda on the arms makes same-phase inputs interfere
  // destructively — Sec. III-A's "opposite behaviour".
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  cfg.params.n_arm += 0.5;
  TriangleMajGate gate(cfg);
  // With the arms off by lambda/2, I1 and I2 arrive inverted relative to
  // I3: the structure no longer computes MAJ3 and the validator catches it.
  const auto report = validate_gate(gate);
  EXPECT_FALSE(report.all_pass);
}

TEST(TriangleMajGate, RejectsXorParams) {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_xor();
  EXPECT_THROW(TriangleMajGate{cfg}, std::invalid_argument);
}

TEST(TriangleMajGate, RejectsWrongInputCount) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  EXPECT_THROW(gate.evaluate({true, false}), std::invalid_argument);
}

TEST(TriangleMajGate, ExcitationCellCount) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  EXPECT_EQ(gate.excitation_cells(), 3);  // Table III: 3 + 2 = 5 cells
}

TEST(TriangleXorGate, PaperDeviceTruthTable) {
  TriangleXorGate gate = TriangleXorGate::paper_device();
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
}

TEST(TriangleXorGate, TableIIAmplitudePattern) {
  TriangleXorGate gate = TriangleXorGate::paper_device();
  // {0,0} and {1,1}: normalized ~1; {0,1} and {1,0}: ~0 (Table II).
  EXPECT_NEAR(gate.evaluate({false, false}).normalized_o1, 1.0, 1e-9);
  EXPECT_NEAR(gate.evaluate({true, true}).normalized_o1, 1.0, 1e-9);
  EXPECT_NEAR(gate.evaluate({true, false}).normalized_o1, 0.0, 1e-9);
  EXPECT_NEAR(gate.evaluate({false, true}).normalized_o1, 0.0, 1e-9);
}

TEST(TriangleXorGate, XnorInvertsDetection) {
  TriangleXorGate gate = TriangleXorGate::paper_device(/*xnor=*/true);
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
  EXPECT_TRUE(gate.evaluate({false, false}).o1.logic);
  EXPECT_FALSE(gate.evaluate({true, false}).o1.logic);
}

TEST(TriangleXorGate, RejectsMajParams) {
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  EXPECT_THROW(TriangleXorGate{cfg}, std::invalid_argument);
}

TEST(TriangleXorGate, ExcitationCellCount) {
  TriangleXorGate gate = TriangleXorGate::paper_device();
  EXPECT_EQ(gate.excitation_cells(), 2);  // Table III: 2 + 2 = 4 cells
}

TEST(TriangleGateBase, ReferenceAmplitudePositive) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  EXPECT_GT(gate.reference_amplitude(), 0.0);
}

TEST(TriangleGateBase, SolvePhasorsChecksArity) {
  TriangleMajGate gate = TriangleMajGate::paper_device();
  EXPECT_THROW(gate.solve_phasors({0.0, 0.0}), std::invalid_argument);
}

TEST(TriangleGateBase, PhaseErrorToleranceMaj) {
  // The gate must survive moderate input phase errors (transducer
  // imperfections): sweep a disturbance on I1 and find the failure point.
  TriangleMajGate gate = TriangleMajGate::paper_device();
  const wavenet::PhaseDetector det;
  double failure_phase = kPi;
  for (double err = 0.0; err < kPi; err += 0.05) {
    const auto [p1, p2] = gate.solve_phasors({err, 0.0, 0.0});
    if (det.detect(p1).logic != false) {
      failure_phase = err;
      break;
    }
  }
  // With the other two inputs at logic 0, flipping I1 must require at
  // least ~pi/2 of phase error.
  EXPECT_GT(failure_phase, kPi / 2.0 - 0.1);
}

TEST(ControlledMajGate, AllFourFunctions) {
  for (auto fn : {TwoInputFunction::kAnd, TwoInputFunction::kOr,
                  TwoInputFunction::kNand, TwoInputFunction::kNor}) {
    ControlledMajGate gate = ControlledMajGate::paper_device(fn);
    const auto report = validate_gate(gate);
    EXPECT_TRUE(report.all_pass)
        << to_string(fn) << "\n" << format_report(report);
  }
}

TEST(ControlledMajGate, ControlValues) {
  EXPECT_FALSE(
      ControlledMajGate::paper_device(TwoInputFunction::kAnd).control_value());
  EXPECT_TRUE(
      ControlledMajGate::paper_device(TwoInputFunction::kOr).control_value());
  EXPECT_FALSE(
      ControlledMajGate::paper_device(TwoInputFunction::kNand).control_value());
  EXPECT_TRUE(
      ControlledMajGate::paper_device(TwoInputFunction::kNor).control_value());
}

TEST(ControlledMajGate, StillCostsThreeExcitations) {
  // The control constant is a driven transducer: no energy saving vs MAJ.
  ControlledMajGate gate = ControlledMajGate::paper_device(TwoInputFunction::kAnd);
  EXPECT_EQ(gate.excitation_cells(), 3);
}

TEST(ControlledMajGate, RejectsWrongArity) {
  ControlledMajGate gate = ControlledMajGate::paper_device(TwoInputFunction::kAnd);
  EXPECT_THROW(gate.evaluate({true, false, true}), std::invalid_argument);
}

// Property sweep: the MAJ3 truth table holds across geometry multiples,
// wavelengths and split policies — the design rules, not a lucky tuning.
struct GateSweepParam {
  double n_arm;
  double n_axis_half;
  double n_feed;
  double lambda_nm;
  wavenet::SplitPolicy split;
};

class TriangleGateSweep : public ::testing::TestWithParam<GateSweepParam> {};

TEST_P(TriangleGateSweep, MajTruthTableHolds) {
  const auto& p = GetParam();
  TriangleGateConfig cfg;
  cfg.params = geom::TriangleGateParams::paper_maj3();
  cfg.params.wavelength = nm(p.lambda_nm);
  cfg.params.width = nm(p.lambda_nm * 0.4);
  cfg.params.n_arm = p.n_arm;
  cfg.params.n_axis_half = p.n_axis_half;
  cfg.params.n_feed = p.n_feed;
  cfg.split = p.split;
  TriangleMajGate gate(cfg);
  const auto report = validate_gate(gate);
  EXPECT_TRUE(report.all_pass) << format_report(report);
  EXPECT_LT(report.max_output_asymmetry, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TriangleGateSweep,
    ::testing::Values(
        GateSweepParam{6, 8, 4, 55, wavenet::SplitPolicy::kUnitary},
        GateSweepParam{6, 8, 4, 55, wavenet::SplitPolicy::kLossless},
        GateSweepParam{2, 1, 1, 55, wavenet::SplitPolicy::kUnitary},
        GateSweepParam{12, 4, 2, 55, wavenet::SplitPolicy::kUnitary},
        GateSweepParam{6, 8, 4, 30, wavenet::SplitPolicy::kUnitary},
        // At lambda = 125 nm the paper-scale multiples give ~3.4 um arm
        // paths (comparable to L_att) and the attenuation imbalance kills
        // the margins: a compact device is required at long wavelengths.
        GateSweepParam{3, 2, 1, 125, wavenet::SplitPolicy::kUnitary},
        GateSweepParam{3, 2, 9, 80, wavenet::SplitPolicy::kUnitary}));

}  // namespace
}  // namespace swsim::core
