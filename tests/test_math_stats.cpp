#include "math/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace swsim::math {
namespace {

TEST(Summarize, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
}

TEST(Summarize, KnownMoments) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(FitLine, ExactLine) {
  const LinearFit f = fit_line({0, 1, 2, 3}, {1, 3, 5, 7});
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
}

TEST(FitLine, NegativeSlope) {
  const LinearFit f = fit_line({0, 2, 4}, {10, 6, 2});
  EXPECT_NEAR(f.slope, -2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 10.0, 1e-12);
}

TEST(FitLine, LeastSquaresOverNoisyData) {
  // Residuals of the fit must be orthogonal to x (normal equations).
  const std::vector<double> x{0, 1, 2, 3, 4, 5};
  const std::vector<double> y{0.1, 1.9, 4.2, 5.8, 8.1, 9.9};
  const LinearFit f = fit_line(x, y);
  double dot_rx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    dot_rx += (y[i] - f.intercept - f.slope * x[i]) * x[i];
  }
  EXPECT_NEAR(dot_rx, 0.0, 1e-9);
}

TEST(FitLine, Throws) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({2.0, 2.0}, {1.0, 3.0}), std::invalid_argument);
}

TEST(RelErr, Basics) {
  EXPECT_DOUBLE_EQ(rel_err(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(rel_err(10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_err(-9.0, -10.0), 0.1);
}

TEST(RelErr, FloorPreventsBlowup) {
  EXPECT_LE(rel_err(1e-12, 0.0, 1e-9), 1e-3 + 1e-15);
}

}  // namespace
}  // namespace swsim::math
