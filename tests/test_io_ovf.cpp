#include "io/ovf.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "math/rng.h"

namespace swsim::io {
namespace {

using swsim::math::Grid;
using swsim::math::Pcg32;
using swsim::math::Vec3;
using swsim::math::VectorField;

VectorField random_field(const Grid& g, std::uint64_t seed) {
  Pcg32 rng(seed);
  VectorField f(g);
  for (auto& v : f) {
    v = swsim::math::normalized(
        Vec3{rng.normal(), rng.normal(), rng.normal()});
  }
  return f;
}

TEST(Ovf, RoundTripPreservesFieldAndMesh) {
  const Grid g(6, 4, 2, 5e-9, 4e-9, 1e-9);
  const VectorField original = random_field(g, 42);
  const std::string path = ::testing::TempDir() + "swsim_roundtrip.ovf";
  write_ovf(path, original, "round trip");
  const VectorField back = read_ovf(path);

  ASSERT_EQ(back.grid(), g);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(back[i].x, original[i].x, 1e-8);
    EXPECT_NEAR(back[i].y, original[i].y, 1e-8);
    EXPECT_NEAR(back[i].z, original[i].z, 1e-8);
  }
  std::remove(path.c_str());
}

TEST(Ovf, HeaderIsWellFormed) {
  const Grid g(3, 3, 1, 2e-9, 2e-9, 1e-9);
  const VectorField f(g, Vec3{0, 0, 1});
  const std::string path = ::testing::TempDir() + "swsim_header.ovf";
  write_ovf(path, f, "header check");
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "# OOMMF OVF 2.0");
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("# Title: header check"), std::string::npos);
  EXPECT_NE(all.find("# xnodes: 3"), std::string::npos);
  EXPECT_NE(all.find("# valuedim: 3"), std::string::npos);
  EXPECT_NE(all.find("# End: Segment"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Ovf, WriteFailsOnBadPath) {
  const Grid g(2, 2, 1, 1e-9, 1e-9, 1e-9);
  const VectorField f(g);
  EXPECT_THROW(write_ovf("/nonexistent-dir/x.ovf", f), std::runtime_error);
}

TEST(Ovf, ReadFailsOnMissingFile) {
  EXPECT_THROW(read_ovf("/nonexistent-dir/x.ovf"), std::runtime_error);
}

TEST(Ovf, ReadRejectsTruncatedData) {
  const std::string path = ::testing::TempDir() + "swsim_trunc.ovf";
  {
    std::ofstream out(path);
    out << "# OOMMF OVF 2.0\n"
        << "# xnodes: 2\n# ynodes: 2\n# znodes: 1\n"
        << "# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n"
        << "# Begin: Data Text\n"
        << "1 0 0\n"  // only 1 of 4 rows
        << "# End: Data Text\n";
  }
  EXPECT_THROW(read_ovf(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Ovf, ReadRejectsMissingMesh) {
  const std::string path = ::testing::TempDir() + "swsim_nomesh.ovf";
  {
    std::ofstream out(path);
    out << "# OOMMF OVF 2.0\n# Begin: Data Text\n1 0 0\n# End: Data Text\n";
  }
  EXPECT_THROW(read_ovf(path), std::runtime_error);
  std::remove(path.c_str());
}

namespace {
std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << body;
  return path;
}

const char kGoodHeader[] =
    "# OOMMF OVF 2.0\n"
    "# xnodes: 2\n# ynodes: 1\n# znodes: 1\n"
    "# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n";
}  // namespace

TEST(Ovf, MalformedDataLineNamesTheLine) {
  const std::string path = write_temp(
      "swsim_badline.ovf", std::string(kGoodHeader) +
                               "# Begin: Data Text\n"
                               "1 0 0\n"
                               "0 zero 1\n"  // line 10
                               "# End: Data Text\n");
  try {
    read_ovf(path);
    FAIL() << "malformed data line accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("malformed data line"), std::string::npos);
    EXPECT_NE(msg.find("line 10"), std::string::npos);
    EXPECT_NE(msg.find(path), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Ovf, TrailingTokensOnDataLineAreRejected) {
  const std::string path = write_temp(
      "swsim_extra.ovf", std::string(kGoodHeader) +
                             "# Begin: Data Text\n"
                             "1 0 0\n"
                             "0 0 1 0.5\n"  // 4 numbers on a 3-vector line
                             "# End: Data Text\n");
  try {
    read_ovf(path);
    FAIL() << "trailing token accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("trailing data"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Ovf, BadHeaderValueIsAPositionedError) {
  const std::string path = write_temp(
      "swsim_badhdr.ovf",
      "# OOMMF OVF 2.0\n"
      "# xnodes: 3cm\n"  // stoul would silently read "3"
      "# ynodes: 1\n# znodes: 1\n"
      "# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n"
      "# Begin: Data Text\n1 0 0\n1 0 0\n1 0 0\n# End: Data Text\n");
  try {
    read_ovf(path);
    FAIL() << "junk-suffixed header value accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bad xnodes value"), std::string::npos);
    EXPECT_NE(msg.find("3cm"), std::string::npos);
    EXPECT_NE(msg.find("line 2"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Ovf, MissingDataEndIsTruncation) {
  const std::string path = write_temp(
      "swsim_noend.ovf", std::string(kGoodHeader) +
                             "# Begin: Data Text\n1 0 0\n0 0 1\n");
  try {
    read_ovf(path);
    FAIL() << "unterminated data section accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Ovf, StrayContentOutsideDataIsRejected) {
  const std::string path = write_temp(
      "swsim_stray.ovf", std::string(kGoodHeader) +
                             "not a comment\n"
                             "# Begin: Data Text\n1 0 0\n0 0 1\n"
                             "# End: Data Text\n");
  EXPECT_THROW(read_ovf(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Ovf, CountMismatchNamesBothCounts) {
  const std::string path = write_temp(
      "swsim_count.ovf", std::string(kGoodHeader) +
                             "# Begin: Data Text\n1 0 0\n"  // 1 of 2
                             "# End: Data Text\n");
  try {
    read_ovf(path);
    FAIL() << "count mismatch accepted";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("header promises 2"), std::string::npos);
    EXPECT_NE(msg.find("found 1"), std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swsim::io
