#include "io/ovf.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "math/rng.h"

namespace swsim::io {
namespace {

using swsim::math::Grid;
using swsim::math::Pcg32;
using swsim::math::Vec3;
using swsim::math::VectorField;

VectorField random_field(const Grid& g, std::uint64_t seed) {
  Pcg32 rng(seed);
  VectorField f(g);
  for (auto& v : f) {
    v = swsim::math::normalized(
        Vec3{rng.normal(), rng.normal(), rng.normal()});
  }
  return f;
}

TEST(Ovf, RoundTripPreservesFieldAndMesh) {
  const Grid g(6, 4, 2, 5e-9, 4e-9, 1e-9);
  const VectorField original = random_field(g, 42);
  const std::string path = ::testing::TempDir() + "swsim_roundtrip.ovf";
  write_ovf(path, original, "round trip");
  const VectorField back = read_ovf(path);

  ASSERT_EQ(back.grid(), g);
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR(back[i].x, original[i].x, 1e-8);
    EXPECT_NEAR(back[i].y, original[i].y, 1e-8);
    EXPECT_NEAR(back[i].z, original[i].z, 1e-8);
  }
  std::remove(path.c_str());
}

TEST(Ovf, HeaderIsWellFormed) {
  const Grid g(3, 3, 1, 2e-9, 2e-9, 1e-9);
  const VectorField f(g, Vec3{0, 0, 1});
  const std::string path = ::testing::TempDir() + "swsim_header.ovf";
  write_ovf(path, f, "header check");
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "# OOMMF OVF 2.0");
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("# Title: header check"), std::string::npos);
  EXPECT_NE(all.find("# xnodes: 3"), std::string::npos);
  EXPECT_NE(all.find("# valuedim: 3"), std::string::npos);
  EXPECT_NE(all.find("# End: Segment"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Ovf, WriteFailsOnBadPath) {
  const Grid g(2, 2, 1, 1e-9, 1e-9, 1e-9);
  const VectorField f(g);
  EXPECT_THROW(write_ovf("/nonexistent-dir/x.ovf", f), std::runtime_error);
}

TEST(Ovf, ReadFailsOnMissingFile) {
  EXPECT_THROW(read_ovf("/nonexistent-dir/x.ovf"), std::runtime_error);
}

TEST(Ovf, ReadRejectsTruncatedData) {
  const std::string path = ::testing::TempDir() + "swsim_trunc.ovf";
  {
    std::ofstream out(path);
    out << "# OOMMF OVF 2.0\n"
        << "# xnodes: 2\n# ynodes: 2\n# znodes: 1\n"
        << "# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n"
        << "# Begin: Data Text\n"
        << "1 0 0\n"  // only 1 of 4 rows
        << "# End: Data Text\n";
  }
  EXPECT_THROW(read_ovf(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Ovf, ReadRejectsMissingMesh) {
  const std::string path = ::testing::TempDir() + "swsim_nomesh.ovf";
  {
    std::ofstream out(path);
    out << "# OOMMF OVF 2.0\n# Begin: Data Text\n1 0 0\n# End: Data Text\n";
  }
  EXPECT_THROW(read_ovf(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swsim::io
