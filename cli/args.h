// Minimal command-line argument parsing for the swsim CLI.
//
// Grammar: swsim <command> [positional...] [--flag] [--key value]...
// "--key=value" is accepted as a synonym for "--key value". Values never
// start with "--"; a "--key" followed by another "--key" (or nothing) is a
// boolean flag.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace swsim::cli {

class Args {
 public:
  // Parses argv[1..]; argv[1] (if present and not an option) becomes the
  // command. Throws std::invalid_argument on a malformed option (e.g. a
  // bare "--") or a repeated option ("--lambda 55 --lambda 60" is an error,
  // never a silent first/last-one-wins).
  static Args parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }
  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;
  // Returns the value of --key, or nullopt when absent or a bare flag.
  std::optional<std::string> value(const std::string& key) const;
  // Numeric access with a default; throws std::invalid_argument when the
  // value is present but not a number ("--jobs=abc" is a usage error, not
  // a silent fallback).
  double number(const std::string& key, double fallback) const;
  long integer(const std::string& key, long fallback) const;
  // Like integer() but rejects negative values with a clear message — for
  // counts ("--jobs -4" cannot mean anything).
  std::size_t unsigned_integer(const std::string& key,
                               std::size_t fallback) const;

 private:
  std::string command_;
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;  // "" marks a bare flag
};

}  // namespace swsim::cli
