#include "cli/args.h"

#include <stdexcept>

namespace swsim::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  int i = 1;
  if (i < argc && std::string(argv[i]).rfind("--", 0) != 0) {
    args.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == "--") {
      throw std::invalid_argument("Args: bare '--' is not a valid option");
    }
    if (tok.rfind("--", 0) == 0) {
      std::string key = tok.substr(2);
      std::optional<std::string> inline_value;
      // "--key=value" form: split on the first '='.
      if (const auto eq = key.find('='); eq != std::string::npos) {
        inline_value = key.substr(eq + 1);
        key = key.substr(0, eq);
        if (inline_value->empty()) {
          throw std::invalid_argument("Args: option --" + key +
                                      "= has an empty value");
        }
      }
      if (key.empty()) {
        throw std::invalid_argument("Args: empty option name");
      }
      if (args.options_.count(key) > 0) {
        throw std::invalid_argument("Args: option --" + key +
                                    " given more than once");
      }
      if (inline_value) {
        args.options_[key] = *inline_value;
      } else if (i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options_[key] = argv[i + 1];
        ++i;
      } else {
        args.options_[key] = "";  // bare flag
      }
    } else {
      args.positional_.push_back(tok);
    }
  }
  return args;
}

bool Args::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::optional<std::string> Args::value(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return std::nullopt;
  return it->second;
}

double Args::number(const std::string& key, double fallback) const {
  const auto v = value(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: option --" + key +
                                " expects a number, got '" + *v + "'");
  }
}

long Args::integer(const std::string& key, long fallback) const {
  const auto v = value(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    const long parsed = std::stol(*v, &used);
    if (used != v->size()) throw std::invalid_argument("trailing junk");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("Args: option --" + key +
                                " expects an integer, got '" + *v + "'");
  }
}

std::size_t Args::unsigned_integer(const std::string& key,
                                   std::size_t fallback) const {
  const long parsed = integer(key, 0);
  if (!value(key)) return fallback;
  if (parsed < 0) {
    throw std::invalid_argument("Args: option --" + key +
                                " expects a non-negative integer, got '" +
                                *value(key) + "'");
  }
  return static_cast<std::size_t>(parsed);
}

}  // namespace swsim::cli
