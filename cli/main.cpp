// swsim — command-line driver for the spin-wave gate library.
//
//   swsim truthtable <maj|xor|xnor|and|or|nand|nor|maj5|maj7>
//         [--lambda <nm>] [--width <nm>] [engine flags]
//   swsim dispersion [--thickness <nm>] [--material <fecob|yig|permalloy>]
//         [--applied <kA/m>]
//   swsim yield [--gate <maj|xor>] [--sigma-length <nm>] [--sigma-amp <frac>]
//         [--trials <n>] [--lambda <nm>] [engine flags]
//   swsim compare                      (Table III)
//   swsim micromag [--xor] [--lambda <nm>] [--width <nm>] [--cell <nm>]
//         [engine flags]              (runs the LLG backend truth table; slow)
//   swsim batch <jobfile> [--out <csv>] [engine flags]
//   swsim help
//
// Engine flags (the evaluation engine is the default execution path):
//   --jobs <n>     worker threads (0 = hardware concurrency)
//   --no-cache     disable result memoization
//   --cache-dir <d> spill evicted results to (and reuse them from) <d>
//   --serial       bypass the engine: single-threaded legacy path
//   --stats        print engine counters (threads, hit rate, parallelism)
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "bench/harness.h"
#include "cli/args.h"
#include "robust/fault_injection.h"
#include "robust/report.h"
#include "robust/shutdown.h"
#include "robust/status.h"
#include "core/micromag_gate.h"
#include "core/validator.h"
#include "core/variability.h"
#include "engine/batch_runner.h"
#include "engine/hash.h"
#include "io/csv.h"
#include "io/table.h"
#include "mag/kernels/runtime.h"
#include "math/constants.h"
#include "math/spectrum.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/trace_merge.h"
#include "perf/comparison.h"
#include "serve/chaos.h"
#include "serve/client.h"
#include "serve/codec.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/version.h"
#include "serve/workload.h"
#include "wavenet/dispersion.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

namespace {

int usage() {
  std::cout <<
      "swsim - fan-out-of-2 triangle spin-wave logic gates\n"
      "\n"
      "commands:\n"
      "  truthtable <maj|xor|xnor|and|or|nand|nor|maj5|maj7>\n"
      "             [--lambda <nm>] [--width <nm>]\n"
      "  dispersion [--thickness <nm>] [--material fecob|yig|permalloy]\n"
      "             [--applied <kA/m>]\n"
      "  yield      [--gate maj|xor] [--sigma-length <nm>]\n"
      "             [--sigma-amp <frac>] [--trials <n>] [--lambda <nm>]\n"
      "  compare    (regenerate the paper's Table III)\n"
      "  micromag   [--xor] [--lambda <nm>] [--width <nm>] [--cell <nm>]\n"
      "             [--early-stop]  (stop each LLG solve once the live\n"
      "              port envelopes settle; logic unchanged, saved steps\n"
      "              reported — raw amplitudes may differ from a full run)\n"
      "  batch      <jobfile> [--out <csv>] [--report <csv>] [--fail-fast]\n"
      "             (jobfile: one 'truthtable ...' or 'yield ...' per line;\n"
      "              failed jobs are reported, healthy rows still returned)\n"
      "  stats      <metrics.json> [--prom]\n"
      "             (pretty-print a --metrics-out dump; --prom emits\n"
      "              Prometheus text exposition instead of tables)\n"
      "  trace-check <trace.json>    (validate a --trace-out file,\n"
      "              including flow events and merged multi-process files)\n"
      "  trace merge --out <merged.json> <trace.json...>\n"
      "             (join traces from different processes — e.g. a client's\n"
      "              --trace-out and the daemon's — onto one timeline via\n"
      "              their wall_anchor_us; one pid per input file)\n"
      "  version    (build fingerprint: version, git sha, compiler, flags)\n"
      "  serve      --socket <path> | --port <n>  [--dispatchers <n>]\n"
      "             [--queue <n>] [--max-sessions <n>] [--retry-after <s>]\n"
      "             [--idle-timeout <s>] [--frame-timeout <s>]\n"
      "             [--default-deadline <s>] [--max-deadline <s>]\n"
      "             [--tunables <file>] [--request-log <jsonl>]\n"
      "             [--trace-out <f>] [engine flags]\n"
      "             (long-lived daemon; protocol swsim.serve/1 — see\n"
      "              docs/SERVING.md. SIGTERM drains, SIGHUP reloads the\n"
      "              request log and the --tunables file, SIGQUIT dumps\n"
      "              the flight recorder of recent requests)\n"
      "  client     --socket <path> | --port <n>\n"
      "             <hello|healthz|metrics|truthtable <gate>|yield [gate]\n"
      "              |micromag [gate]>\n"
      "             [--client <name>] [--priority <n>] [--id <n>]\n"
      "             [--deadline <s>] [--max-attempts <n>]\n"
      "             [--retry-base <s>] [--retry-max <s>] [--retry-seed <n>]\n"
      "             [--chaos <spec>] [--verify] [--timing]\n"
      "             [--trace-id <id>] [--trace-out <f>]\n"
      "             [gate flags as above]\n"
      "             (exit 0 ok, 1 remote/logic fail, 2 usage, 3 retryable\n"
      "              rejection, 4 transport, 5 deadline/attempts exhausted;\n"
      "              --timing prints the server's per-phase latency split on\n"
      "              stderr; --trace-id stamps requests so the daemon's\n"
      "              trace carries them, --trace-out also records a local\n"
      "              client span — merge the two files with `trace merge`)\n"
      "  loadgen    --socket <path> | --port <n> [--duration <s>]\n"
      "             [--rps <n>] [--concurrency <n>] [--requests <n>]\n"
      "             [--seed <n>] [--mix <tt:yield:hello>] [--trials <n>]\n"
      "             [--deadline <s>] [--call-timeout <s>] [--tenant <prefix>]\n"
      "             [--trace-id <id>] [--out-dir <dir>] [--quick]\n"
      "             (multi-tenant load generator against a live daemon:\n"
      "              closed loop by default, open loop with --rps; writes\n"
      "              BENCH_serve_throughput.json for bench diff/gate and\n"
      "              exits 1 if any exchange hung past --call-timeout)\n"
      "  probe record   [--xor] [--lambda <nm>] [--width <nm>]\n"
      "             [--cell <nm>] [--pattern <bits>] --out <csv>\n"
      "             (one LLG solve; detector series as probe,t,mx,my,mz)\n"
      "  probe spectrum <series.csv> [--probe <name>] [--out <csv>]\n"
      "             (periodogram of a recorded series; prints the peak)\n"
      "  probe tail --socket <path> | --port <n> [--max-frames <n>]\n"
      "             [--duration <s>] [--probe <name>]\n"
      "             (live lock-in envelopes of a serve daemon's solves —\n"
      "              one line per completed demodulation window)\n"
      "  bench list                  (known bench targets)\n"
      "  bench run  [name...] [--quick] [--repeats <n>] [--warmup <n>]\n"
      "             [--bin-dir <dir>] [--out-dir <dir>]\n"
      "             (run bench binaries; each writes BENCH_<name>.json)\n"
      "  bench diff <base.json> <current.json> [--tolerance <frac>]\n"
      "             [--mad-k <k>]  (compare two runs; exit 1 on regression)\n"
      "  bench gate --baseline <dir> [--current <dir>] [--tolerance <frac>]\n"
      "             [--mad-k <k>]  (gate every BENCH_*.json against a\n"
      "              baseline directory; exit 1 on any regression)\n"
      "  help\n"
      "\n"
      "engine flags (accepted by truthtable, yield, micromag, batch):\n"
      "  --jobs <n>  --no-cache  --cache-dir <dir>  --serial  --stats\n"
      "  --cell-jobs <n>     intra-solve threads for the LLG cell sweeps\n"
      "                      (deterministic: output is byte-identical for\n"
      "                      any value; default 1, 0 = hardware threads;\n"
      "                      env SWSIM_CELL_JOBS)\n"
      "\n"
      "resilience flags (same commands):\n"
      "  --timeout <s>       per-job wall-clock budget (0 = none)\n"
      "  --max-retries <n>   retry budget for transient job failures\n"
      "  --retry-backoff <s> linear backoff between retry attempts\n"
      "  --inject <spec,...> arm deterministic faults (testing):\n"
      "                      throw:<label> | divergence:<label> |\n"
      "                      stall:<label>:<s> | nan:<step>\n"
      "\n"
      "observability flags (same commands; see docs/OBSERVABILITY.md):\n"
      "  --trace-out <f>     write Chrome trace_event JSON (Perfetto/\n"
      "                      chrome://tracing) of the solve\n"
      "  --metrics-out <f>   write the metrics registry as JSON\n"
      "  --log-json <f>      write structured events (watchdog trips,\n"
      "                      retries, quarantines, ...) as JSONL\n"
      "  --log-level <l>     debug|info|warn|error (default info;\n"
      "                      needs --log-json)\n"
      "  --profile-out <f>   write a swsim.profile/1 JSON performance\n"
      "                      profile of the run (throughput, term shares,\n"
      "                      cache hit rate, pool utilization, peak RSS)\n"
      "  --progress          live progress line on stderr (default: on\n"
      "                      when stderr is a terminal)\n"
      "  --no-progress       suppress the progress line\n";
  return 0;
}

engine::EngineConfig engine_config_from(const cli::Args& args) {
  engine::EngineConfig cfg;
  cfg.jobs = args.unsigned_integer("jobs", 0);
  cfg.cell_jobs = args.unsigned_integer("cell-jobs", 0);
  cfg.use_cache = !args.has("no-cache");
  cfg.spill_dir = args.value("cache-dir").value_or("");
  cfg.job_timeout_seconds = args.number("timeout", 0.0);
  if (cfg.job_timeout_seconds < 0.0) {
    throw std::invalid_argument("--timeout must be >= 0 seconds");
  }
  cfg.max_retries = args.unsigned_integer("max-retries", 0);
  cfg.retry_backoff_seconds = args.number("retry-backoff", 0.0);
  if (cfg.retry_backoff_seconds < 0.0) {
    throw std::invalid_argument("--retry-backoff must be >= 0 seconds");
  }
  return cfg;
}

// Arms the global fault plan from an --inject spec: comma-separated
//   throw:<label-substr>        job throws before running
//   divergence:<label-substr>   job fails as a numerical divergence
//   stall:<label-substr>:<s>    job sleeps s seconds (trips --timeout)
//   nan:<step>                  LLG stepper poisons a cell at that step
void arm_faults(const std::string& spec) {
  auto& plan = robust::FaultPlan::global();
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    std::vector<std::string> parts;
    std::istringstream ps(item);
    std::string p;
    while (std::getline(ps, p, ':')) parts.push_back(p);
    if (parts.size() == 2 && parts[0] == "throw") {
      plan.inject_throw_in_job(parts[1]);
    } else if (parts.size() == 2 && parts[0] == "divergence") {
      plan.inject_divergence_in_job(parts[1]);
    } else if (parts.size() == 3 && parts[0] == "stall") {
      plan.inject_stall_in_job(parts[1], std::stod(parts[2]));
    } else if (parts.size() == 2 && parts[0] == "nan") {
      plan.inject_nan_at_step(std::stoul(parts[1]));
    } else {
      throw std::invalid_argument("--inject: bad fault spec '" + item +
                                  "' (want throw:<label>, "
                                  "divergence:<label>, stall:<label>:<s> "
                                  "or nan:<step>)");
    }
  }
}

void maybe_print_stats(const cli::Args& args,
                       const engine::BatchRunner& runner) {
  if (args.has("stats")) std::cout << '\n' << runner.stats().str();
}

// Observability sinks for one command invocation (all optional).
struct ObsOptions {
  std::string trace_out;
  std::string metrics_out;
  std::string log_json;
  std::string profile_out;
  bool progress = false;
  obs::LogLevel log_level = obs::LogLevel::kInfo;
  double t0_us = 0.0;  // solve start (monotonic), the profile's wall basis
};

ObsOptions obs_options_from(const cli::Args& args) {
  ObsOptions o;
  o.trace_out = args.value("trace-out").value_or("");
  o.metrics_out = args.value("metrics-out").value_or("");
  o.log_json = args.value("log-json").value_or("");
  o.profile_out = args.value("profile-out").value_or("");
  if (args.has("progress") && args.has("no-progress")) {
    throw std::invalid_argument("--progress conflicts with --no-progress");
  }
  // Default: live progress only when a human is watching stderr, so piped
  // and logged runs stay byte-clean without needing the flag.
  o.progress = args.has("progress") ||
               (!args.has("no-progress") &&
                obs::ProgressReporter::stderr_is_tty());
  // Conflicting combinations are usage errors, caught before any solve:
  // --serial bypasses the engine whose spans/counters the sinks observe,
  // and --stats + --metrics-out would double-report the same counters.
  if (args.has("serial") && !o.trace_out.empty()) {
    throw std::invalid_argument(
        "--trace-out instruments the engine path, which --serial bypasses "
        "(drop --serial)");
  }
  if (args.has("serial") && !o.metrics_out.empty()) {
    throw std::invalid_argument(
        "--metrics-out instruments the engine path, which --serial bypasses "
        "(drop --serial)");
  }
  if (args.has("serial") && !o.profile_out.empty()) {
    throw std::invalid_argument(
        "--profile-out profiles the engine path, which --serial bypasses "
        "(drop --serial)");
  }
  if (args.has("stats") && !o.metrics_out.empty()) {
    throw std::invalid_argument(
        "--metrics-out and --stats double-report the engine counters "
        "(pick one)");
  }
  if (const auto level = args.value("log-level")) {
    if (o.log_json.empty()) {
      throw std::invalid_argument("--log-level requires --log-json <file>");
    }
    o.log_level = obs::parse_log_level(*level);
  } else if (args.has("log-level")) {
    throw std::invalid_argument(
        "--log-level needs a value (debug|info|warn|error)");
  }
  o.t0_us = obs::now_us();
  return o;
}

// Arms the requested sinks. Metrics are reset on arming so a dump covers
// exactly this command, not whatever a previous library user recorded.
void arm_observability(const ObsOptions& o) {
  if (!o.trace_out.empty()) obs::TraceSession::global().start();
  if (!o.metrics_out.empty() || !o.profile_out.empty()) {
    // --profile-out aggregates the same counters a --metrics-out dump
    // exports, so either flag arms (and scopes) the registry.
    obs::MetricsRegistry::global().reset();
    obs::MetricsRegistry::arm();
  }
  if (!o.log_json.empty()) {
    obs::EventLog::global().open(o.log_json, o.log_level);
  }
  if (o.progress) obs::ProgressReporter::global().enable();
}

// Flushes the sinks to their files. Returns 0, or 1 when a sink file could
// not be written (the solve itself already succeeded by this point).
int finish_observability(const ObsOptions& o) {
  int rc = 0;
  std::string error;
  if (o.progress) obs::ProgressReporter::global().finish();
  if (!o.profile_out.empty()) {
    const double wall_s = (obs::now_us() - o.t0_us) * 1e-6;
    const auto profile = obs::RunProfile::collect(wall_s);
    if (!profile.write_json(o.profile_out, &error)) {
      std::cerr << "error: --profile-out: " << error << '\n';
      rc = 1;
    } else {
      std::cout << "profile -> " << o.profile_out << '\n';
    }
    if (o.metrics_out.empty()) obs::MetricsRegistry::disarm();
  }
  if (!o.trace_out.empty()) {
    auto& session = obs::TraceSession::global();
    session.stop();
    const std::size_t events = session.event_count();
    if (!session.write_chrome_json(o.trace_out, &error)) {
      std::cerr << "error: --trace-out: " << error << '\n';
      rc = 1;
    } else {
      std::cout << "trace: " << events << " events -> " << o.trace_out
                << '\n';
    }
  }
  if (!o.metrics_out.empty()) {
    obs::MetricsRegistry::disarm();
    if (!obs::MetricsRegistry::global().write_json(o.metrics_out, &error)) {
      std::cerr << "error: --metrics-out: " << error << '\n';
      rc = 1;
    } else {
      std::cout << "metrics -> " << o.metrics_out << '\n';
    }
  }
  if (!o.log_json.empty()) obs::EventLog::global().close();
  return rc;
}

// Gate geometry from CLI flags. The spec construction itself (factories,
// cache keys) lives in serve/workload.h, shared with the serve daemon so
// both front-ends are byte-identical by construction.
serve::GateParams gate_params_from(const std::string& kind,
                                   const cli::Args& args) {
  serve::GateParams p;
  p.kind = kind;
  p.lambda_nm = args.number("lambda", 55.0);
  if (args.value("width")) p.width_nm = args.number("width", 0.0);
  return p;
}

std::optional<serve::TruthTableSpec> make_gate_spec(const std::string& kind,
                                                    const cli::Args& args) {
  return serve::make_truth_table_spec(gate_params_from(kind, args));
}

int cmd_truthtable(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "truthtable: missing gate name\n";
    return 2;
  }
  const std::string kind = args.positional()[0];
  const auto spec = make_gate_spec(kind, args);
  if (!spec) {
    std::cerr << "truthtable: unknown gate '" << kind << "'\n";
    return 2;
  }

  const ObsOptions obs_opts = obs_options_from(args);
  arm_observability(obs_opts);
  core::ValidationReport report;
  if (args.has("serial")) {
    const auto gate = spec->factory();
    report = core::validate_gate(*gate);
    std::cout << core::format_report(report);
  } else {
    engine::BatchRunner runner(engine_config_from(args));
    report = runner.run_truth_table(spec->factory, spec->key);
    std::cout << core::format_report(report);
    maybe_print_stats(args, runner);
  }
  const int obs_rc = finish_observability(obs_opts);
  if (obs_rc != 0) return obs_rc;
  return report.all_pass ? 0 : 1;
}

int cmd_dispersion(const cli::Args& args) {
  mag::Material mat = mag::Material::fecob();
  const auto name = args.value("material").value_or("fecob");
  if (name == "yig") mat = mag::Material::yig();
  else if (name == "permalloy") mat = mag::Material::permalloy();
  else if (name != "fecob") {
    std::cerr << "dispersion: unknown material '" << name << "'\n";
    return 2;
  }
  const double thickness = nm(args.number("thickness", 1.0));
  const double applied = ka_per_m(args.number("applied", 0.0));
  const wavenet::Dispersion disp(mat, thickness, applied);

  Table t({"lambda (nm)", "f (GHz)", "v_g (m/s)", "L_att (um)"});
  for (double l : {500.0, 250.0, 125.0, 80.0, 55.0, 40.0, 30.0, 20.0}) {
    const double k = wavenet::Dispersion::k_of_lambda(nm(l));
    t.add_row({Table::num(l, 0), Table::num(to_ghz(disp.frequency(k)), 2),
               Table::num(disp.group_velocity(k), 0),
               Table::num(disp.attenuation_length(k) * 1e6, 2)});
  }
  std::cout << mat.name << ", t = " << to_nm(thickness) << " nm, FMR floor "
            << Table::num(to_ghz(disp.frequency(0)), 2) << " GHz\n\n"
            << t.str();
  return 0;
}

// The yield workload description shared by cmd_yield and cmd_batch. The
// gate is named either positionally ("yield xor ...", batch-file style) or
// via --gate (the historical standalone spelling); positional wins.
serve::YieldParams yield_params_from(const cli::Args& args) {
  serve::YieldParams p;
  p.kind = !args.positional().empty() ? args.positional()[0]
                                      : args.value("gate").value_or("maj");
  p.lambda_nm = args.number("lambda", 55.0);
  if (args.value("width")) p.width_nm = args.number("width", 0.0);
  p.sigma_length_nm = args.number("sigma-length", 2.0);
  p.sigma_amp = args.number("sigma-amp", 0.05);
  p.trials = static_cast<std::size_t>(args.integer("trials", 500));
  return p;
}

std::optional<serve::YieldSpec> make_yield_spec(const cli::Args& args) {
  return serve::make_yield_spec(yield_params_from(args));
}

void print_yield(const std::string& kind, const core::YieldReport& r) {
  std::cout << serve::render_yield(kind, r);
}

int cmd_yield(const cli::Args& args) {
  const auto spec = make_yield_spec(args);
  if (!spec) {
    std::cerr << "yield: unknown gate\n";
    return 2;
  }

  const ObsOptions obs_opts = obs_options_from(args);
  arm_observability(obs_opts);
  core::YieldReport r;
  if (args.has("serial")) {
    const auto gate = spec->factory();
    r = core::estimate_yield(*gate, spec->model, spec->trials);
  } else {
    engine::BatchRunner runner(engine_config_from(args));
    r = runner.run_yield(spec->factory, spec->model, spec->trials);
    print_yield(spec->kind, r);
    maybe_print_stats(args, runner);
    return finish_observability(obs_opts);
  }
  print_yield(spec->kind, r);
  return finish_observability(obs_opts);
}

int cmd_compare() {
  const perf::Comparison cmp;
  Table t({"design", "function", "cells", "delay (ns)", "energy (aJ)"});
  for (const auto& row : cmp.rows()) {
    t.add_row({row.design, row.function, std::to_string(row.cells),
               Table::num(to_ns(row.delay), 2),
               Table::num(to_aj(row.energy), 1)});
  }
  std::cout << t.str();
  const auto h = cmp.headlines();
  std::cout << "\nMAJ saving vs ladder: " << Table::num(
                   h.maj_saving_vs_ladder * 100, 0)
            << "%   XOR saving vs ladder: "
            << Table::num(h.xor_saving_vs_ladder * 100, 0) << "%\n";
  return 0;
}

int cmd_micromag(const cli::Args& args) {
  // Built through the same spec the serve daemon uses, so the CLI and a
  // served "micromag" request share one configuration (and cache key).
  serve::MicromagParams params;
  params.kind = args.has("xor") ? "xor" : "maj";
  params.lambda_nm = args.number("lambda", 50.0);
  params.width_nm = args.number("width", 20.0);
  params.cell_nm = args.number("cell", 4.0);
  params.early_stop = args.has("early-stop");
  const auto spec = serve::make_micromag_spec(params);
  const core::MicromagGateConfig& cfg = spec->config;
  const ObsOptions obs_opts = obs_options_from(args);
  arm_observability(obs_opts);
  // Early stop reports its savings through PhysicsRegistry, which records
  // only while metrics are armed — arm them for the run regardless of
  // --metrics-out so the console line below is meaningful.
  if (params.early_stop) obs::MetricsRegistry::arm();

  {
    // Banner from a probe instance (construction is cheap; no LLG run).
    const core::MicromagTriangleGate probe(cfg);
    std::cout << "running LLG truth table (" << (1u << probe.num_inputs())
              << " patterns + calibration, f = "
              << Table::num(to_ghz(probe.drive_frequency()), 1)
              << " GHz)...\n";
  }

  core::ValidationReport report;
  std::unique_ptr<engine::BatchRunner> runner;
  if (args.has("serial")) {
    core::MicromagTriangleGate gate(cfg);
    report = core::validate_gate(gate);
  } else {
    engine::EngineConfig ecfg = engine_config_from(args);
    // Seeded physics (thermal noise, edge roughness) must not be served
    // from the cache: the seed is part of the sample, and sweeps want
    // fresh draws.
    if (cfg.temperature > 0.0 || cfg.roughness.has_value()) {
      ecfg.use_cache = false;
    }
    runner = std::make_unique<engine::BatchRunner>(ecfg);
    report = runner->run_truth_table(spec->factory, spec->key, spec->prepare);
  }
  std::cout << core::format_report(report);
  if (params.early_stop) {
    const auto phys = obs::PhysicsRegistry::global().snapshot();
    std::cout << "early stop saved " << phys.early_stop_saved_steps
              << " integration steps\n";
  }
  if (runner) maybe_print_stats(args, *runner);
  const int obs_rc = finish_observability(obs_opts);
  if (obs_rc != 0) return obs_rc;
  return report.all_pass ? 0 : 1;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

// Runs a job-list file through one shared engine: every line is a
// `truthtable ...` or `yield ...` command (same flags as the standalone
// commands); '#' starts a comment. Identical configurations across lines
// are solved once — the cache turns a sweep with repeated geometries into
// incremental work. Results land in a CSV (--out) or a console table.
//
// Fault tolerance: lines run through the engine's checked entry points.
// A line whose jobs fail (divergence, injected fault, timeout) gets a
// non-ok status column and a row in the failure report (printed, or
// written to --report <csv>), while every healthy line's results are
// returned as usual. The exit code ignores failed lines unless
// --fail-fast is given, which stops at the first failed line and exits
// nonzero.
int cmd_batch(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "batch: missing job-list file\n";
    return 2;
  }
  std::ifstream in(args.positional()[0]);
  if (!in) {
    std::cerr << "batch: cannot open '" << args.positional()[0] << "'\n";
    return 2;
  }
  const bool fail_fast = args.has("fail-fast");
  if (const auto inject = args.value("inject")) arm_faults(*inject);
  const ObsOptions obs_opts = obs_options_from(args);
  arm_observability(obs_opts);

  // ^C / SIGTERM: trip the process-wide cancel (in-flight jobs stop at
  // their next poll point), stop reading lines, then fall through to the
  // normal epilogue so partial results, the failure report, and every
  // armed observability sink are still flushed. Exit code 130 marks the
  // interrupted-but-flushed outcome.
  auto& shutdown_signal = robust::ShutdownSignal::global();
  shutdown_signal.install(robust::ShutdownConfig{});

  engine::BatchRunner runner(engine_config_from(args));
  const std::vector<std::string> headers = {
      "line", "command", "gate",          "lambda_nm", "all_pass",
      "yield", "max_asymmetry", "min_margin", "mean_worst_margin",
      "status"};
  std::vector<std::vector<std::string>> results;
  robust::FailureReport failures;

  std::string line;
  std::size_t line_no = 0;
  bool all_ok = true;
  bool aborted = false;
  bool interrupted = false;
  while (std::getline(in, line)) {
    if (shutdown_signal.requested()) {
      interrupted = true;
      break;
    }
    ++line_no;
    const auto hash_pos = line.find('#');
    if (hash_pos != std::string::npos) line = line.substr(0, hash_pos);
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    std::vector<const char*> argv{"swsim"};
    for (const auto& t : tokens) argv.push_back(t.c_str());
    cli::Args job_args;
    try {
      job_args = cli::Args::parse(static_cast<int>(argv.size()), argv.data());
    } catch (const std::exception& e) {
      std::cerr << "batch: line " << line_no << ": " << e.what() << '\n';
      return 2;
    }

    const std::string label = "job " + std::to_string(line_no);
    bool line_ok = true;
    std::string status = "ok";
    if (job_args.command() == "truthtable") {
      if (job_args.positional().empty()) {
        std::cerr << "batch: line " << line_no << ": missing gate name\n";
        return 2;
      }
      const std::string kind = job_args.positional()[0];
      const auto spec = make_gate_spec(kind, job_args);
      if (!spec) {
        std::cerr << "batch: line " << line_no << ": unknown gate '" << kind
                  << "'\n";
        return 2;
      }
      const auto outcome =
          runner.run_truth_table_checked(spec->factory, spec->key, {}, label);
      line_ok = outcome.ok();
      if (!line_ok) {
        failures.merge(outcome.failures);
        status = to_string(outcome.failures.failures().front().status.code());
      }
      // Logic failures (a healthy solve whose table does not pass) drive
      // the exit code; solve failures are reported, not fatal, unless
      // --fail-fast.
      all_ok = all_ok && (!line_ok || outcome.report.all_pass);
      results.push_back({std::to_string(line_no), "truthtable", kind,
                         Table::num(job_args.number("lambda", 55.0), 1),
                         line_ok ? (outcome.report.all_pass ? "1" : "0") : "",
                         "",
                         Table::num(outcome.report.max_output_asymmetry, 6),
                         Table::num(outcome.report.min_margin, 6), "",
                         status});
    } else if (job_args.command() == "yield") {
      const auto spec = make_yield_spec(job_args);
      if (!spec) {
        std::cerr << "batch: line " << line_no << ": unknown gate\n";
        return 2;
      }
      const auto outcome = runner.run_yield_checked(spec->factory,
                                                    spec->model, spec->trials,
                                                    label);
      line_ok = outcome.ok();
      if (!line_ok) {
        failures.merge(outcome.failures);
        status = to_string(outcome.failures.failures().front().status.code());
      }
      results.push_back({std::to_string(line_no), "yield", spec->kind,
                         Table::num(job_args.number("lambda", 55.0), 1), "",
                         Table::num(outcome.report.yield, 6), "", "",
                         Table::num(outcome.report.mean_worst_margin, 6),
                         status});
    } else {
      std::cerr << "batch: line " << line_no << ": unknown command '"
                << job_args.command() << "' (want truthtable|yield)\n";
      return 2;
    }

    if (!line_ok && fail_fast) {
      std::cerr << "batch: line " << line_no
                << " failed, stopping (--fail-fast)\n";
      aborted = true;
      break;
    }
  }

  if (const auto out = args.value("out")) {
    io::CsvWriter csv(*out);
    csv.write_row(headers);
    for (const auto& row : results) csv.write_row(row);
    std::cout << "batch: " << results.size() << " jobs -> " << *out << '\n';
  } else {
    Table t(headers);
    for (auto& row : results) t.add_row(std::move(row));
    std::cout << t.str();
  }
  if (!failures.empty()) {
    std::cout << '\n' << failures.str();
    if (const auto report_path = args.value("report")) {
      io::CsvWriter csv(*report_path);
      csv.write_row(robust::FailureReport::csv_header());
      for (const auto& row : failures.csv_rows()) csv.write_row(row);
      std::cout << "batch: failure report -> " << *report_path << '\n';
    }
  }
  maybe_print_stats(args, runner);
  const int obs_rc = finish_observability(obs_opts);
  if (interrupted) {
    std::cerr << "batch: interrupted by signal after " << results.size()
              << " line" << (results.size() == 1 ? "" : "s")
              << "; partial results and reports were written\n";
    return 130;
  }
  if (obs_rc != 0) return obs_rc;
  if (aborted) return 1;
  return all_ok ? 0 : 1;
}

std::string read_file(const std::string& path, const char* cmd) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error(std::string(cmd) + ": cannot open '" + path +
                             "'");
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// Quantile estimate from an exported histogram's [[le, n], ...] buckets —
// the offline mirror of obs::Histogram::Snapshot::quantile (the overflow
// "inf" bucket reports its lower bound).
double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<double>& counts,
                             double total, double q) {
  if (total <= 0.0) return 0.0;
  const double target = q * total;
  double seen = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (seen + counts[i] < target) {
      seen += counts[i];
      continue;
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    if (i >= bounds.size()) return lo;  // overflow bucket
    if (counts[i] <= 0.0) return bounds[i];
    return lo + (bounds[i] - lo) * ((target - seen) / counts[i]);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// Parses a dump file for stats/trace-check with invalid-input semantics:
// an empty file or malformed JSON (e.g. a dump truncated by a crash or a
// full disk) is exit code 2 with the parser's positioned message, the same
// class as a usage error — NOT a clean exit that would let a gating script
// mistake a dead dump for a healthy empty one.
std::optional<obs::JsonValue> parse_dump(const std::string& path,
                                         const char* cmd) {
  const std::string text = read_file(path, cmd);
  if (text.find_first_not_of(" \t\r\n") == std::string::npos) {
    std::cerr << cmd << ": '" << path << "': empty file (was the run "
              << "interrupted before the dump was flushed?)\n";
    return std::nullopt;
  }
  try {
    return obs::parse_json(text);
  } catch (const std::exception& e) {
    std::cerr << cmd << ": '" << path << "': " << e.what()
              << " (truncated dump?)\n";
    return std::nullopt;
  }
}

// A registry metric name as a Prometheus metric name: [a-zA-Z0-9_:] only,
// "swsim_" prefix so the whole family is namespaced in a shared scrape.
std::string prom_name(const std::string& name) {
  std::string out = "swsim_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

// Renders a metrics dump as Prometheus text exposition (format 0.0.4):
// counters/gauges as single samples, histograms as the _bucket/_sum/_count
// triple with *cumulative* le buckets (the dump stores per-bucket counts).
int print_prometheus(const obs::JsonValue& counters,
                     const obs::JsonValue& gauges,
                     const obs::JsonValue& histograms) {
  std::ostringstream os;
  os.precision(15);
  for (const auto& [name, v] : counters.object()) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v.number() << "\n";
  }
  for (const auto& [name, v] : gauges.object()) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << v.number() << "\n";
  }
  for (const auto& [name, h] : histograms.object()) {
    const auto* count = h.find("count");
    const auto* sum = h.find("sum");
    const auto* buckets = h.find("buckets");
    if (!count || !sum || !buckets || !buckets->is_array()) {
      std::cerr << "stats: histogram '" << name << "' is malformed\n";
      return 2;
    }
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    double cumulative = 0.0;
    for (const auto& pair : buckets->array()) {
      if (!pair.is_array() || pair.array().size() != 2) {
        std::cerr << "stats: histogram '" << name << "' has a bad bucket\n";
        return 2;
      }
      const auto& le = pair.array()[0];
      cumulative += pair.array()[1].number();
      if (le.is_number()) {
        os << n << "_bucket{le=\"" << le.number() << "\"} " << cumulative
           << "\n";
      }
    }
    os << n << "_bucket{le=\"+Inf\"} " << count->number() << "\n"
       << n << "_sum " << sum->number() << "\n"
       << n << "_count " << count->number() << "\n";
  }
  std::cout << os.str();
  return 0;
}

// Pretty-prints a --metrics-out dump as console tables.
int cmd_stats(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "stats: missing metrics file (from --metrics-out)\n";
    return 2;
  }
  const std::string path = args.positional()[0];
  const auto parsed = parse_dump(path, "stats");
  if (!parsed) return 2;
  const obs::JsonValue& root = *parsed;
  const auto* counters = root.find("counters");
  const auto* gauges = root.find("gauges");
  const auto* histograms = root.find("histograms");
  if (!counters || !gauges || !histograms || !counters->is_object() ||
      !gauges->is_object() || !histograms->is_object()) {
    std::cerr << "stats: '" << path
              << "' is not a swsim metrics dump (missing counters/gauges/"
                 "histograms)\n";
    return 2;
  }
  if (counters->object().empty() && gauges->object().empty() &&
      histograms->object().empty()) {
    std::cerr << "stats: '" << path << "': dump contains no metrics (was "
              << "the registry armed? see --metrics-out)\n";
    return 2;
  }
  if (args.has("prom")) {
    return print_prometheus(*counters, *gauges, *histograms);
  }

  Table scalars({"metric", "value"});
  std::size_t n_scalars = 0;
  for (const auto& [name, v] : counters->object()) {
    scalars.add_row({name, Table::num(v.number(), 0)});
    ++n_scalars;
  }
  for (const auto& [name, v] : gauges->object()) {
    scalars.add_row({name, Table::num(v.number(), 0)});
    ++n_scalars;
  }
  if (n_scalars > 0) std::cout << scalars.str();

  if (!histograms->object().empty()) {
    Table ht({"histogram", "count", "mean", "p50", "p90", "p99"});
    for (const auto& [name, h] : histograms->object()) {
      const auto* count = h.find("count");
      const auto* sum = h.find("sum");
      const auto* buckets = h.find("buckets");
      if (!count || !sum || !buckets || !buckets->is_array()) {
        std::cerr << "stats: histogram '" << name << "' is malformed\n";
        return 2;
      }
      std::vector<double> bounds, bucket_counts;
      for (const auto& pair : buckets->array()) {
        if (!pair.is_array() || pair.array().size() != 2) {
          std::cerr << "stats: histogram '" << name << "' has a bad bucket\n";
          return 2;
        }
        const auto& le = pair.array()[0];
        if (le.is_number()) bounds.push_back(le.number());
        bucket_counts.push_back(pair.array()[1].number());
      }
      const double total = count->number();
      const double mean = total > 0.0 ? sum->number() / total : 0.0;
      ht.add_row(
          {name, Table::num(total, 0), Table::num(mean, 6),
           Table::num(quantile_from_buckets(bounds, bucket_counts, total,
                                            0.50), 6),
           Table::num(quantile_from_buckets(bounds, bucket_counts, total,
                                            0.90), 6),
           Table::num(quantile_from_buckets(bounds, bucket_counts, total,
                                            0.99), 6)});
    }
    std::cout << '\n' << ht.str();
  }
  return 0;
}

// Validates a --trace-out file: parseable JSON, the Chrome trace_event
// wrapper shape, and well-formed X (complete), M (metadata) and s/t/f
// (flow) events — including files produced by `swsim trace merge`, where
// events span several pids. The structural half of the acceptance check
// scripts/check.sh runs after a traced batch.
int cmd_trace_check(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "trace-check: missing trace file (from --trace-out)\n";
    return 2;
  }
  const std::string path = args.positional()[0];
  const auto parsed = parse_dump(path, "trace-check");
  if (!parsed) return 2;
  const obs::JsonValue& root = *parsed;
  const auto* events = root.find("traceEvents");
  if (!events || !events->is_array()) {
    std::cerr << "trace-check: '" << path
              << "': missing \"traceEvents\" array\n";
    return 2;
  }
  std::size_t complete = 0, metadata = 0, flows = 0;
  std::vector<std::pair<double, double>> pid_tids;  // distinct (pid, tid)
  std::vector<double> pids;
  for (std::size_t i = 0; i < events->array().size(); ++i) {
    const auto& e = events->array()[i];
    const auto fail = [&](const std::string& why) {
      std::cerr << "trace-check: event #" << i << ": " << why << '\n';
      return 2;
    };
    if (!e.is_object()) return fail("not an object");
    const auto* ph = e.find("ph");
    const auto* name = e.find("name");
    const auto* tid = e.find("tid");
    if (!ph || !ph->is_string()) return fail("missing \"ph\"");
    if (!name || !name->is_string()) return fail("missing \"name\"");
    if (!tid || !tid->is_number()) return fail("missing \"tid\"");
    const double pid = [&] {
      const auto* p = e.find("pid");
      return p && p->is_number() ? p->number() : 1.0;
    }();
    if (std::find(pids.begin(), pids.end(), pid) == pids.end()) {
      pids.push_back(pid);
    }
    if (ph->str() == "M") {
      ++metadata;
      continue;
    }
    const std::string& phase = ph->str();
    const bool is_flow = phase == "s" || phase == "t" || phase == "f";
    if (phase != "X" && !is_flow) {
      return fail("unexpected phase '" + phase + "'");
    }
    const auto* ts = e.find("ts");
    if (!ts || !ts->is_number() || ts->number() < 0.0) {
      return fail("bad \"ts\"");
    }
    if (is_flow) {
      // Flow events carry the arrow id instead of a duration; we export it
      // as a hex string so 64-bit ids survive JSON doubles.
      const auto* id = e.find("id");
      if (!id || (!id->is_string() && !id->is_number())) {
        return fail("flow event without \"id\"");
      }
      ++flows;
    } else {
      const auto* dur = e.find("dur");
      if (!dur || !dur->is_number() || dur->number() < 0.0) {
        return fail("bad \"dur\"");
      }
      ++complete;
    }
    const std::pair<double, double> key{pid, tid->number()};
    if (std::find(pid_tids.begin(), pid_tids.end(), key) == pid_tids.end()) {
      pid_tids.push_back(key);
    }
  }
  if (complete == 0) {
    // A trace with no complete events means the session never recorded a
    // span — "valid JSON" is not the same as "a trace of a run".
    std::cerr << "trace-check: '" << path << "': no complete (ph=X) events "
              << "(was tracing armed for the whole run?)\n";
    return 2;
  }
  std::cout << "trace OK: " << complete << " complete events, " << flows
            << " flow events, " << metadata << " metadata events, "
            << pid_tids.size() << " thread"
            << (pid_tids.size() == 1 ? "" : "s") << " across " << pids.size()
            << " process" << (pids.size() == 1 ? "" : "es") << '\n';
  return 0;
}

// ---------------------------------------------------------------------------
// swsim trace merge — join traces exported by different processes (the
// client's --trace-out, the daemon's) onto one timeline. The rebase logic
// lives in obs::merge_trace_dumps; this wrapper only does file I/O.

int cmd_trace_merge(const cli::Args& args) {
  const auto out_path = args.value("out");
  if (!out_path) {
    std::cerr << "trace merge: --out <merged.json> is required\n";
    return 2;
  }
  std::vector<std::string> inputs(args.positional().begin() + 1,
                                  args.positional().end());
  if (inputs.empty()) {
    std::cerr << "trace merge: need at least one trace file\n";
    return 2;
  }

  std::vector<obs::JsonValue> docs;
  docs.reserve(inputs.size());
  for (const auto& p : inputs) {
    auto doc = parse_dump(p, "trace merge");
    if (!doc) return 2;
    docs.push_back(std::move(*doc));
  }
  std::vector<std::pair<std::string, const obs::JsonValue*>> refs;
  refs.reserve(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    refs.emplace_back(inputs[i], &docs[i]);
  }

  obs::TraceMergeStats stats;
  std::string merged;
  try {
    merged = obs::merge_trace_dumps(refs, &stats);
  } catch (const std::exception& ex) {
    std::cerr << "trace merge: " << ex.what() << '\n';
    return 2;
  }

  std::ofstream out(*out_path, std::ios::trunc);
  if (!out || !(out << merged)) {
    std::cerr << "trace merge: cannot write '" << *out_path << "'\n";
    return 1;
  }
  std::cout << "merged " << stats.files << " traces (" << stats.events
            << " events) -> " << *out_path << '\n';
  return 0;
}

int cmd_trace(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "trace: missing subcommand (merge)\n";
    return 2;
  }
  if (args.positional()[0] == "merge") return cmd_trace_merge(args);
  std::cerr << "trace: unknown subcommand '" << args.positional()[0]
            << "' (want merge)\n";
  return 2;
}

// ---------------------------------------------------------------------------
// swsim version / serve / client — the long-lived service front-end
// (protocol swsim.serve/1, see docs/SERVING.md).

int cmd_version() {
  std::cout << serve::describe(serve::build_info());
  return 0;
}

int cmd_serve(const cli::Args& args) {
  serve::ServerConfig cfg;
  cfg.socket_path = args.value("socket").value_or("");
  cfg.tcp_port = static_cast<int>(args.integer("port", 0));
  cfg.dispatchers = args.unsigned_integer("dispatchers", 2);
  cfg.queue_capacity = args.unsigned_integer("queue", 64);
  cfg.max_sessions = args.unsigned_integer("max-sessions", 64);
  cfg.retry_after_s = args.number("retry-after", 0.5);
  if (cfg.retry_after_s < 0.0) {
    throw std::invalid_argument("--retry-after must be >= 0 seconds");
  }
  cfg.idle_timeout_s = args.number("idle-timeout", 300.0);
  cfg.frame_timeout_s = args.number("frame-timeout", 30.0);
  cfg.default_deadline_s = args.number("default-deadline", 0.0);
  cfg.max_deadline_s = args.number("max-deadline", 0.0);
  if (cfg.idle_timeout_s < 0.0 || cfg.frame_timeout_s < 0.0 ||
      cfg.default_deadline_s < 0.0 || cfg.max_deadline_s < 0.0) {
    throw std::invalid_argument("serve timeouts/deadlines must be >= 0");
  }
  cfg.tunables_file = args.value("tunables").value_or("");
  cfg.request_log = args.value("request-log").value_or("");
  // The daemon is the crash-dump case the flight recorder exists for; the
  // in-process servers tests/benches start leave it disarmed.
  cfg.arm_crash_dump = true;
  cfg.engine = engine_config_from(args);
  if (const auto inject = args.value("inject")) arm_faults(*inject);

  // A daemon's stderr is a log stream: worker threads must never write
  // progress lines into it, whatever fd 2 happens to be.
  obs::ProgressReporter::global().suppress_output();
  // Metrics stay armed for the daemon's lifetime — the /metrics built-in
  // serves the registry to any client.
  obs::MetricsRegistry::global().reset();
  obs::MetricsRegistry::arm();
  // --trace-out arms tracing for the daemon's whole lifetime; the file is
  // written at shutdown. Merge it with a client's trace via `trace merge`.
  const std::string trace_out = args.value("trace-out").value_or("");
  if (!trace_out.empty()) obs::TraceSession::global().start();

  serve::Server server(cfg);
  if (const auto status = server.start(); !status.is_ok()) {
    std::cerr << "serve: " << status.str() << '\n';
    return status.code() == robust::StatusCode::kInvalidConfig ? 2 : 1;
  }
  if (!cfg.engine.spill_dir.empty()) {
    const auto rec = server.recovery_report();
    std::cout << "serve: cache recovery: " << rec.scanned << " scanned, "
              << rec.healthy << " healthy, " << rec.quarantined
              << " quarantined, " << rec.removed_tmp << " tmp removed\n";
  }
  std::cout << "serve: listening on " << server.endpoint() << " (sha "
            << serve::build_info().git_sha << ")\n"
            << std::flush;
  const int rc = server.run_until_shutdown();
  if (!trace_out.empty()) {
    auto& session = obs::TraceSession::global();
    session.stop();
    const std::size_t events = session.event_count();
    std::string error;
    if (!session.write_chrome_json(trace_out, &error)) {
      std::cerr << "serve: --trace-out: " << error << '\n';
      return rc == 0 ? 1 : rc;
    }
    std::cout << "serve: trace: " << events << " events -> " << trace_out
              << '\n';
  }
  return rc;
}

// Exit codes: 0 success (truthtable additionally requires all_pass), 1
// remote failure / logic fail / verify mismatch, 2 usage, 3 retryable
// rejection (overloaded or draining, single attempt), 4 connect/transport
// error, 5 deadline exceeded or retry attempts exhausted. 5 is the "your
// budget ran out" signal: scripts treat it as try-later-with-more-budget,
// distinct from both a hard failure (1) and a dead transport (4).
constexpr int kClientExitDeadline = 5;

int cmd_client(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "client: missing request type "
                 "(hello|healthz|metrics|truthtable|yield)\n";
    return 2;
  }
  const std::string& type = args.positional()[0];
  serve::Request request;
  request.id = args.unsigned_integer("id", 0);
  request.client = args.value("client").value_or("anon");
  request.priority = static_cast<int>(args.integer("priority", 0));
  if (type == "hello") {
    request.type = serve::RequestType::kHello;
  } else if (type == "healthz") {
    request.type = serve::RequestType::kHealthz;
  } else if (type == "metrics") {
    request.type = serve::RequestType::kMetrics;
  } else if (type == "truthtable") {
    if (args.positional().size() < 2) {
      std::cerr << "client: truthtable needs a gate name\n";
      return 2;
    }
    request.type = serve::RequestType::kTruthTable;
    request.gate = gate_params_from(args.positional()[1], args);
  } else if (type == "yield") {
    request.type = serve::RequestType::kYield;
    serve::YieldParams p;
    p.kind = args.positional().size() > 1 ? args.positional()[1]
                                          : args.value("gate").value_or("maj");
    p.lambda_nm = args.number("lambda", 55.0);
    if (args.value("width")) p.width_nm = args.number("width", 0.0);
    p.sigma_length_nm = args.number("sigma-length", 2.0);
    p.sigma_amp = args.number("sigma-amp", 0.05);
    p.trials = static_cast<std::size_t>(args.integer("trials", 500));
    request.yield = p;
  } else if (type == "micromag") {
    request.type = serve::RequestType::kMicromag;
    serve::MicromagParams p;
    p.kind = args.positional().size() > 1 ? args.positional()[1]
                                          : args.value("gate").value_or("maj");
    p.lambda_nm = args.number("lambda", 50.0);
    p.width_nm = args.number("width", 20.0);
    p.cell_nm = args.number("cell", 4.0);
    p.early_stop = args.has("early-stop");
    request.micromag = p;
  } else {
    std::cerr << "client: unknown request type '" << type
              << "' (want hello|healthz|metrics|truthtable|yield|micromag)\n";
    return 2;
  }

  const std::string socket_path = args.value("socket").value_or("");
  const int tcp_port = static_cast<int>(args.integer("port", 0));
  if (socket_path.empty() && !args.value("port")) {
    std::cerr << "client: need --socket <path> or --port <n>\n";
    return 2;
  }

  // Cross-process trace context: --trace-id stamps the request so the
  // daemon's spans and request log carry it; --trace-out additionally
  // records the client's side of the exchange, ready for `trace merge`
  // against the daemon's own --trace-out file.
  const std::string trace_out = args.value("trace-out").value_or("");
  std::string trace_id = args.value("trace-id").value_or("");
  if (trace_id.empty() && !trace_out.empty()) {
    trace_id = "cli-" + std::to_string(::getpid()) + "-" +
               std::to_string(static_cast<long long>(obs::wall_now_us()));
  }
  request.trace_id = trace_id;

  if (const auto chaos_spec = args.value("chaos")) {
    // Chaos mode: the request becomes the template for a storm of seeded
    // hostile exchanges. The only failure is a hung session — everything
    // else (structured errors, slammed doors) is the contract working.
    serve::ChaosProfile profile;
    if (const auto parsed = serve::parse_chaos_spec(*chaos_spec, &profile);
        !parsed.is_ok()) {
      std::cerr << "client: --chaos: " << parsed.message() << '\n';
      return 2;
    }
    const serve::ChaosSummary summary =
        serve::run_chaos(profile, socket_path, tcp_port, request);
    std::cout << summary.str() << '\n';
    return summary.clean() ? 0 : 1;
  }

  serve::RetryPolicy policy;
  policy.max_attempts = static_cast<int>(args.integer("max-attempts", 1));
  if (policy.max_attempts < 1) {
    std::cerr << "client: --max-attempts must be >= 1\n";
    return 2;
  }
  policy.deadline_s = args.number("deadline", 0.0);
  policy.base_backoff_s = args.number("retry-base", 0.05);
  policy.max_backoff_s = args.number("retry-max", 2.0);
  policy.seed = args.unsigned_integer("retry-seed", 1);
  if (policy.deadline_s < 0.0 || policy.base_backoff_s < 0.0 ||
      policy.max_backoff_s < 0.0) {
    std::cerr << "client: --deadline/--retry-base/--retry-max must be >= 0\n";
    return 2;
  }

  serve::Response response;
  serve::RetryStats stats;
  robust::Status status;
  {
    // The client's half of the cross-process trace: a span over the whole
    // exchange with the flow 's' (start) the server's 't' steps chain to.
    // Both sides derive the flow id from trace_id via the same hash, so
    // the merged file connects them with no negotiation. When --trace-out
    // is absent tracing stays disarmed and all of this is a no-op.
    if (!trace_out.empty()) obs::TraceSession::global().start();
    obs::Span span("client.request " + type, "client",
                   "{\"trace_id\": \"" + obs::escape_json(trace_id) + "\"}");
    obs::record_flow("client.request", "client", request.flow_id(), 's');
    status = serve::call_with_retries(socket_path, tcp_port, request, policy,
                                      &response, &stats);
  }
  if (!trace_out.empty()) {
    auto& session = obs::TraceSession::global();
    session.stop();
    const std::size_t events = session.event_count();
    std::string error;
    // Reporting on stderr keeps stdout byte-identical to an untraced call.
    if (!session.write_chrome_json(trace_out, &error)) {
      std::cerr << "client: --trace-out: " << error << '\n';
    } else {
      std::cerr << "client: trace: " << events << " events -> " << trace_out
                << " (trace id " << trace_id << ")\n";
    }
  }
  if (stats.retries > 0) {
    // Retry-budget accounting, on stderr so stdout stays byte-identical
    // to a single-shot call.
    std::cerr << "client: " << stats.attempts << " attempts, "
              << stats.retries << " retries, " << stats.backoff_s
              << " s backoff (last error: " << stats.last_error.str()
              << ")\n";
  }
  if (!status.is_ok()) {
    std::cerr << "client: " << status.str() << '\n';
    return status.code() == robust::StatusCode::kDeadlineExceeded
               ? kClientExitDeadline
               : 4;
  }

  if (args.has("timing")) {
    // The server's own phase split (echoed on every response), on stderr
    // so stdout stays byte-clean for --verify and piped consumers.
    const auto& t = response.timing;
    if (t.any()) {
      std::ostringstream os;
      os.precision(6);
      os << "client: timing:";
      if (t.queue_s >= 0.0) os << " queue " << t.queue_s << "s";
      if (t.engine_s >= 0.0) os << " engine " << t.engine_s << "s";
      if (t.render_s >= 0.0) os << " render " << t.render_s << "s";
      if (t.total_s >= 0.0) os << " total " << t.total_s << "s";
      if (t.budget_consumed >= 0.0) {
        os << " (deadline budget " << t.budget_consumed * 100.0 << "% used)";
      }
      std::cerr << os.str() << '\n';
    } else {
      std::cerr << "client: timing: server reported no timing block\n";
    }
  }

  const robust::StatusCode code = response.status.code();
  if (code == robust::StatusCode::kDeadlineExceeded) {
    std::cerr << "client: " << response.status.str() << '\n';
    return kClientExitDeadline;
  }
  if (code == robust::StatusCode::kOverloaded ||
      code == robust::StatusCode::kDraining ||
      (robust::is_retryable(code) && !response.status.is_ok())) {
    std::cerr << "client: " << response.status.str();
    if (response.retry_after_s > 0.0) {
      std::cerr << " (retry after " << response.retry_after_s << " s)";
    }
    std::cerr << '\n';
    // A retryable rejection on a single attempt says "try again" (3); the
    // same answer after a spent retry budget says "budget exhausted" (5).
    return policy.max_attempts > 1 ? kClientExitDeadline : 3;
  }
  if (!response.status.is_ok()) {
    if (!response.text.empty()) std::cout << response.text;
    std::cerr << "client: " << response.status.str() << '\n';
    return 1;
  }
  if (!response.text.empty()) std::cout << response.text;
  if (!response.payload_json.empty()) {
    std::cout << response.payload_json << '\n';
  }

  if (request.type == serve::RequestType::kHello) {
    // Version-skew detection: a daemon built from another commit may not
    // be byte-identical with this binary's CLI.
    const serve::BuildInfo local = serve::build_info();
    try {
      const auto doc = obs::parse_json(response.payload_json);
      const auto* sha = doc.find("git_sha");
      if (sha && sha->is_string() && sha->str() != local.git_sha) {
        std::cerr << "client: warning: server built from " << sha->str()
                  << ", this binary from " << local.git_sha
                  << " — responses may not match local runs byte-for-byte\n";
      }
    } catch (const std::exception&) {
      // hello payload unparsable: the transport already succeeded, so
      // just skip the skew check.
    }
  }

  if (args.has("verify")) {
    // The wire determinism contract, checked end to end: recompute the
    // workload locally through the shared spec layer and require the
    // served text to be byte-identical.
    std::string local_text;
    if (request.type == serve::RequestType::kTruthTable) {
      const auto spec = serve::make_truth_table_spec(request.gate);
      if (!spec) {
        std::cerr << "client: --verify: unknown gate\n";
        return 2;
      }
      engine::BatchRunner runner(engine_config_from(args));
      local_text =
          core::format_report(runner.run_truth_table(spec->factory,
                                                     spec->key));
    } else if (request.type == serve::RequestType::kYield) {
      const auto spec = serve::make_yield_spec(request.yield);
      if (!spec) {
        std::cerr << "client: --verify: unknown gate\n";
        return 2;
      }
      engine::BatchRunner runner(engine_config_from(args));
      local_text = serve::render_yield(
          spec->kind,
          runner.run_yield(spec->factory, spec->model, spec->trials));
    } else {
      std::cerr << "client: --verify applies to truthtable/yield requests\n";
      return 2;
    }
    if (local_text != response.text) {
      std::cerr << "client: VERIFY MISMATCH — served bytes differ from the "
                   "local computation\n";
      return 1;
    }
    std::cerr << "client: verify OK (served bytes == local bytes)\n";
  }

  if (request.type == serve::RequestType::kTruthTable &&
      serve::Response::set(response.all_pass)) {
    return response.all_pass != 0.0 ? 0 : 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// swsim loadgen — the multi-tenant load generator (serve/loadgen.h) as a
// command against a live daemon. Prints a summary and writes
// BENCH_serve_throughput.json through the shared bench harness, so a
// loadgen run gates against the committed baseline exactly like the
// in-process bench binary (the case name matches the loop mode).

int cmd_loadgen(const cli::Args& args) {
  serve::LoadgenConfig cfg;
  cfg.socket_path = args.value("socket").value_or("");
  cfg.tcp_port = static_cast<int>(args.integer("port", 0));
  if (cfg.socket_path.empty() && !args.value("port")) {
    std::cerr << "loadgen: need --socket <path> or --port <n>\n";
    return 2;
  }
  const bool quick = args.has("quick");
  cfg.duration_s = args.number("duration", quick ? 2.0 : 10.0);
  cfg.max_requests = args.unsigned_integer("requests", 0);
  cfg.target_rps = args.number("rps", 0.0);
  cfg.concurrency = args.unsigned_integer("concurrency", 4);
  cfg.seed = args.unsigned_integer("seed", 1);
  cfg.yield_trials = args.unsigned_integer("trials", 40);
  cfg.deadline_s = args.number("deadline", 0.0);
  cfg.call_timeout_s = args.number("call-timeout", 30.0);
  cfg.tenant_prefix = args.value("tenant").value_or("loadgen");
  cfg.trace_id = args.value("trace-id").value_or("");
  if (const auto mix = args.value("mix")) {
    // --mix tt:yield:hello, e.g. "6:2:2" (any non-negative scale).
    double w[3] = {0.0, 0.0, 0.0};
    std::istringstream ms(*mix);
    std::string part;
    std::size_t i = 0;
    bool bad = false;
    for (; i < 3 && std::getline(ms, part, ':'); ++i) {
      try {
        w[i] = std::stod(part);
      } catch (const std::exception&) {
        bad = true;
        break;
      }
    }
    std::string rest;
    if (bad || i != 3 || std::getline(ms, rest, ':') || w[0] < 0.0 ||
        w[1] < 0.0 || w[2] < 0.0) {
      std::cerr << "loadgen: --mix wants three non-negative weights "
                   "'tt:yield:hello' (e.g. 6:2:2)\n";
      return 2;
    }
    cfg.weight_truthtable = w[0];
    cfg.weight_yield = w[1];
    cfg.weight_hello = w[2];
  }

  const bool open_loop = cfg.target_rps > 0.0;
  std::cout << "loadgen: " << (open_loop ? "open" : "closed") << " loop, "
            << cfg.concurrency << " tenants";
  if (open_loop) std::cout << ", target " << cfg.target_rps << " req/s";
  if (cfg.duration_s > 0.0) std::cout << ", " << cfg.duration_s << " s";
  if (cfg.max_requests > 0) std::cout << ", cap " << cfg.max_requests;
  std::cout << '\n' << std::flush;

  serve::LoadgenReport report;
  if (const auto st = serve::run_loadgen(cfg, &report); !st.is_ok()) {
    std::cerr << "loadgen: " << st.str() << '\n';
    return st.code() == robust::StatusCode::kInvalidConfig ? 2 : 4;
  }

  Table t({"figure", "value"});
  t.add_row({"sent", Table::num(static_cast<double>(report.sent), 0)});
  t.add_row({"completed",
             Table::num(static_cast<double>(report.completed), 0)});
  t.add_row({"ok", Table::num(static_cast<double>(report.ok), 0)});
  t.add_row({"shed (overloaded/draining)",
             Table::num(static_cast<double>(report.shed), 0)});
  t.add_row({"deadline exceeded",
             Table::num(static_cast<double>(report.deadline_exceeded), 0)});
  t.add_row({"failed", Table::num(static_cast<double>(report.failed), 0)});
  t.add_row({"transport errors",
             Table::num(static_cast<double>(report.transport_errors), 0)});
  t.add_row({"hung (> call timeout)",
             Table::num(static_cast<double>(report.hung), 0)});
  t.add_row({"mix tt/yield/hello",
             Table::num(static_cast<double>(report.truthtable), 0) + "/" +
                 Table::num(static_cast<double>(report.yield), 0) + "/" +
                 Table::num(static_cast<double>(report.hello), 0)});
  t.add_row({"wall [s]", Table::num(report.wall_s, 3)});
  t.add_row({"requests/s", Table::num(report.rps, 1)});
  t.add_row({"latency mean [s]", Table::num(report.mean_s, 6)});
  t.add_row({"latency p50 [s]", Table::num(report.p50_s, 6)});
  t.add_row({"latency p95 [s]", Table::num(report.p95_s, 6)});
  t.add_row({"latency p99 [s]", Table::num(report.p99_s, 6)});
  t.add_row({"latency p99.9 [s]", Table::num(report.p999_s, 6)});
  t.add_row({"latency max [s]", Table::num(report.max_s, 6)});
  std::cout << t.str();

  // The BENCH artifact, through the same harness as the bench binaries so
  // env fingerprinting and `bench diff/gate` semantics match. The harness
  // parses flags from argv; hand it a synthetic one.
  std::vector<std::string> hold = {"loadgen"};
  if (quick) hold.emplace_back("--quick");
  if (const auto out_dir = args.value("out-dir")) {
    hold.emplace_back("--out-dir");
    hold.emplace_back(*out_dir);
  }
  std::vector<char*> hargv;
  hargv.reserve(hold.size() + 1);
  for (auto& s : hold) hargv.push_back(s.data());
  hargv.push_back(nullptr);
  int hargc = static_cast<int>(hold.size());
  swsim::bench::Harness harness("serve_throughput", &hargc, hargv.data());
  harness.record_samples(
      open_loop ? "open_loop_latency" : "closed_loop_latency", "s",
      report.latencies_s);
  harness.add_scalar(open_loop ? "open_loop_rps" : "closed_loop_rps",
                     report.rps);
  if (open_loop) harness.add_scalar("open_loop_target_rps", cfg.target_rps);
  harness.add_scalar("p50_s", report.p50_s);
  harness.add_scalar("p95_s", report.p95_s);
  harness.add_scalar("p99_s", report.p99_s);
  harness.add_scalar("p999_s", report.p999_s);
  harness.add_scalar("max_s", report.max_s);
  harness.add_scalar("shed_rate", report.shed_rate());
  harness.add_scalar("hung", static_cast<double>(report.hung));
  harness.add_scalar("transport_errors",
                     static_cast<double>(report.transport_errors));
  if (!harness.finish()) return 1;

  if (report.hung > 0) {
    std::cerr << "loadgen: FAIL — " << report.hung << " exchange"
              << (report.hung == 1 ? "" : "s") << " hung past the "
              << cfg.call_timeout_s << " s call timeout\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// swsim probe — physics telemetry: record a detector time series, export
// its spectrum, or tail the live envelope stream of a serve daemon.

// Round-trip-exact cell rendering for the probe CSVs (Table::num would
// truncate; spectra re-read these files).
std::string fmt_full(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// One LLG solve of the reduced-scale gate, detector series to CSV
// (columns probe,t,mx,my,mz — the input of `probe spectrum`).
int cmd_probe_record(const cli::Args& args) {
  const auto out = args.value("out");
  if (!out) {
    std::cerr << "probe record: missing --out <csv>\n";
    return 2;
  }
  serve::MicromagParams params;
  params.kind = args.has("xor") ? "xor" : "maj";
  params.lambda_nm = args.number("lambda", 50.0);
  params.width_nm = args.number("width", 20.0);
  params.cell_nm = args.number("cell", 4.0);
  const auto spec = serve::make_micromag_spec(params);
  core::MicromagTriangleGate gate(spec->config);

  std::vector<bool> inputs(gate.num_inputs(), false);
  if (const auto pattern = args.value("pattern")) {
    if (pattern->size() != inputs.size() ||
        pattern->find_first_not_of("01") != std::string::npos) {
      std::cerr << "probe record: --pattern wants " << inputs.size()
                << " bits of 0/1\n";
      return 2;
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      inputs[i] = (*pattern)[i] == '1';
    }
  }
  std::string bits;
  for (const bool b : inputs) bits += b ? '1' : '0';
  std::cout << "recording " << gate.name() << " " << bits
            << " (calibration + one LLG solve, f = "
            << Table::num(to_ghz(gate.drive_frequency()), 1) << " GHz)...\n";

  const core::MicromagEvaluation ev = gate.evaluate_full(inputs);
  io::CsvWriter csv(*out);
  csv.write_row({"probe", "t", "mx", "my", "mz"});
  std::size_t samples = 0;
  for (const auto& series : ev.probe_series) {
    for (std::size_t i = 0; i < series.t.size(); ++i) {
      csv.write_row({series.name, fmt_full(series.t[i]),
                     fmt_full(series.mx[i]), fmt_full(series.my[i]),
                     fmt_full(series.mz[i])});
      ++samples;
    }
  }
  std::cout << "wrote " << samples << " samples ("
            << ev.probe_series.size() << " probes) -> " << *out << '\n';
  return 0;
}

// FFT of a recorded series: reads a `probe record` CSV, periodogram of
// the chosen probe's m_x, prints the peak and optionally dumps
// frequency,power rows.
int cmd_probe_spectrum(const cli::Args& args) {
  if (args.positional().size() < 2) {
    std::cerr << "probe spectrum: missing <series.csv>\n";
    return 2;
  }
  const std::string& path = args.positional()[1];
  const std::string want = args.value("probe").value_or("");
  std::vector<std::vector<std::string>> rows;
  try {
    rows = io::read_csv(path);
  } catch (const std::exception& e) {
    std::cerr << "probe spectrum: " << e.what() << '\n';
    return 2;
  }
  if (rows.size() < 2 || rows[0].size() < 3 || rows[0][0] != "probe") {
    std::cerr << "probe spectrum: '" << path
              << "' is not a probe-series CSV (want probe,t,mx,... rows)\n";
    return 2;
  }
  // Default to the first probe in the file; rows of other probes are
  // skipped so a multi-probe recording works without --probe.
  std::string probe = want;
  std::vector<double> t;
  std::vector<double> mx;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].size() < 3) continue;
    if (probe.empty()) probe = rows[i][0];
    if (rows[i][0] != probe) continue;
    t.push_back(std::strtod(rows[i][1].c_str(), nullptr));
    mx.push_back(std::strtod(rows[i][2].c_str(), nullptr));
  }
  if (t.size() < 4) {
    std::cerr << "probe spectrum: probe '" << probe << "' has " << t.size()
              << " samples in '" << path << "' (need at least 4)\n";
    return 2;
  }
  const double dt = (t.back() - t.front()) / static_cast<double>(t.size() - 1);
  math::Spectrum spectrum;
  try {
    spectrum = math::power_spectrum(mx, dt);
  } catch (const std::exception& e) {
    std::cerr << "probe spectrum: " << e.what() << '\n';
    return 2;
  }
  if (const auto out = args.value("out")) {
    io::CsvWriter csv(*out);
    csv.write_row({"frequency", "power"});
    for (std::size_t i = 0; i < spectrum.frequency.size(); ++i) {
      csv.write_row({fmt_full(spectrum.frequency[i]),
                     fmt_full(spectrum.power[i])});
    }
    std::cout << "wrote " << spectrum.frequency.size() << " bins -> " << *out
              << '\n';
  }
  std::cout << "probe " << probe << ": " << t.size() << " samples, dt "
            << Table::num(dt * 1e12, 3) << " ps, peak "
            << Table::num(spectrum.peak_frequency() * 1e-9, 3) << " GHz\n";
  return 0;
}

// Live stream: subscribes to a daemon's probe hub and renders each
// envelope frame as one line until the stream ends.
int cmd_probe_tail(const cli::Args& args) {
  const std::string socket = args.value("socket").value_or("");
  const int port = static_cast<int>(args.integer("port", 0));
  if (socket.empty() && port <= 0) {
    std::cerr << "probe tail: need --socket <path> or --port <n>\n";
    return 2;
  }
  serve::Client client;
  robust::Status st =
      socket.empty() ? client.connect_tcp(port) : client.connect_unix(socket);
  if (!st.is_ok()) {
    std::cerr << "probe tail: " << st.str() << '\n';
    return 4;
  }
  serve::Request request;
  request.type = serve::RequestType::kProbeSubscribe;
  request.id = args.unsigned_integer("id", 1);
  request.client = args.value("client").value_or("probe-tail");
  request.probe_max_frames = args.unsigned_integer("max-frames", 0);
  request.probe_duration_s = args.number("duration", 0.0);
  request.probe_filter = args.value("probe").value_or("");

  serve::Response ack;
  if (st = client.call(request, &ack); !st.is_ok()) {
    std::cerr << "probe tail: " << st.str() << '\n';
    return 4;
  }
  if (!ack.status.is_ok()) {
    std::cerr << "probe tail: " << ack.status.str() << '\n';
    return 3;
  }
  std::cerr << "subscribed"
            << (request.probe_filter.empty()
                    ? std::string()
                    : " (probe " + request.probe_filter + ")")
            << "; streaming...\n";

  std::string payload;
  std::string error;
  while (true) {
    const serve::ReadResult r =
        serve::read_frame(client.fd(), &payload, &error, serve::IoDeadlines{});
    if (r != serve::ReadResult::kFrame) {
      if (r == serve::ReadResult::kError) {
        std::cerr << "probe tail: " << error << '\n';
        return 4;
      }
      break;  // EOF: daemon went away
    }
    obs::JsonValue doc;
    try {
      doc = obs::parse_json(payload);
    } catch (const std::exception& e) {
      std::cerr << "probe tail: bad frame: " << e.what() << '\n';
      return 4;
    }
    const auto str = [&doc](const char* k) {
      const auto* v = doc.find(k);
      return v && v->is_string() ? v->str() : std::string();
    };
    const auto num = [&doc](const char* k, double d) {
      const auto* v = doc.find(k);
      return v && v->is_number() ? v->number() : d;
    };
    if (str("type") == "probe.end") {
      std::cout << "stream ended (" << str("reason") << "): "
                << Table::num(num("frames", 0.0), 0) << " frames, "
                << Table::num(num("dropped", 0.0), 0) << " dropped\n";
      break;
    }
    std::cout << "[" << str("job") << "] " << str("probe") << " window "
              << Table::num(num("window", 0.0), 0) << "  t "
              << Table::num(num("t", 0.0) * 1e9, 3) << " ns  A "
              << Table::num(num("amplitude", 0.0), 6) << "  phase "
              << Table::num(num("phase", 0.0), 3) << " rad";
    if (const auto* v = doc.find("converged"); v && v->is_bool() &&
                                               v->boolean()) {
      std::cout << "  converged @ " << Table::num(
                       num("converged_at", 0.0) * 1e9, 3) << " ns";
    }
    if (num("dropped", 0.0) > 0.0) {
      std::cout << "  dropped " << Table::num(num("dropped", 0.0), 0);
    }
    std::cout << '\n' << std::flush;
  }
  return 0;
}

int cmd_probe(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "probe: missing subcommand (record|spectrum|tail)\n";
    return 2;
  }
  const std::string& sub = args.positional()[0];
  if (sub == "record") return cmd_probe_record(args);
  if (sub == "spectrum") return cmd_probe_spectrum(args);
  if (sub == "tail") return cmd_probe_tail(args);
  std::cerr << "probe: unknown subcommand '" << sub
            << "' (want record|spectrum|tail)\n";
  return 2;
}

// ---------------------------------------------------------------------------
// swsim bench — run the bench suite and compare/gate its BENCH_*.json
// artifacts (schema swsim.bench/1, written by the shared bench harness).

// Where the bench binaries live: next to this executable's build tree
// (build/cli/swsim -> build/bench), overridable with --bin-dir.
std::string default_bench_bin_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  const std::filesystem::path exe(buf);
  return (exe.parent_path().parent_path() / "bench").string();
}

int cmd_bench_list() {
  Table t({"name", "binary", "primary output", "runtime"});
  for (const auto& b : swsim::bench::bench_registry()) {
    t.add_row({b.name, std::string("bench_") + b.name, b.output,
               b.heavy ? "heavy (minutes full / --quick)" : "seconds"});
  }
  std::cout << t.str()
            << "\nrun with: swsim bench run <name...> [--quick]\n";
  return 0;
}

int cmd_bench_run(const cli::Args& args) {
  const auto& registry = swsim::bench::bench_registry();
  std::vector<std::string> names(args.positional().begin() + 1,
                                 args.positional().end());
  if (names.empty()) {
    for (const auto& b : registry) names.push_back(b.name);
  }
  for (const auto& name : names) {
    const bool known =
        std::any_of(registry.begin(), registry.end(),
                    [&](const auto& b) { return name == b.name; });
    if (!known) {
      std::cerr << "bench run: unknown bench '" << name
                << "' (see: swsim bench list)\n";
      return 2;
    }
  }

  // Benches run from the output directory (below), so a relative --bin-dir
  // must be resolved against the *current* cwd before the cd.
  const std::string bin_dir =
      std::filesystem::absolute(
          args.value("bin-dir").value_or(default_bench_bin_dir()))
          .string();
  const std::string out_dir = args.value("out-dir").value_or(".");
  std::string flags;
  if (args.has("quick")) flags += " --quick";
  if (const auto v = args.value("repeats")) flags += " --repeats " + *v;
  if (const auto v = args.value("warmup")) flags += " --warmup " + *v;

  int failures = 0;
  for (const auto& name : names) {
    const std::string bin = bin_dir + "/bench_" + name;
    if (!std::filesystem::exists(bin)) {
      std::cerr << "bench run: no binary at " << bin
                << " (build the bench targets, or pass --bin-dir)\n";
      return 2;
    }
    std::cout << "=== bench " << name << " ===\n" << std::flush;
    // Benches write their CSV/PGM artifacts into the cwd, so run them from
    // the output directory and let the harness drop BENCH_<name>.json there.
    const std::string cmd = "cd '" + out_dir + "' && '" + bin + "'" + flags;
    const int rc = std::system(cmd.c_str());
    const int exit_code =
        rc == -1 ? -1 : (WIFEXITED(rc) ? WEXITSTATUS(rc) : -1);
    if (exit_code != 0) {
      std::cerr << "bench run: " << name << " exited with "
                << exit_code << '\n';
      ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << "bench run: " << failures << " of " << names.size()
              << " benches failed\n";
    return 1;
  }
  return 0;
}

swsim::bench::CompareOptions compare_options_from(const cli::Args& args) {
  swsim::bench::CompareOptions opts;
  opts.rel_tolerance = args.number("tolerance", opts.rel_tolerance);
  opts.mad_k = args.number("mad-k", opts.mad_k);
  if (opts.rel_tolerance < 0.0) {
    throw std::invalid_argument("--tolerance must be >= 0");
  }
  if (opts.mad_k < 0.0) {
    throw std::invalid_argument("--mad-k must be >= 0");
  }
  return opts;
}

// Prints the per-case comparison table; returns the number of regressions.
int report_compare(const std::string& label,
                   const swsim::bench::BenchDoc& base,
                   const swsim::bench::BenchDoc& cur,
                   const swsim::bench::CompareResult& result) {
  using swsim::bench::Verdict;
  if (base.env.git_sha != cur.env.git_sha ||
      base.env.compiler != cur.env.compiler ||
      base.env.build_type != cur.env.build_type ||
      base.env.cores != cur.env.cores) {
    std::cout << "note: environments differ (base " << base.env.git_sha
              << ", " << base.env.compiler << ", " << base.env.build_type
              << ", " << base.env.cores << " cores; current "
              << cur.env.git_sha << ", " << cur.env.compiler << ", "
              << cur.env.build_type << ", " << cur.env.cores << " cores)\n";
  }
  if (base.quick != cur.quick) {
    std::cout << "note: comparing a --quick run against a full run\n";
  }
  Table t({"case", "base median", "current", "delta", "threshold",
           "verdict"});
  for (const auto& d : result.deltas) {
    const bool both = d.verdict != Verdict::kNew &&
                      d.verdict != Verdict::kMissing;
    t.add_row({d.name,
               d.verdict == Verdict::kNew ? "-" : Table::num(d.base_median, 6),
               d.verdict == Verdict::kMissing ? "-"
                                              : Table::num(d.cur_median, 6),
               both ? Table::num(d.cur_median - d.base_median, 6) : "-",
               both ? Table::num(d.threshold, 6) : "-",
               swsim::bench::verdict_name(d.verdict)});
  }
  std::cout << label << ":\n" << t.str();
  if (result.regressions > 0) {
    std::cout << result.regressions << " regression"
              << (result.regressions == 1 ? "" : "s") << " detected\n";
  } else {
    std::cout << "no regressions";
    if (result.improvements > 0) {
      std::cout << " (" << result.improvements << " improvement"
                << (result.improvements == 1 ? "" : "s")
                << " — consider refreshing the baseline)";
    }
    std::cout << '\n';
  }
  return result.regressions;
}

int cmd_bench_diff(const cli::Args& args) {
  if (args.positional().size() < 3) {
    std::cerr << "bench diff: need two files: <base.json> <current.json>\n";
    return 2;
  }
  const std::string base_path = args.positional()[1];
  const std::string cur_path = args.positional()[2];
  const auto opts = compare_options_from(args);
  swsim::bench::BenchDoc base, cur;
  try {
    base = swsim::bench::load_bench_file(base_path);
    cur = swsim::bench::load_bench_file(cur_path);
  } catch (const std::exception& e) {
    std::cerr << "bench diff: " << e.what() << '\n';
    return 2;
  }
  const auto result = swsim::bench::compare_benches(base, cur, opts);
  const int regressions =
      report_compare(base_path + " -> " + cur_path, base, cur, result);
  return regressions > 0 ? 1 : 0;
}

int cmd_bench_gate(const cli::Args& args) {
  const auto baseline_dir = args.value("baseline");
  if (!baseline_dir) {
    std::cerr << "bench gate: --baseline <dir> is required\n";
    return 2;
  }
  const std::string current_dir = args.value("current").value_or(".");
  const auto opts = compare_options_from(args);

  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(current_dir, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("BENCH_", 0) == 0 &&
        fname.size() > 11 &&
        fname.compare(fname.size() - 5, 5, ".json") == 0) {
      files.push_back(fname);
    }
  }
  if (ec) {
    std::cerr << "bench gate: cannot read '" << current_dir
              << "': " << ec.message() << '\n';
    return 2;
  }
  if (files.empty()) {
    std::cerr << "bench gate: no BENCH_*.json in '" << current_dir
              << "' (run `swsim bench run` first)\n";
    return 2;
  }
  std::sort(files.begin(), files.end());

  int total_regressions = 0;
  int compared = 0;
  for (const auto& fname : files) {
    const std::string base_path = *baseline_dir + "/" + fname;
    if (!std::filesystem::exists(base_path)) {
      std::cout << "gate: " << fname << ": no baseline (new bench?) — "
                << "skipped\n";
      continue;
    }
    swsim::bench::BenchDoc base, cur;
    try {
      base = swsim::bench::load_bench_file(base_path);
      cur = swsim::bench::load_bench_file(current_dir + "/" + fname);
    } catch (const std::exception& e) {
      std::cerr << "bench gate: " << e.what() << '\n';
      return 2;
    }
    const auto result = swsim::bench::compare_benches(base, cur, opts);
    total_regressions += report_compare(fname, base, cur, result);
    std::cout << '\n';
    ++compared;
  }
  if (compared == 0) {
    std::cerr << "bench gate: nothing to compare ('" << *baseline_dir
              << "' holds no matching baselines)\n";
    return 2;
  }
  if (total_regressions > 0) {
    std::cout << "gate: FAIL — " << total_regressions << " regression"
              << (total_regressions == 1 ? "" : "s") << " across "
              << compared << " bench file" << (compared == 1 ? "" : "s")
              << '\n';
    return 1;
  }
  std::cout << "gate: OK — " << compared << " bench file"
            << (compared == 1 ? "" : "s") << " within tolerance\n";
  return 0;
}

int cmd_bench(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "bench: missing subcommand (list|run|diff|gate)\n";
    return 2;
  }
  const std::string& sub = args.positional()[0];
  if (sub == "list") return cmd_bench_list();
  if (sub == "run") return cmd_bench_run(args);
  if (sub == "diff") return cmd_bench_diff(args);
  if (sub == "gate") return cmd_bench_gate(args);
  std::cerr << "bench: unknown subcommand '" << sub
            << "' (want list|run|diff|gate)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Args args = cli::Args::parse(argc, argv);
    // Process-wide: applies to every solve path, including --serial runs
    // that never build an engine.
    if (args.has("cell-jobs")) {
      mag::kernels::set_cell_jobs(args.unsigned_integer("cell-jobs", 1));
    }
    const std::string& cmd = args.command();
    if (cmd.empty() || cmd == "help") return usage();
    if (cmd == "truthtable") return cmd_truthtable(args);
    if (cmd == "dispersion") return cmd_dispersion(args);
    if (cmd == "yield") return cmd_yield(args);
    if (cmd == "compare") return cmd_compare();
    if (cmd == "micromag") return cmd_micromag(args);
    if (cmd == "batch") return cmd_batch(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "trace-check") return cmd_trace_check(args);
    if (cmd == "trace") return cmd_trace(args);
    if (cmd == "bench") return cmd_bench(args);
    if (cmd == "version") return cmd_version();
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "client") return cmd_client(args);
    if (cmd == "loadgen") return cmd_loadgen(args);
    if (cmd == "probe") return cmd_probe(args);
    std::cerr << "unknown command '" << cmd << "' (try: swsim help)\n";
    return 2;
  } catch (const std::invalid_argument& e) {
    // Malformed flags and values ("--jobs=abc", "--jobs -4") are usage
    // errors, distinct from runtime failures.
    std::cerr << "usage error: " << e.what() << " (try: swsim help)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
