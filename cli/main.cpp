// swsim — command-line driver for the spin-wave gate library.
//
//   swsim truthtable <maj|xor|xnor|and|or|nand|nor|maj5|maj7>
//         [--lambda <nm>] [--width <nm>]
//   swsim dispersion [--thickness <nm>] [--material <fecob|yig|permalloy>]
//         [--applied <kA/m>]
//   swsim yield [--gate <maj|xor>] [--sigma-length <nm>] [--sigma-amp <frac>]
//         [--trials <n>] [--lambda <nm>]
//   swsim compare                      (Table III)
//   swsim micromag [--xor] [--lambda <nm>] [--width <nm>] [--cell <nm>]
//         (runs the LLG backend truth table; slow)
//   swsim help
#include <iostream>
#include <memory>

#include "cli/args.h"
#include "core/derived_gates.h"
#include "core/micromag_gate.h"
#include "core/multi_input_gate.h"
#include "core/triangle_gate.h"
#include "core/validator.h"
#include "core/variability.h"
#include "io/table.h"
#include "math/constants.h"
#include "perf/comparison.h"
#include "wavenet/dispersion.h"

using namespace swsim;
using namespace swsim::math;
using swsim::io::Table;

namespace {

int usage() {
  std::cout <<
      "swsim - fan-out-of-2 triangle spin-wave logic gates\n"
      "\n"
      "commands:\n"
      "  truthtable <maj|xor|xnor|and|or|nand|nor|maj5|maj7>\n"
      "             [--lambda <nm>] [--width <nm>]\n"
      "  dispersion [--thickness <nm>] [--material fecob|yig|permalloy]\n"
      "             [--applied <kA/m>]\n"
      "  yield      [--gate maj|xor] [--sigma-length <nm>]\n"
      "             [--sigma-amp <frac>] [--trials <n>] [--lambda <nm>]\n"
      "  compare    (regenerate the paper's Table III)\n"
      "  micromag   [--xor] [--lambda <nm>] [--width <nm>] [--cell <nm>]\n"
      "  help\n";
  return 0;
}

geom::TriangleGateParams params_from(const cli::Args& args, bool maj) {
  auto p = maj ? geom::TriangleGateParams::paper_maj3()
               : geom::TriangleGateParams::paper_xor();
  const double lambda_nm = args.number("lambda", 55.0);
  p.wavelength = nm(lambda_nm);
  p.width = nm(args.number("width", 0.4 * lambda_nm));
  return p;
}

int cmd_truthtable(const cli::Args& args) {
  if (args.positional().empty()) {
    std::cerr << "truthtable: missing gate name\n";
    return 2;
  }
  const std::string kind = args.positional()[0];
  std::unique_ptr<core::FanoutGate> gate;

  core::TriangleGateConfig cfg;
  cfg.params = params_from(args, /*maj=*/true);
  if (kind == "maj") {
    gate = std::make_unique<core::TriangleMajGate>(cfg);
  } else if (kind == "xor" || kind == "xnor") {
    cfg.params = params_from(args, /*maj=*/false);
    cfg.inverted = kind == "xnor";
    gate = std::make_unique<core::TriangleXorGate>(cfg);
  } else if (kind == "and" || kind == "or" || kind == "nand" ||
             kind == "nor") {
    const core::TwoInputFunction fn =
        kind == "and"    ? core::TwoInputFunction::kAnd
        : kind == "or"   ? core::TwoInputFunction::kOr
        : kind == "nand" ? core::TwoInputFunction::kNand
                         : core::TwoInputFunction::kNor;
    gate = std::make_unique<core::ControlledMajGate>(cfg, fn);
  } else if (kind == "maj5" || kind == "maj7") {
    core::MultiInputMajConfig mcfg;
    mcfg.num_inputs = kind == "maj5" ? 5 : 7;
    mcfg.params = cfg.params;
    gate = std::make_unique<core::MultiInputMajGate>(mcfg);
  } else {
    std::cerr << "truthtable: unknown gate '" << kind << "'\n";
    return 2;
  }

  const auto report = core::validate_gate(*gate);
  std::cout << core::format_report(report);
  return report.all_pass ? 0 : 1;
}

int cmd_dispersion(const cli::Args& args) {
  mag::Material mat = mag::Material::fecob();
  const auto name = args.value("material").value_or("fecob");
  if (name == "yig") mat = mag::Material::yig();
  else if (name == "permalloy") mat = mag::Material::permalloy();
  else if (name != "fecob") {
    std::cerr << "dispersion: unknown material '" << name << "'\n";
    return 2;
  }
  const double thickness = nm(args.number("thickness", 1.0));
  const double applied = ka_per_m(args.number("applied", 0.0));
  const wavenet::Dispersion disp(mat, thickness, applied);

  Table t({"lambda (nm)", "f (GHz)", "v_g (m/s)", "L_att (um)"});
  for (double l : {500.0, 250.0, 125.0, 80.0, 55.0, 40.0, 30.0, 20.0}) {
    const double k = wavenet::Dispersion::k_of_lambda(nm(l));
    t.add_row({Table::num(l, 0), Table::num(to_ghz(disp.frequency(k)), 2),
               Table::num(disp.group_velocity(k), 0),
               Table::num(disp.attenuation_length(k) * 1e6, 2)});
  }
  std::cout << mat.name << ", t = " << to_nm(thickness) << " nm, FMR floor "
            << Table::num(to_ghz(disp.frequency(0)), 2) << " GHz\n\n"
            << t.str();
  return 0;
}

int cmd_yield(const cli::Args& args) {
  const double lambda_nm = args.number("lambda", 55.0);
  core::VariabilityModel model;
  model.sigma_phase = core::VariabilityModel::phase_sigma_for_length(
      nm(args.number("sigma-length", 2.0)), nm(lambda_nm));
  model.sigma_amplitude = args.number("sigma-amp", 0.05);
  const auto trials = static_cast<std::size_t>(args.integer("trials", 500));

  const std::string kind = args.value("gate").value_or("maj");
  core::TriangleGateConfig cfg;
  std::unique_ptr<core::TriangleGateBase> gate;
  if (kind == "maj") {
    cfg.params = params_from(args, true);
    gate = std::make_unique<core::TriangleMajGate>(cfg);
  } else if (kind == "xor") {
    cfg.params = params_from(args, false);
    gate = std::make_unique<core::TriangleXorGate>(cfg);
  } else {
    std::cerr << "yield: unknown gate '" << kind << "'\n";
    return 2;
  }

  const auto r = core::estimate_yield(*gate, model, trials);
  std::cout << "gate " << kind << ", " << r.trials << " virtual devices:\n"
            << "  yield               " << Table::num(r.yield * 100, 1)
            << "%\n"
            << "  row failures        " << r.worst_row_failures << '\n'
            << "  mean worst margin   " << Table::num(r.mean_worst_margin, 3)
            << '\n';
  return 0;
}

int cmd_compare() {
  const perf::Comparison cmp;
  Table t({"design", "function", "cells", "delay (ns)", "energy (aJ)"});
  for (const auto& row : cmp.rows()) {
    t.add_row({row.design, row.function, std::to_string(row.cells),
               Table::num(to_ns(row.delay), 2),
               Table::num(to_aj(row.energy), 1)});
  }
  std::cout << t.str();
  const auto h = cmp.headlines();
  std::cout << "\nMAJ saving vs ladder: " << Table::num(
                   h.maj_saving_vs_ladder * 100, 0)
            << "%   XOR saving vs ladder: "
            << Table::num(h.xor_saving_vs_ladder * 100, 0) << "%\n";
  return 0;
}

int cmd_micromag(const cli::Args& args) {
  const double lambda_nm = args.number("lambda", 50.0);
  const double width_nm = args.number("width", 20.0);
  core::MicromagGateConfig cfg;
  cfg.params = args.has("xor")
                   ? geom::TriangleGateParams::reduced_xor(nm(lambda_nm),
                                                           nm(width_nm))
                   : geom::TriangleGateParams::reduced_maj3(nm(lambda_nm),
                                                            nm(width_nm));
  cfg.cell_size = nm(args.number("cell", 4.0));
  core::MicromagTriangleGate gate(cfg);
  std::cout << "running LLG truth table (" << (1u << gate.num_inputs())
            << " patterns + calibration, f = "
            << Table::num(to_ghz(gate.drive_frequency()), 1)
            << " GHz)...\n";
  const auto report = core::validate_gate(gate);
  std::cout << core::format_report(report);
  return report.all_pass ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Args args = cli::Args::parse(argc, argv);
    const std::string& cmd = args.command();
    if (cmd.empty() || cmd == "help") return usage();
    if (cmd == "truthtable") return cmd_truthtable(args);
    if (cmd == "dispersion") return cmd_dispersion(args);
    if (cmd == "yield") return cmd_yield(args);
    if (cmd == "compare") return cmd_compare();
    if (cmd == "micromag") return cmd_micromag(args);
    std::cerr << "unknown command '" << cmd << "' (try: swsim help)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
